"""Table II — common VA-command phonemes and the 31 sensitive ones.

Regenerates the command-corpus phoneme statistics and the offline
barrier-effect-sensitive phoneme selection, comparing against the
paper's Table II (counts + bold selection markers).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.core.phoneme_selection import (
    PhonemeSelectionConfig,
    PhonemeSelector,
)
from repro.eval.reporting import format_table
from repro.phonemes.commands import command_phoneme_counts
from repro.phonemes.inventory import (
    COMMON_PHONEMES,
    PAPER_SELECTED_PHONEMES,
)


def _run():
    counts = command_phoneme_counts()
    selector = PhonemeSelector(
        config=PhonemeSelectionConfig(n_segments=24), seed=2024
    )
    selection = selector.run()
    return counts, selection


def test_table2_common_phonemes(benchmark):
    counts, selection = run_once(benchmark, _run)
    selected = set(selection.selected)

    rows = []
    ranked = sorted(
        COMMON_PHONEMES.items(), key=lambda item: -item[1]
    )
    for symbol, paper_count in ranked:
        rows.append(
            (
                symbol,
                paper_count,
                counts.get(symbol, 0),
                "bold" if symbol in PAPER_SELECTED_PHONEMES else "",
                "bold" if symbol in selected else "",
            )
        )
    emit(
        "table2_common_phonemes",
        format_table(
            ["phoneme", "paper count", "corpus count",
             "paper selected", "measured selected"],
            rows,
            title=(
                "Table II — 37 common phonemes; measured selection "
                f"picked {len(selected)}/37 (paper: 31/37)"
            ),
        ),
    )

    # Shape assertions: 31 sensitive phonemes, matching the paper's set.
    assert len(selected) == 31
    assert selected == set(PAPER_SELECTED_PHONEMES)
    # Frequency ranks correlate with Table II.
    shared = sorted(set(counts) & set(COMMON_PHONEMES))
    ours = np.argsort(np.argsort([counts[s] for s in shared]))
    paper = np.argsort(np.argsort([COMMON_PHONEMES[s] for s in shared]))
    assert np.corrcoef(ours, paper)[0, 1] > 0.5
