"""Segmentation ablation: trained BRNN vs oracle vs none.

Quantifies what the paper's online phoneme segmentation contributes:
the same replay-attack experiment scored (a) with the trained BRNN
segmenter, (b) with ground-truth (oracle) segments from the utterance
alignments, and (c) with no segmentation (whole-command analysis, i.e.
the vibration baseline path through the full-system features).
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.core.pipeline import DefensePipeline
from repro.eval.metrics import evaluate_scores
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus

N_SAMPLES = 8


def _evaluate(trained_segmenter):
    corpus = SyntheticCorpus(n_speakers=4, seed=9900)
    scenario = AttackScenario(room_config=ROOM_A)
    victim = corpus.speakers[0]
    replay = ReplayAttack(corpus, victim)

    pipelines = {
        "BRNN segmentation": (
            DefensePipeline(segmenter=trained_segmenter), False
        ),
        "oracle segmentation": (
            DefensePipeline(segmenter=trained_segmenter), True
        ),
        "no segmentation": (DefensePipeline(segmenter=None), False),
    }
    results = {}
    for name, (pipeline, use_oracle) in pipelines.items():
        legit, attack = [], []
        for index in range(N_SAMPLES):
            command = VA_COMMANDS[index % len(VA_COMMANDS)]
            utterance = corpus.utterance(
                phonemize(command), speaker=victim, rng=100 + index
            )
            va, wearable = scenario.legitimate_recordings(
                utterance, spl_db=65.0 + 5 * (index % 3),
                rng=200 + index,
            )
            legit.append(
                pipeline.score(
                    va, wearable, rng=300 + index,
                    oracle_utterance=utterance if use_oracle else None,
                )
            )
            sound = replay.generate(command=command, rng=400 + index)
            va, wearable = scenario.attack_recordings(
                sound, spl_db=75.0, rng=500 + index
            )
            attack.append(
                pipeline.score(
                    va, wearable, rng=600 + index,
                    oracle_utterance=(
                        sound.utterance if use_oracle else None
                    ),
                )
            )
        results[name] = evaluate_scores(legit, attack)
    return results


def test_segmentation_ablation(benchmark, trained_segmenter):
    results = run_once(benchmark, lambda: _evaluate(trained_segmenter))
    rows = [
        (name, f"{m.auc:.3f}", f"{m.eer * 100:.1f}%")
        for name, m in results.items()
    ]
    emit(
        "segmentation_ablation",
        format_table(
            ["segmentation", "AUC", "EER"],
            rows,
            title=(
                "Segmentation ablation — replay attack, Room A "
                f"({N_SAMPLES} legit / {N_SAMPLES} attack)"
            ),
        ),
    )
    # The trained BRNN must perform on par with ground-truth segments.
    brnn = results["BRNN segmentation"]
    oracle = results["oracle segmentation"]
    assert brnn.auc >= oracle.auc - 0.05
    assert brnn.auc >= 0.95
