"""Wearable-device comparison (paper § VII-A: Fossil Gen 5 vs Moto 360).

The paper evaluates with two commercial smartwatches and reports
consistent performance.  This bench runs the same replay-attack
experiment with both wearable hardware profiles.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.core.pipeline import DefensePipeline
from repro.eval.metrics import evaluate_scores
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.sensing.wearables import WEARABLES

N_SAMPLES = 8


def _evaluate(trained_segmenter):
    corpus = SyntheticCorpus(n_speakers=4, seed=9800)
    scenario = AttackScenario(room_config=ROOM_A)
    victim = corpus.speakers[0]
    replay = ReplayAttack(corpus, victim)
    results = {}
    for key, profile in WEARABLES.items():
        pipeline = DefensePipeline(
            segmenter=trained_segmenter, sensor=profile.make_sensor()
        )
        legit, attack = [], []
        for index in range(N_SAMPLES):
            command = VA_COMMANDS[index % len(VA_COMMANDS)]
            utterance = corpus.utterance(
                phonemize(command), speaker=victim, rng=100 + index
            )
            va, wearable = scenario.legitimate_recordings(
                utterance, spl_db=65.0 + 5 * (index % 3),
                rng=200 + index,
            )
            legit.append(
                pipeline.score(
                    va, wearable, rng=300 + index,
                    oracle_utterance=utterance,
                )
            )
            sound = replay.generate(command=command, rng=400 + index)
            va, wearable = scenario.attack_recordings(
                sound, spl_db=75.0, rng=500 + index
            )
            attack.append(
                pipeline.score(
                    va, wearable, rng=600 + index,
                    oracle_utterance=sound.utterance,
                )
            )
        results[profile.name] = evaluate_scores(legit, attack)
    return results


def test_wearable_devices(benchmark, trained_segmenter):
    results = run_once(benchmark, lambda: _evaluate(trained_segmenter))
    rows = [
        (name, f"{m.auc:.3f}", f"{m.eer * 100:.1f}%")
        for name, m in results.items()
    ]
    emit(
        "wearable_devices",
        format_table(
            ["wearable", "AUC", "EER"],
            rows,
            title=(
                "Wearable comparison — replay attack, Room A "
                f"({N_SAMPLES} legit / {N_SAMPLES} attack)"
            ),
        ),
    )
    # Both devices give strong, comparable detection (paper's finding).
    for name, metrics in results.items():
        assert metrics.auc >= 0.95, name
    aucs = [m.auc for m in results.values()]
    assert max(aucs) - min(aucs) <= 0.05
