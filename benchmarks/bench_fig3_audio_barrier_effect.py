"""Fig. 3 — audio-domain FFT magnitudes before/after the barrier.

Replays populations of /ae/ (vowel) and /v/ (consonant) through a glass
window and compares average FFT magnitude spectra before and after, as
in the paper's barrier-effect study.  The headline facts to reproduce:
(1) components above ~500 Hz attenuate severely for both phonemes, and
(2) the thru-barrier vowel's spectrum resembles the direct consonant's —
which is why the audio domain alone is unreliable.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.acoustics.loudspeaker import SOUND_BAR
from repro.acoustics.materials import GLASS_WINDOW
from repro.acoustics.spl import db_to_gain
from repro.channels import BarrierStage, LoudspeakerStage, PropagationChannel
from repro.dsp.spectrum import mean_fft_magnitude
from repro.eval.reporting import format_table, sparkline
from repro.phonemes.corpus import SyntheticCorpus
from repro.utils.rng import child_rng

N_SEGMENTS = 30
RATE = 16_000.0
N_FFT = 4096


def _spectra():
    corpus = SyntheticCorpus(n_speakers=10, seed=3000)
    playback = PropagationChannel(
        (LoudspeakerStage(SOUND_BAR),), name="playback"
    )
    barrier = PropagationChannel(
        (BarrierStage(material=GLASS_WINDOW),), name="barrier"
    )
    rng = np.random.default_rng(3001)
    gain = db_to_gain(10.0)  # 75 dB playback
    results = {}
    for symbol in ("ae", "v"):
        segments = corpus.phoneme_population(
            symbol, N_SEGMENTS, rng=child_rng(rng, symbol),
            duration_s=0.35,
        )
        before = [
            playback.apply(seg.waveform * gain, RATE)
            for seg in segments
        ]
        after = [
            barrier.apply(b, RATE, rng=child_rng(rng, f"{symbol}{i}"))
            for i, b in enumerate(before)
        ]
        freqs, mag_before = mean_fft_magnitude(before, RATE, N_FFT)
        _, mag_after = mean_fft_magnitude(after, RATE, N_FFT)
        results[symbol] = (freqs, mag_before, mag_after)
    return results


def _band_mean(freqs, mags, low, high):
    mask = (freqs >= low) & (freqs < high)
    return float(mags[mask].mean())


def test_fig3_audio_barrier_effect(benchmark):
    results = run_once(benchmark, _spectra)
    bands = [(85, 500), (500, 1000), (1000, 2000), (2000, 3000)]
    rows = []
    lines = []
    for symbol, (freqs, before, after) in results.items():
        for low, high in bands:
            rows.append(
                (
                    f"/{symbol}/",
                    f"{low}-{high} Hz",
                    f"{_band_mean(freqs, before, low, high):.4f}",
                    f"{_band_mean(freqs, after, low, high):.4f}",
                )
            )
        view = freqs <= 3000.0
        lines.append(
            f"/{symbol}/ before: {sparkline(before[view])}"
        )
        lines.append(
            f"/{symbol}/ after : {sparkline(after[view])}"
        )
    emit(
        "fig3_audio_barrier_effect",
        format_table(
            ["phoneme", "band", "before barrier", "after barrier"],
            rows,
            title="Fig. 3 — mean FFT magnitude by band (audio domain)",
        )
        + "\n\nSpectra 0-3 kHz:\n" + "\n".join(lines),
    )

    freqs, ae_before, ae_after = results["ae"]
    _, v_before, v_after = results["v"]
    # (1) High frequencies attenuate much more than low.
    for before, after in ((ae_before, ae_after), (v_before, v_after)):
        low_ratio = _band_mean(freqs, after, 85, 500) / _band_mean(
            freqs, before, 85, 500
        )
        high_ratio = _band_mean(freqs, after, 1000, 3000) / _band_mean(
            freqs, before, 1000, 3000
        )
        assert high_ratio < 0.5 * low_ratio
    # (2) The thru-barrier vowel's high-band energy is comparable to (or
    # below) the direct consonant's -> audio domain is ambiguous.
    ae_after_high = _band_mean(freqs, ae_after, 500, 3000)
    v_before_high = _band_mean(freqs, v_before, 500, 3000)
    assert ae_after_high < 3.0 * v_before_high
