"""Fig. 11(b) — EER per barrier material (wood vs glass), four attacks.

Paper: EERs are similar across the two materials and all below 4.2 %.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.acoustics.materials import GLASS_WINDOW, WOODEN_DOOR
from repro.attacks.base import AttackKind
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
)
from repro.eval.experiment import run_factor_sweep
from repro.eval.reporting import format_table

ATTACKS = [
    AttackKind.RANDOM,
    AttackKind.REPLAY,
    AttackKind.SYNTHESIS,
    AttackKind.HIDDEN_VOICE,
]


def _run(trained_segmenter):
    config = CampaignConfig(
        n_commands_per_participant=5, n_attacks_per_kind=5, seed=9300
    )
    detectors = DetectorBank(
        segmenter=trained_segmenter, include_baselines=False
    )
    return run_factor_sweep(
        "barrier_material",
        [WOODEN_DOOR, GLASS_WINDOW],
        ATTACKS,
        base_config=config,
        detectors=detectors,
    )


def test_fig11b_barrier_material(benchmark, trained_segmenter):
    results = run_once(benchmark, lambda: _run(trained_segmenter))
    rows = []
    for label, by_kind in results.items():
        for kind in ATTACKS:
            rows.append(
                (
                    label,
                    kind.value,
                    f"{by_kind[kind][FULL_SYSTEM].eer * 100:.1f}%",
                    "< 4.2%",
                )
            )
    emit(
        "fig11b_barrier_material",
        format_table(
            ["barrier", "attack", "full-system EER", "paper"],
            rows,
            title="Fig. 11(b) — EER per barrier material",
        ),
    )
    eers = {
        (label, kind): by_kind[kind][FULL_SYSTEM].eer
        for label, by_kind in results.items()
        for kind in ATTACKS
    }
    # All EERs in the paper's band; materials comparable.
    assert all(eer <= 0.07 for eer in eers.values())
    for kind in ATTACKS:
        wood = eers[("wooden door", kind)]
        glass = eers[("glass window", kind)]
        assert abs(wood - glass) <= 0.08
