"""Ablation benches for the design choices DESIGN.md calls out.

1. Artifact crop (≤5 Hz removal) on/off — the DC-sensitivity artifact is
   strongly correlated between replays, so keeping those rows inflates
   attack scores.
2. Vibration-domain normalization on/off under distance variation — the
   paper's normalization cancels user-to-VA distance.
3. Cross-correlation sync vs raw WiFi trigger — misaligned recordings
   destroy the correlation for everyone.
4. Log compression (the full system's feature normalization) vs the
   plain Eq. (6) linear features.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.core.features import FeatureConfig
from repro.core.pipeline import DefenseConfig, DefensePipeline
from repro.core.sync import SyncConfig
from repro.eval.metrics import evaluate_scores
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus

N_SAMPLES = 8


def _score_sets(pipeline, with_sync=True, distances=(1.0, 2.0, 3.0)):
    corpus = SyntheticCorpus(n_speakers=4, seed=9600)
    scenario = AttackScenario(room_config=ROOM_A)
    victim = corpus.speakers[0]
    replay = ReplayAttack(corpus, victim)
    legit, attack = [], []
    for index in range(N_SAMPLES):
        command = VA_COMMANDS[index % len(VA_COMMANDS)]
        utterance = corpus.utterance(
            phonemize(command), speaker=victim, rng=100 + index
        )
        scenario.user_to_va_m = distances[index % len(distances)]
        va, wearable = scenario.legitimate_recordings(
            utterance, spl_db=65.0 + 5.0 * (index % 3), rng=200 + index
        )
        if not with_sync:
            # Bypass alignment: pad the wearable back to VA length so
            # the raw (offset) recordings are compared directly.
            wearable = np.concatenate(
                [wearable, np.zeros(va.size - wearable.size)]
            )
        legit.append(
            pipeline.score(
                va, wearable, rng=300 + index,
                oracle_utterance=utterance,
            )
        )
        sound = replay.generate(command=command, rng=400 + index)
        va, wearable = scenario.attack_recordings(
            sound, spl_db=75.0, rng=500 + index
        )
        if not with_sync:
            wearable = np.concatenate(
                [wearable, np.zeros(va.size - wearable.size)]
            )
        attack.append(
            pipeline.score(
                va, wearable, rng=600 + index,
                oracle_utterance=sound.utterance,
            )
        )
    return legit, attack


def _pipeline(trained_segmenter, features=None, sync=None):
    config = DefenseConfig()
    if features is not None:
        config = DefenseConfig(features=features)
    if sync is not None:
        config.sync = sync
    return DefensePipeline(
        segmenter=trained_segmenter, config=config
    )


def _run_all(trained_segmenter):
    variants = {
        "full system": _pipeline(trained_segmenter),
        "no artifact crop": _pipeline(
            trained_segmenter,
            FeatureConfig(artifact_cutoff_hz=0.0, highpass_hz=0.0),
        ),
        "no normalization": _pipeline(
            trained_segmenter, FeatureConfig(normalize=False)
        ),
        "linear Eq.(6) features": _pipeline(
            trained_segmenter, FeatureConfig(log_compress=False)
        ),
        "tiny sync window (broken sync)": _pipeline(
            trained_segmenter, sync=SyncConfig(max_delay_s=0.004)
        ),
    }
    rows = {}
    for name, pipeline in variants.items():
        legit, attack = _score_sets(pipeline)
        rows[name] = evaluate_scores(legit, attack)
    return rows


def test_ablations(benchmark, trained_segmenter):
    metrics = run_once(benchmark, lambda: _run_all(trained_segmenter))
    table = [
        (
            name,
            f"{m.auc:.3f}",
            f"{m.eer * 100:.1f}%",
        )
        for name, m in metrics.items()
    ]
    emit(
        "ablations",
        format_table(
            ["variant", "AUC", "EER"],
            table,
            title="Ablations — replay attack, Room A "
                  f"({N_SAMPLES} legit / {N_SAMPLES} attack)",
        ),
    )
    full = metrics["full system"]
    assert full.auc >= 0.95
    # Breaking the sync must hurt badly: the correlation comparison
    # depends on aligned recordings.
    assert (
        metrics["tiny sync window (broken sync)"].auc <= full.auc
    )
    # Dropping the artifact crop lets the correlated DC artifact leak
    # into both sides' features, inflating attack scores.
    assert metrics["no artifact crop"].auc <= full.auc + 1e-9
