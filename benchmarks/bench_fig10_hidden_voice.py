"""Fig. 10 — ROC / AUC / EER against hidden voice attacks.

Paper values: audio 0.742 AUC / 35 % EER; vibration (no selection)
0.883 / 23.1 %; full system 1.0 / ~0-6 %.  Hidden voice commands are the
*easiest* attack for the full system because their wideband (0-6 kHz)
content makes the barrier's frequency selectivity maximally visible.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackKind
from repro.eval.campaign import (
    AUDIO_BASELINE,
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
    VIBRATION_BASELINE,
)
from repro.eval.experiment import run_attack_experiment
from repro.eval.reporting import format_roc_summary

PAPER_AUC = {
    AUDIO_BASELINE: 0.742,
    VIBRATION_BASELINE: 0.883,
    FULL_SYSTEM: 1.0,
}
PAPER_EER = {
    AUDIO_BASELINE: 0.35,
    VIBRATION_BASELINE: 0.231,
    FULL_SYSTEM: 0.01,
}


def _run(trained_segmenter):
    config = CampaignConfig(
        n_commands_per_participant=8, n_attacks_per_kind=8, seed=9100
    )
    detectors = DetectorBank(segmenter=trained_segmenter)
    return run_attack_experiment(
        AttackKind.HIDDEN_VOICE, config=config, detectors=detectors
    )


def test_fig10_hidden_voice_attack(benchmark, trained_segmenter):
    result = run_once(benchmark, lambda: _run(trained_segmenter))
    emit(
        "fig10_hidden_voice",
        format_roc_summary(
            "Fig. 10 — hidden voice attack",
            result.metrics,
            paper_auc=PAPER_AUC,
            paper_eer=PAPER_EER,
        ),
    )
    metrics = result.metrics
    # Full system near-perfect on hidden voice (paper: AUC 1.0).
    assert metrics[FULL_SYSTEM].auc >= 0.99
    assert metrics[FULL_SYSTEM].eer <= 0.03
    # Vibration at least matches audio (in the simulator both are
    # near-perfect against the wideband hidden commands, so allow a
    # small tolerance on the ordering).
    assert (
        metrics[VIBRATION_BASELINE].auc
        >= metrics[AUDIO_BASELINE].auc - 0.02
    )
