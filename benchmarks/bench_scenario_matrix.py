"""Scenario matrix — every registered pack, one ROC row each.

Sweeps the full scenario registry (baselines plus the ultrasound and
metamaterial packs) with the training-free rate-distortion segmenter
and reports AUC/EER per scenario, proving that each registry entry runs
end-to-end from its name alone.  ``REPRO_BENCH_QUICK=1`` shrinks the
campaign to smoke-test size (the CI scenario-smoke job uses it).
"""

from __future__ import annotations

import os

from benchmarks.conftest import emit, run_once
from repro.core.rate_distortion import RateDistortionSegmenter
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
)
from repro.eval.experiment import run_attack_experiment
from repro.eval.reporting import format_table
from repro.scenarios import get_scenario, list_scenarios

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N_COMMANDS = 1 if QUICK else 3
N_ATTACKS = 1 if QUICK else 3


def _run_matrix():
    results = {}
    for name in list_scenarios():
        spec = get_scenario(name)
        segmenter = RateDistortionSegmenter()
        detectors = DetectorBank(
            segmenter=segmenter,
            pipeline=spec.build_pipeline(segmenter=segmenter),
            include_baselines=False,
        )
        config = CampaignConfig(
            n_commands_per_participant=N_COMMANDS,
            n_attacks_per_kind=N_ATTACKS,
            use_oracle_segmentation=False,
            seed=9500,
            scenario=name,
            attack_spl_db=spec.attack_spl_db,
        )
        result = run_attack_experiment(
            spec.attack_kind,
            rooms=spec.rooms(),
            config=config,
            detectors=detectors,
        )
        results[name] = (spec, result.metrics[FULL_SYSTEM])
    return results


def test_scenario_matrix(benchmark):
    results = run_once(benchmark, _run_matrix)
    rows = []
    for name, (spec, metrics) in results.items():
        rows.append(
            (
                name,
                spec.attack,
                spec.material or "(room default)",
                f"{metrics.auc:.3f}",
                f"{metrics.eer * 100:.1f}%",
                spec.fingerprint[:10],
            )
        )
    emit(
        "scenario_matrix",
        format_table(
            [
                "scenario",
                "attack",
                "material",
                "AUC",
                "EER",
                "fingerprint",
            ],
            rows,
            title=(
                "Scenario matrix — full-system ROC per registered pack"
                + (" (quick)" if QUICK else "")
            ),
        ),
    )
    assert set(results) == set(list_scenarios())
    # The metamaterial notch kills the thru-barrier attack outright;
    # the control with the notch parked out of band must not.
    meta = results["metamaterial-barrier"][1]
    assert meta.auc >= 0.9
