"""Batched vs sequential inference throughput (not a paper figure).

Measures the vectorized micro-batch fast path end-to-end: the masked
BLSTM segmentation stage (`PhonemeSegmenter.segments_batch` vs a
sequential `segments` loop), the cross-domain sensing stage
(`CrossDomainSensor.convert_batch` vs a sequential `convert` loop),
and the full pipeline (`DefensePipeline.analyze_batch` vs an
`analyze_timed` loop) at batch sizes 1/4/8/16, plus the opt-in
float32 compute path.  The acceptance bar: batched segmentation at
batch 8 must be at least 2x the sequential throughput (the vectorized
forward amortizes Python-level recurrence overhead across the batch).

Runs two ways:

* under pytest-benchmark (``make bench``), emitting
  ``benchmarks/results/batched_inference.txt``;
* as a plain script — ``python benchmarks/bench_batched_inference.py
  [--quick]`` — for the ``perf-smoke`` CI job, which only gates that
  batched beats sequential at batch 8 (exit status 1 otherwise).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: make repo imports work
    _ROOT = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT))
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.core.pipeline import BatchAnalysisItem, DefensePipeline
from repro.core.segmentation import default_segmenter
from repro.eval.reporting import format_table
from repro.sensing.cross_domain import CrossDomainSensor

AUDIO_RATE = 16_000.0
BATCH_SIZES = (1, 4, 8, 16)
SPEEDUP_TARGET = 2.0  # batched vs sequential segmentation at batch 8


def _segmenter():
    # Tiny deterministic recipe (memoized): enough to exercise the real
    # BLSTM forward without minutes of training.
    return default_segmenter(
        seed=9300, n_speakers=2, n_per_phoneme=3, epochs=3
    )


def _recordings(n, seed=9301):
    """Ragged-length noise pairs; noise fully exercises the model."""
    generator = np.random.default_rng(seed)
    pairs = []
    for index in range(n):
        n_samples = 6_000 + 500 * (index % 5)
        va = generator.normal(0.0, 0.1, n_samples)
        wearable = 0.8 * va + generator.normal(0.0, 0.02, n_samples)
        pairs.append((va, wearable))
    return pairs


def _timed(func, rounds):
    """(total_s, per-round seconds) with one untimed warmup call."""
    func()
    laps = []
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        laps.append(time.perf_counter() - start)
    return sum(laps), laps


def measure_segmentation(segmenter, batch_sizes, rounds):
    """Rows of (batch, seq req/s, batched req/s, speedup, f32 req/s)."""
    rows = []
    speedups = {}
    for batch in batch_sizes:
        audios = [va for va, _ in _recordings(batch)]
        seq_total, _ = _timed(
            lambda: [segmenter.segments(audio) for audio in audios],
            rounds,
        )
        bat_total, _ = _timed(
            lambda: segmenter.segments_batch(audios), rounds
        )
        f32_total, _ = _timed(
            lambda: segmenter.segments_batch(audios, dtype=np.float32),
            rounds,
        )
        n = batch * rounds
        speedup = seq_total / bat_total
        speedups[batch] = speedup
        rows.append(
            (
                batch,
                f"{n / seq_total:.1f}",
                f"{n / bat_total:.1f}",
                f"{speedup:.2f}x",
                f"{n / f32_total:.1f}",
            )
        )
    return rows, speedups


def measure_sensing(batch_sizes, rounds):
    """Rows of (batch, seq req/s, batched req/s, speedup) for the
    cross-domain sensing stage (`convert_batch` vs a `convert` loop,
    same per-item rng streams — results are bitwise identical)."""
    sensor = CrossDomainSensor()
    rows = []
    for batch in batch_sizes:
        audios = [va for va, _ in _recordings(batch)]
        seeds = list(range(batch))
        seq_total, _ = _timed(
            lambda: [
                sensor.convert(audio, AUDIO_RATE, rng=seed)
                for audio, seed in zip(audios, seeds)
            ],
            rounds,
        )
        bat_total, _ = _timed(
            lambda: sensor.convert_batch(
                audios, AUDIO_RATE, rngs=seeds
            ),
            rounds,
        )
        n = batch * rounds
        rows.append(
            (
                batch,
                f"{n / seq_total:.1f}",
                f"{n / bat_total:.1f}",
                f"{seq_total / bat_total:.2f}x",
            )
        )
    return rows


def measure_end_to_end(segmenter, batch_sizes, rounds):
    """Rows of (batch, seq/batched req/s, seq/batched p95 ms)."""
    pipeline = DefensePipeline(segmenter=segmenter)
    rows = []
    for batch in batch_sizes:
        pairs = _recordings(batch)
        items = [
            BatchAnalysisItem(
                va_audio=va, wearable_audio=wearable, rng=index
            )
            for index, (va, wearable) in enumerate(pairs)
        ]

        def sequential():
            latencies = []
            for index, (va, wearable) in enumerate(pairs):
                start = time.perf_counter()
                pipeline.analyze_timed(va, wearable, rng=index)
                latencies.append(time.perf_counter() - start)
            return latencies

        seq_latencies = []
        sequential()  # warmup
        seq_total = 0.0
        for _ in range(rounds):
            start = time.perf_counter()
            seq_latencies.extend(sequential())
            seq_total += time.perf_counter() - start

        bat_total, laps = _timed(
            lambda: pipeline.analyze_batch(items), rounds
        )
        # Batch members finish together: per-request latency is the
        # whole batch wall clock.
        bat_latencies = [lap for lap in laps for _ in range(batch)]
        n = batch * rounds
        rows.append(
            (
                batch,
                f"{n / seq_total:.1f}",
                f"{n / bat_total:.1f}",
                f"{np.percentile(seq_latencies, 95) * 1e3:.1f}",
                f"{np.percentile(bat_latencies, 95) * 1e3:.1f}",
            )
        )
    return rows


def run_sweep(batch_sizes=BATCH_SIZES, rounds=5):
    segmenter = _segmenter()
    seg_rows, speedups = measure_segmentation(
        segmenter, batch_sizes, rounds
    )
    sense_rows = measure_sensing(batch_sizes, rounds)
    e2e_rows = measure_end_to_end(segmenter, batch_sizes, rounds)
    return seg_rows, speedups, sense_rows, e2e_rows


def render(seg_rows, sense_rows, e2e_rows, rounds):
    body = format_table(
        ["batch", "seq req/s", "batched req/s", "speedup", "f32 req/s"],
        seg_rows,
        title=(
            f"segmentation stage — one masked BLSTM forward per batch, "
            f"{rounds} round(s)"
        ),
    )
    body += "\n\n"
    body += format_table(
        ["batch", "seq req/s", "batched req/s", "speedup"],
        sense_rows,
        title=(
            "sensing stage — vectorized replay chain "
            "(convert_batch vs convert loop)"
        ),
    )
    body += "\n\n"
    body += format_table(
        [
            "batch",
            "seq req/s",
            "batched req/s",
            "seq p95 ms",
            "batched p95 ms",
        ],
        e2e_rows,
        title="end-to-end pipeline — analyze_batch vs sequential loop",
    )
    return body


def test_batched_inference(benchmark):
    rounds = 5
    seg_rows, speedups, sense_rows, e2e_rows = run_once(
        benchmark, lambda: run_sweep(rounds=rounds)
    )
    emit(
        "batched_inference",
        render(seg_rows, sense_rows, e2e_rows, rounds),
    )
    assert speedups[8] >= SPEEDUP_TARGET, (
        f"batched segmentation at batch 8 is only {speedups[8]:.2f}x "
        f"sequential (target {SPEEDUP_TARGET}x)"
    )


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="sequential vs batched inference throughput"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke: batch sizes (1, 8), 2 rounds, and only gate "
            "that batched beats sequential at batch 8"
        ),
    )
    args = parser.parse_args(argv)

    batch_sizes = (1, 8) if args.quick else BATCH_SIZES
    rounds = 2 if args.quick else 5
    seg_rows, speedups, sense_rows, e2e_rows = run_sweep(
        batch_sizes=batch_sizes, rounds=rounds
    )
    print(render(seg_rows, sense_rows, e2e_rows, rounds))

    target = 1.0 if args.quick else SPEEDUP_TARGET
    if speedups[8] < target:
        print(
            f"FAIL: batched segmentation at batch 8 is "
            f"{speedups[8]:.2f}x sequential (target >= {target}x)"
        )
        return 1
    print(
        f"OK: batched segmentation at batch 8 is {speedups[8]:.2f}x "
        f"sequential (target >= {target}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
