"""Fig. 11(d) — EER per room environment (A/B/C/D), four attacks.

Paper: below 5 % in every room; hidden voice attacks are the easiest
(close to 0 % EER) because their wideband content exposes the barrier's
frequency selectivity most clearly.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackKind
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
)
from repro.eval.experiment import run_factor_sweep
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A, ROOM_B, ROOM_C, ROOM_D

ATTACKS = [
    AttackKind.RANDOM,
    AttackKind.REPLAY,
    AttackKind.SYNTHESIS,
    AttackKind.HIDDEN_VOICE,
]


def _run(trained_segmenter):
    config = CampaignConfig(
        n_commands_per_participant=5, n_attacks_per_kind=5, seed=9500
    )
    detectors = DetectorBank(
        segmenter=trained_segmenter, include_baselines=False
    )
    return run_factor_sweep(
        "room",
        [ROOM_A, ROOM_B, ROOM_C, ROOM_D],
        ATTACKS,
        base_config=config,
        detectors=detectors,
    )


def test_fig11d_rooms(benchmark, trained_segmenter):
    results = run_once(benchmark, lambda: _run(trained_segmenter))
    rows = []
    for label, by_kind in results.items():
        for kind in ATTACKS:
            rows.append(
                (
                    label,
                    kind.value,
                    f"{by_kind[kind][FULL_SYSTEM].eer * 100:.1f}%",
                    "< 5%",
                )
            )
    emit(
        "fig11d_rooms",
        format_table(
            ["room", "attack", "full-system EER", "paper"],
            rows,
            title="Fig. 11(d) — EER per room environment",
        ),
    )
    hidden_eers = []
    clear_eers = []
    for label, by_kind in results.items():
        for kind in ATTACKS:
            eer = by_kind[kind][FULL_SYSTEM].eer
            assert eer <= 0.08
            if kind is AttackKind.HIDDEN_VOICE:
                hidden_eers.append(eer)
            else:
                clear_eers.append(eer)
    # Hidden voice is the easiest attack on average.
    assert np.mean(hidden_eers) <= np.mean(clear_eers) + 0.01
