"""Segmenter backends: trained BLSTM vs training-free rate-distortion.

Compares the paper's BLSTM frame classifier against the
rate-distortion backend on the axes that matter for choosing one at
deployment: frame accuracy against the alignment labels, temporal IoU
of the detected segments against the oracle segments, and
time-to-first-verdict (segmenter construction + one full pipeline
analysis, i.e. what a cold serving worker pays before it can answer).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.scenario import AttackScenario
from repro.core.pipeline import DefensePipeline
from repro.core.rate_distortion import RateDistortionSegmenter
from repro.core.segmentation import (
    PhonemeSegmenter,
    train_default_segmenter,
    training_run_count,
)
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus

N_UTTERANCES = 6
#: Same training-recipe sizing as bench_cold_start, for comparability.
BLSTM_RECIPE = dict(n_speakers=4, n_per_phoneme=8, epochs=12)


def _segment_iou(predicted, reference, duration_s):
    """Temporal IoU of two segment lists, rasterized at 1 ms."""
    grid = np.zeros(max(int(round(duration_s * 1000)), 1), dtype=np.uint8)
    masks = []
    for segments in (predicted, reference):
        mask = grid.copy()
        for start, end in segments:
            begin = max(int(round(start * 1000)), 0)
            stop = min(int(round(end * 1000)), mask.size)
            mask[begin:stop] = 1
        masks.append(mask.astype(bool))
    union = float((masks[0] | masks[1]).sum())
    if union == 0:
        return 1.0
    return float((masks[0] & masks[1]).sum()) / union


def _quality(blstm, rd, corpus):
    """Mean frame accuracy and oracle-segment IoU per backend."""
    oracle = PhonemeSegmenter(rng=0)  # untrained: labels/oracle only
    accuracy = {"blstm": [], "rd": []}
    iou = {"blstm": [], "rd": []}
    for index in range(N_UTTERANCES):
        command = VA_COMMANDS[index % len(VA_COMMANDS)]
        utterance = corpus.utterance(
            phonemize(command), rng=700 + index
        )
        wave = utterance.waveform
        duration = wave.size / utterance.sample_rate
        labels = oracle.frame_labels(utterance).astype(bool)
        reference = oracle.oracle_segments(utterance)
        for name, segmenter in (("blstm", blstm), ("rd", rd)):
            threshold = segmenter.config.decision_threshold
            predicted = (
                segmenter.frame_probabilities(wave) >= threshold
            )
            accuracy[name].append(float((predicted == labels).mean()))
            iou[name].append(
                _segment_iou(segmenter.segments(wave), reference,
                             duration)
            )
    return (
        {name: float(np.mean(values)) for name, values in
         accuracy.items()},
        {name: float(np.mean(values)) for name, values in iou.items()},
    )


def _time_to_first_verdict(corpus):
    """Cold segmenter build + one pipeline analysis, per backend."""
    scenario = AttackScenario(room_config=ROOM_A)
    utterance = corpus.utterance(
        phonemize(VA_COMMANDS[0]), rng=800
    )
    va, wearable = scenario.legitimate_recordings(
        utterance, spl_db=70.0, rng=801
    )

    def first_verdict(build):
        start = time.perf_counter()
        pipeline = DefensePipeline(segmenter=build())
        pipeline.analyze(va, wearable, rng=802)
        return time.perf_counter() - start

    runs_before = training_run_count()
    rd_s = first_verdict(RateDistortionSegmenter)
    rd_trained = training_run_count() - runs_before
    # Fresh training (not the memoized default_segmenter): this is the
    # cold path a store-less worker pays.
    blstm_s = first_verdict(
        lambda: train_default_segmenter(seed=1234, **BLSTM_RECIPE)
    )
    return blstm_s, rd_s, rd_trained


def _compare(blstm):
    corpus = SyntheticCorpus(n_speakers=4, seed=9700)
    rd = RateDistortionSegmenter()
    accuracy, iou = _quality(blstm, rd, corpus)
    blstm_ttfv_s, rd_ttfv_s, rd_trained = _time_to_first_verdict(corpus)
    return {
        "accuracy": accuracy,
        "iou": iou,
        "ttfv_s": {"blstm": blstm_ttfv_s, "rd": rd_ttfv_s},
        "rd_training_runs": rd_trained,
    }


def test_segmenter_backends(benchmark, trained_segmenter):
    results = run_once(benchmark, lambda: _compare(trained_segmenter))
    recipe = "x".join(str(v) for v in BLSTM_RECIPE.values())
    rows = [
        (
            name,
            f"{results['accuracy'][key]:.3f}",
            f"{results['iou'][key]:.3f}",
            f"{results['ttfv_s'][key]:.2f}",
            trained,
        )
        for name, key, trained in (
            (f"BLSTM (trained, {recipe})", "blstm", "yes"),
            ("rate-distortion (training-free)", "rd", "no"),
        )
    ]
    emit(
        "segmenter_backends",
        format_table(
            ["backend", "frame acc", "segment IoU",
             "first verdict s", "trains"],
            rows,
            title=(
                "Segmenter backends — frame accuracy / oracle-segment "
                f"IoU over {N_UTTERANCES} utterances, cold "
                "time-to-first-verdict"
            ),
        ),
    )
    # Both backends must be usable (well above chance); the RD backend
    # must additionally be much faster to first verdict, with zero
    # training runs.  (On this synthetic corpus the two land within a
    # few points of each other — neither ordering is pinned.)
    assert results["accuracy"]["blstm"] >= 0.6
    assert results["accuracy"]["rd"] >= 0.6
    assert results["iou"]["blstm"] >= 0.3
    assert results["iou"]["rd"] >= 0.3
    assert results["rd_training_runs"] == 0
    assert results["ttfv_s"]["rd"] < results["ttfv_s"]["blstm"] / 5.0
