"""Service cold start: time-to-first-verdict with and without the store.

Not a paper figure — this measures what the artifact store
(`repro.store`) buys the online service.  For each process-worker
count the table reports the time from service construction to the
first served verdict (TTFV) under three regimes:

``no-store``
    ``--no-store`` serving: every worker trains the segmenter itself.
``cold store``
    An empty store: the workers race on the entry lock, exactly one
    trains and publishes, the rest block and load.
``warm store``
    A store populated by an earlier run: pure weight loads, zero
    training anywhere.

The acceptance bar: a warm store must cut process-worker TTFV by at
least 10x versus a cold one, the cold run must publish exactly one
artifact regardless of worker count, and the warm run must train
nothing.  Worker counts default to (1, 2, 4); override with
``REPRO_BENCH_COLD_START_WORKERS`` (comma-separated).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.eval.reporting import format_table
from repro.serve import (
    PipelineSpec,
    ServiceConfig,
    VerificationRequest,
    VerificationService,
)
from repro.store import ArtifactStore, ModelRegistry

#: Training recipe sized so one training run dominates a process
#: fork + weight load by well over the 10x acceptance ratio.
RECIPE = dict(n_speakers=4, n_per_phoneme=8, epochs=12)

#: Seed base; every (scenario, worker-count) cell gets its own seed so
#: no fork-inherited in-process memo can leak warmth between cells.
SEED_BASE = 86_000


def _worker_counts():
    spec = os.environ.get("REPRO_BENCH_COLD_START_WORKERS", "")
    if spec:
        return [int(token) for token in spec.split(",")]
    return [1, 2, 4]


def _make_pair(seed, n_samples=8_000):
    rng = np.random.default_rng(seed)
    va = rng.normal(0.0, 0.1, n_samples)
    wearable = 0.8 * va + rng.normal(0.0, 0.02, n_samples)
    return va, wearable


def _time_to_first_verdict(seed, n_workers, store_dir):
    """Seconds from service construction to the first served verdict."""
    spec = PipelineSpec(
        segmenter_seed=seed,
        store_dir=None if store_dir is None else str(store_dir),
        **RECIPE,
    )
    config = ServiceConfig(n_workers=n_workers, worker_mode="process")
    va, wearable = _make_pair(5)
    start = time.perf_counter()
    with VerificationService(spec, config) as service:
        response = service.verify(
            VerificationRequest(
                va_audio=va, wearable_audio=wearable, seed=0
            )
        )
        elapsed = time.perf_counter() - start
        mode = service.realized_worker_mode
    assert response.verdict is not None
    return elapsed, mode


def _measure(worker_counts, tmp_path):
    cells = {}
    for index, n_workers in enumerate(worker_counts):
        seeds = [SEED_BASE + 10 * index + offset for offset in range(3)]
        base = tmp_path / f"workers-{n_workers}"

        no_store_s, mode = _time_to_first_verdict(
            seeds[0], n_workers, store_dir=None
        )
        if mode != "process":
            pytest.skip(
                "process workers unavailable on this platform; "
                "cold-start ratios are only meaningful across processes"
            )

        cold_dir = base / "cold"
        cold_s, _ = _time_to_first_verdict(
            seeds[1], n_workers, store_dir=cold_dir
        )
        cold_store = ArtifactStore(cold_dir)
        # One trainer, many loaders: N racing workers, one artifact.
        assert len(cold_store.entries()) == 1
        assert cold_store.quarantined() == []

        warm_dir = base / "warm"
        # Populate out-of-band (the registry bypasses the in-process
        # memo, so the timed run below still has to hit the disk).
        ModelRegistry(warm_dir).segmenter(seed=seeds[2], **RECIPE)
        warm_s, _ = _time_to_first_verdict(
            seeds[2], n_workers, store_dir=warm_dir
        )
        # Zero training on a warm start: nothing new was published.
        assert len(ArtifactStore(warm_dir).entries()) == 1

        cells[n_workers] = (no_store_s, cold_s, warm_s)
    return cells


def test_cold_start(benchmark, tmp_path):
    worker_counts = sorted(set(_worker_counts()))
    cells = run_once(benchmark, lambda: _measure(worker_counts, tmp_path))

    rows = []
    for n_workers in worker_counts:
        no_store_s, cold_s, warm_s = cells[n_workers]
        speedup = cold_s / warm_s
        rows.append(
            (
                n_workers,
                f"{no_store_s:.2f}",
                f"{cold_s:.2f}",
                f"{warm_s:.2f}",
                f"{speedup:.1f}x",
            )
        )
        assert speedup >= 10.0, (
            f"warm store must cut TTFV >= 10x at {n_workers} workers, "
            f"got cold {cold_s:.2f}s / warm {warm_s:.2f}s = "
            f"{speedup:.1f}x"
        )

    body = format_table(
        [
            "workers",
            "no-store s",
            "cold-store s",
            "warm-store s",
            "cold/warm",
        ],
        rows,
        title=(
            "time-to-first-verdict, process workers — "
            f"training recipe {RECIPE['n_speakers']} speakers x "
            f"{RECIPE['n_per_phoneme']} renditions x "
            f"{RECIPE['epochs']} epochs, {os.cpu_count() or 1} core(s)"
        ),
    )
    body += (
        "\n\nno-store trains in every worker; a cold store trains in "
        "exactly one\n(the rest block on the entry lock and load); a "
        "warm store only loads.\n"
    )
    emit("cold_start", body)
