"""Fig. 9 — ROC / AUC / EER against the three clear-voice attacks.

Regenerates the paper's headline evaluation: random, replay, and voice
synthesis attacks across the four rooms, scored by the audio-domain
baseline, the vibration baseline without phoneme selection, and the full
defense system.  Paper values (AUC / EER):

    random    — audio 0.693/37.4 %, vibration 0.884/21 %, full 0.994/3.8 %
    replay    — audio 0.688/37.5 %, vibration 0.869/20.7 %, full 0.995/3.5 %
    synthesis — audio 0.662/37 %,   vibration 0.83/20.5 %,  full 0.99/3.9 %

The absolute numbers differ (our substrate is a simulator), but the
ordering — full ≫ vibration ≫ audio — must hold for every attack.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackKind
from repro.eval.campaign import (
    AUDIO_BASELINE,
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
    VIBRATION_BASELINE,
)
from repro.eval.experiment import run_attack_experiment
from repro.eval.reporting import format_roc_summary, format_runner_stats

# Campaign scoring shards across this many worker processes (0 = one
# per core).  Scores are identical for any value; only wall clock moves.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1")) or None

PAPER_AUC = {
    AttackKind.RANDOM: {
        AUDIO_BASELINE: 0.693, VIBRATION_BASELINE: 0.884,
        FULL_SYSTEM: 0.994,
    },
    AttackKind.REPLAY: {
        AUDIO_BASELINE: 0.688, VIBRATION_BASELINE: 0.869,
        FULL_SYSTEM: 0.995,
    },
    AttackKind.SYNTHESIS: {
        AUDIO_BASELINE: 0.662, VIBRATION_BASELINE: 0.830,
        FULL_SYSTEM: 0.990,
    },
}
PAPER_EER = {
    AttackKind.RANDOM: {
        AUDIO_BASELINE: 0.374, VIBRATION_BASELINE: 0.21,
        FULL_SYSTEM: 0.038,
    },
    AttackKind.REPLAY: {
        AUDIO_BASELINE: 0.375, VIBRATION_BASELINE: 0.207,
        FULL_SYSTEM: 0.035,
    },
    AttackKind.SYNTHESIS: {
        AUDIO_BASELINE: 0.37, VIBRATION_BASELINE: 0.205,
        FULL_SYSTEM: 0.039,
    },
}


def _run(kind, trained_segmenter):
    config = CampaignConfig(
        n_commands_per_participant=8, n_attacks_per_kind=8, seed=9000
    )
    detectors = DetectorBank(segmenter=trained_segmenter)
    return run_attack_experiment(
        kind, config=config, detectors=detectors, n_workers=WORKERS
    )


def _emit_panel(name, kind, result):
    body = format_roc_summary(
        f"Fig. 9 — {kind.value} attack "
        f"({result.metrics[FULL_SYSTEM].n_legit} legit / "
        f"{result.metrics[FULL_SYSTEM].n_attack} attack samples)",
        result.metrics,
        paper_auc=PAPER_AUC[kind],
        paper_eer=PAPER_EER[kind],
    )
    if result.stats is not None:
        body += "\n" + format_runner_stats(result.stats)
    emit(name, body)


def _assert_shape(result, kind):
    metrics = result.metrics
    # The headline ordering of the paper must hold.
    assert (
        metrics[FULL_SYSTEM].auc >= metrics[VIBRATION_BASELINE].auc - 0.02
    )
    assert (
        metrics[VIBRATION_BASELINE].auc > metrics[AUDIO_BASELINE].auc
    )
    # The full system achieves the paper's <4-5 % EER band.
    assert metrics[FULL_SYSTEM].eer <= 0.05
    # The audio baseline is clearly degraded.
    assert metrics[AUDIO_BASELINE].eer >= 0.08


def test_fig9a_random_attack(benchmark, trained_segmenter):
    result = run_once(
        benchmark, lambda: _run(AttackKind.RANDOM, trained_segmenter)
    )
    _emit_panel("fig9a_random_attack", AttackKind.RANDOM, result)
    _assert_shape(result, AttackKind.RANDOM)


def test_fig9b_replay_attack(benchmark, trained_segmenter):
    result = run_once(
        benchmark, lambda: _run(AttackKind.REPLAY, trained_segmenter)
    )
    _emit_panel("fig9b_replay_attack", AttackKind.REPLAY, result)
    _assert_shape(result, AttackKind.REPLAY)


def test_fig9c_synthesis_attack(benchmark, trained_segmenter):
    result = run_once(
        benchmark, lambda: _run(AttackKind.SYNTHESIS, trained_segmenter)
    )
    _emit_panel("fig9c_synthesis_attack", AttackKind.SYNTHESIS, result)
    _assert_shape(result, AttackKind.SYNTHESIS)
