"""Table I — thru-barrier attack success against four VA devices.

Regenerates the paper's attack study: replay the wake word behind a
glass window / wooden door at 65 and 75 dB, 10 attempts per cell, and
count how many attempts trigger each device.  Random and synthesis
attacks are skipped on Siri devices (voice-recognition gate), as in the
paper.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro.acoustics.materials import GLASS_WINDOW, WOODEN_DOOR
from repro.acoustics.propagation import propagate
from repro.attacks.base import AttackKind
from repro.attacks.random_attack import RandomAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.attacks.synthesis import VoiceSynthesisAttack
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A
from repro.phonemes.corpus import SyntheticCorpus
from repro.utils.rng import child_rng
from repro.va.device import VA_DEVICES, VoiceAssistantDevice

N_ATTEMPTS = 10

#: Table I reference rows: (device, barrier, attack) -> (65 dB, 75 dB).
PAPER_TABLE1 = {
    ("Google Home", "glass window", "random"): (9, 10),
    ("Google Home", "glass window", "replay"): (10, 10),
    ("Google Home", "glass window", "synthesis"): (4, 10),
    ("Google Home", "wooden door", "random"): (10, 10),
    ("Google Home", "wooden door", "replay"): (10, 10),
    ("Google Home", "wooden door", "synthesis"): (8, 10),
    ("Alexa Echo", "glass window", "random"): (5, 10),
    ("Alexa Echo", "glass window", "replay"): (4, 10),
    ("Alexa Echo", "glass window", "synthesis"): (3, 10),
    ("Alexa Echo", "wooden door", "random"): (9, 10),
    ("Alexa Echo", "wooden door", "replay"): (10, 10),
    ("Alexa Echo", "wooden door", "synthesis"): (3, 10),
    ("MacBook Pro", "glass window", "replay"): (4, 10),
    ("MacBook Pro", "wooden door", "replay"): (4, 10),
    ("iPhone", "glass window", "replay"): (0, 6),
    ("iPhone", "wooden door", "replay"): (0, 7),
}


def _attack_generators(corpus, rng):
    victim, adversary = corpus.speakers[0], corpus.speakers[1]
    return {
        "random": RandomAttack(corpus, adversary),
        "replay": ReplayAttack(corpus, victim),
        "synthesis": VoiceSynthesisAttack(
            corpus, victim, rng=child_rng(rng, "tts")
        ),
    }


def _run_study():
    corpus = SyntheticCorpus(n_speakers=4, seed=1000)
    rng = np.random.default_rng(1001)
    generators = _attack_generators(corpus, rng)
    rows = []
    for barrier in (GLASS_WINDOW, WOODEN_DOOR):
        room = dataclasses.replace(ROOM_A, barrier=barrier)
        scenario = AttackScenario(room_config=room)
        for device_name, spec in VA_DEVICES.items():
            wake = spec.wake_word
            for attack_name, generator in generators.items():
                voice_matches = attack_name in ("replay", "synthesis")
                if spec.has_voice_recognition and attack_name != "replay":
                    # Siri rejects unrecognized voices; the paper leaves
                    # these cells blank.
                    continue
                cell = []
                for level in (65.0, 75.0):
                    successes = 0
                    for attempt in range(N_ATTEMPTS):
                        attack = generator.generate(
                            command=wake,
                            rng=child_rng(
                                rng,
                                f"{barrier.name}{device_name}"
                                f"{attack_name}{level}{attempt}",
                            ),
                        )
                        interior = scenario.channel.transmit(
                            attack.waveform,
                            attack.sample_rate,
                            level,
                            rng=child_rng(rng, f"b{attempt}{level}"),
                        )
                        at_device = propagate(
                            interior, attack.sample_rate, 2.0
                        )
                        device = VoiceAssistantDevice(spec)
                        result = device.try_trigger(
                            at_device,
                            attack.sample_rate,
                            voice_matches_user=voice_matches,
                            rng=child_rng(rng, f"t{attempt}{level}"),
                        )
                        successes += result.triggered
                    cell.append(successes)
                paper = PAPER_TABLE1.get(
                    (device_name, barrier.name, attack_name)
                )
                paper_text = (
                    f"{paper[0]}/10; {paper[1]}/10" if paper else "-"
                )
                rows.append(
                    (
                        device_name,
                        barrier.name,
                        attack_name,
                        f"{cell[0]}/10; {cell[1]}/10",
                        paper_text,
                    )
                )
    return rows


def test_table1_attack_success(benchmark):
    rows = run_once(benchmark, _run_study)
    emit(
        "table1_attack_success",
        format_table(
            ["device", "barrier", "attack", "measured (65;75 dB)",
             "paper (65;75 dB)"],
            rows,
            title="Table I — thru-barrier attack success out of "
                  f"{N_ATTEMPTS} attempts",
        ),
    )
    measured = {
        (device, barrier, attack): cell
        for device, barrier, attack, cell, _ in rows
    }
    # Shape checks: attacks succeed broadly at 75 dB on smart speakers;
    # the iPhone is the hardest target.
    google_75 = int(
        measured[("Google Home", "glass window", "replay")]
        .split("; ")[1]
        .split("/")[0]
    )
    iphone_65 = int(
        measured[("iPhone", "glass window", "replay")]
        .split("; ")[0]
        .split("/")[0]
    )
    assert google_75 >= 8
    assert iphone_65 <= 4
