"""Shared benchmark fixtures and result reporting.

Every benchmark regenerates one of the paper's tables or figures: it
prints the measured rows next to the paper's reported values and also
appends them to ``benchmarks/results/<name>.txt`` so the full record
survives pytest's output capturing.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    sys.stdout.write(banner + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def trained_segmenter():
    """One segmenter trained with the paper's recipe, shared by benches."""
    from repro.core.segmentation import train_default_segmenter

    return train_default_segmenter(seed=404)


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
