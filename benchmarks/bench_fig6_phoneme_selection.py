"""Fig. 6 — third-quartile vibration profiles and the alpha threshold.

Regenerates the phoneme-selection demonstration: the Q3 FFT-magnitude
profile of /er/ with and without the barrier, against the threshold
alpha.  /er/ is barrier-effect sensitive: its thru-barrier profile must
sit entirely below alpha (Criterion I) and its direct profile entirely
above (Criterion II).  The loud vowel /aa/ and weak fricative /s/ are
profiled as the counterexamples.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.core.phoneme_selection import (
    PhonemeSelectionConfig,
    PhonemeSelector,
)
from repro.eval.reporting import format_table, sparkline


def _profiles():
    selector = PhonemeSelector(
        config=PhonemeSelectionConfig(n_segments=24), seed=6000
    )
    return {
        symbol: selector.profile(symbol)
        for symbol in ("er", "aa", "s")
    }, selector.config.alpha


def test_fig6_phoneme_selection_profiles(benchmark):
    profiles, alpha = run_once(benchmark, _profiles)
    rows = [
        (
            f"/{symbol}/",
            f"{profile.max_thru_barrier():.5f}",
            f"{profile.min_direct():.5f}",
            "yes" if profile.max_thru_barrier() < alpha else "no",
            "yes" if profile.min_direct() > alpha else "no",
        )
        for symbol, profile in profiles.items()
    ]
    lines = []
    for symbol, profile in profiles.items():
        lines.append(
            f"/{symbol}/ thru  : {sparkline(profile.q3_thru_barrier)}"
        )
        lines.append(
            f"/{symbol}/ direct: {sparkline(profile.q3_direct)}"
        )
    emit(
        "fig6_phoneme_selection",
        format_table(
            ["phoneme", "max Q3 thru-barrier", "min Q3 direct",
             "Criterion I", "Criterion II"],
            rows,
            title=f"Fig. 6 — Q3 profiles vs alpha = {alpha}",
        )
        + "\n\nQ3 profiles (20-80 Hz):\n" + "\n".join(lines),
    )

    er, aa, s = profiles["er"], profiles["aa"], profiles["s"]
    # /er/ passes both criteria (the paper's Fig. 6 example).
    assert er.max_thru_barrier() < alpha
    assert er.min_direct() > alpha
    # /aa/ fails Criterion I: loud enough to trigger thru the barrier.
    assert aa.max_thru_barrier() > alpha
    # /s/ fails Criterion II: too weak to trigger even directly.
    assert s.min_direct() < alpha
