"""Defense-in-depth: voice authentication alone vs layered with the defense.

The paper positions the thru-barrier defense as "an additional layer on
top of the existing voice authentication systems".  This bench
quantifies why the layer is needed: a speaker verifier enrolled on the
victim stops random-voice attacks but is fooled by replayed and cloned
voices, while the cross-domain defense catches all three — and the
layered system keeps the verifier's impostor rejection too.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.attacks.random_attack import RandomAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.attacks.synthesis import VoiceSynthesisAttack
from repro.core.pipeline import DefensePipeline
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.va.verification import SpeakerVerifier, VerifierConfig

N_TRIALS = 6
DEFENSE_THRESHOLD = 0.45

#: Wake-word-style voice matching: F0 and low-formant dominated (the
#: band that survives room channels), with a loose threshold — the
#: operating point at which commercial assistants accept thru-barrier
#: replays (Table I) while still rejecting unknown voices.
AUTH_CONFIG = VerifierConfig(band_hz=1000.0, accept_threshold=0.65)


def _run(trained_segmenter):
    corpus = SyntheticCorpus(n_speakers=6, seed=9950)
    scenario = AttackScenario(room_config=ROOM_A)
    victim, impostor = corpus.speakers[0], corpus.speakers[1]

    verifier = SpeakerVerifier(AUTH_CONFIG)
    verifier.enroll(
        [
            corpus.utterance(
                phonemize(VA_COMMANDS[i]), speaker=victim, rng=10 + i
            ).waveform
            for i in range(5)
        ]
    )
    pipeline = DefensePipeline(segmenter=trained_segmenter)

    attacks = {
        "random": RandomAttack(corpus, impostor),
        "replay": ReplayAttack(corpus, victim),
        "synthesis": VoiceSynthesisAttack(corpus, victim, rng=11),
    }
    rows = []
    for name, generator in attacks.items():
        auth_blocked = 0
        defense_blocked = 0
        layered_blocked = 0
        for trial in range(N_TRIALS):
            attack = generator.generate(rng=100 + trial)
            va_rec, wearable_rec = scenario.attack_recordings(
                attack, spl_db=75.0, rng=200 + trial
            )
            # Voice authentication inspects the VA's recording.
            auth_rejects = not verifier.verify(va_rec).accepted
            defense_rejects = (
                pipeline.score(va_rec, wearable_rec, rng=300 + trial)
                < DEFENSE_THRESHOLD
            )
            auth_blocked += auth_rejects
            defense_blocked += defense_rejects
            layered_blocked += auth_rejects or defense_rejects
        rows.append(
            (
                name,
                f"{auth_blocked}/{N_TRIALS}",
                f"{defense_blocked}/{N_TRIALS}",
                f"{layered_blocked}/{N_TRIALS}",
            )
        )

    # Legitimate traffic false rejections under the layered policy.
    false_rejections = 0
    for trial in range(N_TRIALS):
        utterance = corpus.utterance(
            phonemize(VA_COMMANDS[trial]), speaker=victim,
            rng=400 + trial,
        )
        va_rec, wearable_rec = scenario.legitimate_recordings(
            utterance, spl_db=70.0, rng=500 + trial
        )
        auth_rejects = not verifier.verify(va_rec).accepted
        defense_rejects = (
            pipeline.score(va_rec, wearable_rec, rng=600 + trial)
            < DEFENSE_THRESHOLD
        )
        false_rejections += auth_rejects or defense_rejects
    return rows, false_rejections


def test_voice_auth_layering(benchmark, trained_segmenter):
    rows, false_rejections = run_once(
        benchmark, lambda: _run(trained_segmenter)
    )
    emit(
        "voice_auth_layering",
        format_table(
            ["attack", "voice auth blocks", "defense blocks",
             "layered blocks"],
            rows,
            title="Defense-in-depth — attacks blocked out of "
                  f"{N_TRIALS} attempts",
        )
        + f"\n\nLegitimate commands falsely rejected (layered): "
          f"{false_rejections}/{N_TRIALS}",
    )
    by_attack = {row[0]: row for row in rows}
    # Voice auth is fooled by replayed/cloned victim voices but the
    # defense catches them.
    for fooled in ("replay", "synthesis"):
        auth_blocks = int(by_attack[fooled][1].split("/")[0])
        defense_blocks = int(by_attack[fooled][2].split("/")[0])
        assert auth_blocks <= N_TRIALS // 2, fooled
        assert defense_blocks >= N_TRIALS - 1, fooled
    # Voice auth does stop the unknown-voice random attack.
    random_auth = int(by_attack["random"][1].split("/")[0])
    assert random_auth >= N_TRIALS - 2
    # Layered blocks everything the defense blocks (superset).
    for row in rows:
        assert int(row[3].split("/")[0]) >= int(row[2].split("/")[0])
    # Usability: legitimate traffic mostly passes.
    assert false_rejections <= 1
