"""Red-team robustness: attacker budget vs detection rate, both arms.

The PR-8 headline artifact.  A budgeted CMA-ES attacker shapes the
replay attack's spectral envelope and phoneme timing against the
black-box score oracle; the same population then replays its
best-so-far waveform at every budget checkpoint on held-out episodes
against two deployed detectors:

* **unhardened** — the paper's deterministic detector (fixed EER
  threshold, full sensitive-phoneme set);
* **hardened** — per-session threshold jitter plus a randomized
  sensitive-phoneme subset (``HardeningConfig``).

The curve shows (a) query budget buys the attacker real success
against the deterministic detector, and (b) the randomized defenses
claw a measurable share of that advantage back.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.core.hardening import HardeningConfig
from repro.redteam import (
    AttackSpace,
    RedTeamConfig,
    format_curve,
    robustness_curve,
)

BUDGETS = (0, 8, 16, 32)
HARDENING = HardeningConfig(threshold_jitter=0.08, subset_fraction=0.5)


def _run_curve():
    config = RedTeamConfig(
        mode="cmaes",
        budget=0,  # robustness_curve drives each arm to max(BUDGETS)
        population=2,
        space=AttackSpace(n_bands=4, n_slices=2),
        n_probe_episodes=1,
        n_eval_episodes=12,
        n_calibration_reps=2,
        seed=3,
        hardening=HARDENING,
        executor="process",
        n_workers=2,
    )
    return robustness_curve(config, BUDGETS)


def test_redteam_robustness(benchmark):
    curve = run_once(benchmark, _run_curve)

    unhardened = curve.advantage("unhardened")
    hardened = curve.advantage("hardened")
    body = format_curve(curve)
    body += (
        "\n\nhardening recovered "
        f"{(unhardened - hardened) * 100:.1f}% success rate "
        "(attacker advantage, unhardened minus hardened)"
    )
    emit("redteam_robustness", body)

    # The acceptance directions, with slack for the small episode
    # counts: budget buys the attacker success against the
    # deterministic detector, and the randomized defenses reduce it.
    assert curve.success_rate(
        "unhardened", max(BUDGETS)
    ) > curve.success_rate("unhardened", 0)
    assert hardened <= unhardened - 1.0 / 12.0 + 1e-9
