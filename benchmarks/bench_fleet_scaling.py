"""Fleet horizontal scaling: served throughput vs shard count.

Not a paper figure — this measures the serving fleet itself.  The same
heavy-tailed open-loop workload (Zipf-skewed traffic over a 10^5-user
population, offered above the 4-shard capacity) is replayed against
fleets of 1, 2, and 4 shards built on the calibrated-delay simulated
engine, so the numbers isolate the fleet tier — ring routing, the
front door's asyncio plumbing, per-shard admission queues — from DSP
cost.  Because every configuration is overloaded, served throughput
approximates fleet capacity and should scale near-linearly with the
shard count; the excess load is rejected at the admission queue, which
also bounds queue wait and keeps the served p95 under the SLO target.

Pinned claims: >= 2.5x served throughput from 1 to 4 shards, served
p95 under the 150 ms SLO at every shard count, and zero requests left
unresolved.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.eval.reporting import format_table
from repro.fleet import (
    FleetConfig,
    FleetFrontDoor,
    FleetLoadgenConfig,
    SimulatedEngineConfig,
    SloConfig,
    run_fleet_loadgen,
    simulated_shard_factory,
)
from repro.serve.loadgen import RecordingPool

SHARD_COUNTS = (1, 2, 4)
SERVICE_TIME_S = 0.004  # 250 req/s per single-worker shard
SLO = SloConfig(target_p95_s=0.15)
WORKLOAD = FleetLoadgenConfig(
    n_requests=2_400,
    users=100_000,
    zipf_s=1.1,
    rate_rps=1_200.0,  # ~1.2x the 4-shard capacity: always overloaded
    pareto_alpha=2.5,
    seed=9200,
)


def _fleet(n_shards):
    factory = simulated_shard_factory(
        engine_config=SimulatedEngineConfig(
            n_workers=1,
            service_time_s=SERVICE_TIME_S,
            queue_capacity=8,
        ),
        slo=SLO,
    )
    return FleetFrontDoor(
        factory,
        FleetConfig(n_shards=n_shards, slo=SLO, autoscale_interval_s=0.0),
    )


def _run_all():
    # Audio content is irrelevant to the simulated engine; a tiny pool
    # keeps request construction off the measured path.
    audio = np.zeros(160)
    pool = RecordingPool(pairs=[(audio, audio, False), (audio, audio, True)])
    results = {}
    for n_shards in SHARD_COUNTS:
        with _fleet(n_shards) as fleet:
            report = run_fleet_loadgen(fleet, WORKLOAD, pool=pool)
            results[n_shards] = (report, fleet.metrics())
    return results


def test_fleet_scaling(benchmark):
    results = run_once(benchmark, _run_all)

    baseline_rps = results[SHARD_COUNTS[0]][0].throughput_rps
    rows = []
    for n_shards in SHARD_COUNTS:
        report, metrics = results[n_shards]
        assert metrics.n_unresolved == 0
        p95_s = report.latency_percentile(95)
        # The admission queue bounds waiting, so even the overloaded
        # fleet keeps the served tail under the SLO target.
        assert p95_s < SLO.target_p95_s
        rows.append(
            (
                n_shards,
                report.n_served,
                report.n_rejected,
                f"{report.throughput_rps:.0f}",
                f"{p95_s * 1e3:.1f}",
                f"{report.throughput_rps / baseline_rps:.2f}x",
            )
        )

    speedup = results[4][0].throughput_rps / baseline_rps
    body = format_table(
        ["shards", "served", "rejected", "served rps", "p95 ms", "speedup"],
        rows,
        title=(
            f"fleet scaling — {WORKLOAD.n_requests} requests, "
            f"{WORKLOAD.users} Zipf(s={WORKLOAD.zipf_s}) users, "
            f"offered {WORKLOAD.rate_rps:.0f} rps, "
            f"SLO p95 {SLO.target_p95_s * 1e3:.0f} ms"
        ),
    )
    body += (
        f"\n\n1 -> 4 shards served-throughput speedup: {speedup:.2f}x "
        f"(floor 2.5x)"
    )
    emit("fleet_scaling", body)
    assert speedup >= 2.5
