"""§ V-B design argument: binary detection vs full phoneme classification.

The paper deliberately frames segmentation as *binary* effective-phoneme
detection instead of full phoneme classification.  This bench trains
both heads on the same data and budget — a 2-class detector and a
38-class classifier (37 common phonemes + silence) whose prediction is
then mapped to the binary label — and compares their accuracy on the
binary task, plus the classifier's own top-1 accuracy.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.dsp.mel import mfcc
from repro.eval.reporting import format_table
from repro.nn.model import SequenceClassifier
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.inventory import (
    COMMON_PHONEMES,
    PAPER_SELECTED_PHONEMES,
)
from repro.utils.rng import child_rng

SYMBOLS = list(COMMON_PHONEMES) + ["sp"]
N_TRAIN_PER = 8
N_TEST_PER = 3
EPOCHS = 12


def _features(waveform):
    return mfcc(waveform, 16_000.0, high_hz=900.0)


def _dataset(corpus, n_per, rng):
    sequences, binary, classes = [], [], []
    for class_id, symbol in enumerate(SYMBOLS):
        label = 1 if symbol in PAPER_SELECTED_PHONEMES else 0
        for index in range(n_per):
            segment = corpus.phoneme_population(
                symbol, 1, rng=child_rng(rng, f"{symbol}{index}")
            )[0]
            gain = 10 ** (float(rng.uniform(5, 20)) / 20.0)
            sequences.append(_features(segment.waveform * gain))
            binary.append(label)
            classes.append(class_id)
    return sequences, binary, classes


def _standardize(train, test):
    stacked = np.vstack(train)
    mean, std = stacked.mean(axis=0), stacked.std(axis=0) + 1e-8
    return (
        [(x - mean) / std for x in train],
        [(x - mean) / std for x in test],
    )


def _run():
    rng = np.random.default_rng(11_000)
    train_corpus = SyntheticCorpus(n_speakers=8, seed=11_001)
    test_corpus = SyntheticCorpus(n_speakers=4, seed=11_002)
    train_x, train_bin, train_cls = _dataset(
        train_corpus, N_TRAIN_PER, rng
    )
    test_x, test_bin, test_cls = _dataset(test_corpus, N_TEST_PER, rng)
    train_x, test_x = _standardize(train_x, test_x)

    results = {}
    for name, labels_train, labels_test, n_classes in (
        ("binary detector (paper)", train_bin, test_bin, 2),
        ("38-class classifier", train_cls, test_cls, len(SYMBOLS)),
    ):
        model = SequenceClassifier(
            input_dim=14, hidden_dim=64, n_classes=n_classes, rng=3
        )
        frame_labels = [
            np.full(x.shape[0], y, dtype=np.int64)
            for x, y in zip(train_x, labels_train)
        ]
        start = time.perf_counter()
        model.fit(train_x, frame_labels, epochs=EPOCHS, batch_size=16,
                  learning_rate=1e-2, rng=4)
        train_time = time.perf_counter() - start

        task_correct = 0
        top1_correct = 0
        for x, y_bin, y_cls in zip(test_x, test_bin, test_cls):
            probabilities = model.predict_proba(x[np.newaxis])[0]
            predicted_class = int(
                np.argmax(probabilities.mean(axis=0))
            )
            if n_classes == 2:
                predicted_binary = predicted_class
            else:
                predicted_symbol = SYMBOLS[predicted_class]
                predicted_binary = int(
                    predicted_symbol in PAPER_SELECTED_PHONEMES
                )
                top1_correct += predicted_class == y_cls
            task_correct += predicted_binary == y_bin
        results[name] = {
            "binary_accuracy": task_correct / len(test_x),
            "top1": (
                top1_correct / len(test_x) if n_classes > 2 else None
            ),
            "train_time_s": train_time,
        }
    return results


def test_classification_comparison(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        (
            name,
            f"{info['binary_accuracy'] * 100:.1f}%",
            "-" if info["top1"] is None else f"{info['top1'] * 100:.1f}%",
            f"{info['train_time_s']:.1f}s",
        )
        for name, info in results.items()
    ]
    emit(
        "classification_comparison",
        format_table(
            ["model", "binary-task accuracy", "38-way top-1",
             "train time"],
            rows,
            title=(
                "§ V-B — binary detection vs phoneme classification "
                f"({len(SYMBOLS) * N_TEST_PER} held-out segments)"
            ),
        ),
    )
    binary = results["binary detector (paper)"]
    multi = results["38-class classifier"]
    # The paper's design holds: the binary head matches or beats the
    # classification detour on the task that matters.
    assert binary["binary_accuracy"] >= multi["binary_accuracy"] - 0.03
    assert binary["binary_accuracy"] >= 0.85
