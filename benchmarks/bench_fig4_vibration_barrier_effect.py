"""Fig. 4 — vibration-domain FFT magnitudes before/after the barrier.

The companion to Fig. 3: the same /ae/ and /v/ populations converted to
the vibration domain through the wearable.  The fact to reproduce: the
thru-barrier vowel and the direct consonant — confusable in the audio
domain — become clearly distinguishable in the vibration domain.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.acoustics.loudspeaker import SOUND_BAR
from repro.acoustics.materials import GLASS_WINDOW
from repro.acoustics.microphone import Microphone, SMART_SPEAKER_MIC
from repro.acoustics.propagation import propagate
from repro.acoustics.spl import db_to_gain
from repro.channels import BarrierStage, LoudspeakerStage, PropagationChannel
from repro.dsp.spectrum import mean_fft_magnitude
from repro.eval.reporting import format_table, sparkline
from repro.phonemes.corpus import SyntheticCorpus
from repro.sensing.cross_domain import CrossDomainSensor
from repro.utils.rng import child_rng

N_SEGMENTS = 24
RATE = 16_000.0
VIB_N_FFT = 128


def _vibration_spectra():
    corpus = SyntheticCorpus(n_speakers=10, seed=4000)
    playback = PropagationChannel(
        (LoudspeakerStage(SOUND_BAR),), name="playback"
    )
    barrier = PropagationChannel(
        (BarrierStage(material=GLASS_WINDOW),), name="barrier"
    )
    microphone = Microphone(SMART_SPEAKER_MIC)
    sensor = CrossDomainSensor()
    rng = np.random.default_rng(4001)
    gain = db_to_gain(10.0)
    results = {}
    for symbol in ("ae", "v"):
        segments = corpus.phoneme_population(
            symbol, N_SEGMENTS, rng=child_rng(rng, symbol),
            duration_s=0.35,
        )
        vib_before, vib_after = [], []
        for index, segment in enumerate(segments):
            played = playback.apply(segment.waveform * gain, RATE)
            direct = microphone.capture(
                propagate(played, RATE, 2.0), RATE,
                rng=child_rng(rng, f"d{symbol}{index}"),
            )
            thru = microphone.capture(
                propagate(
                    barrier.apply(
                        played, RATE,
                        rng=child_rng(rng, f"b{symbol}{index}"),
                    ),
                    RATE, 2.0,
                ),
                RATE, rng=child_rng(rng, f"m{symbol}{index}"),
            )
            vib_before.append(
                sensor.convert(direct, RATE,
                               rng=child_rng(rng, f"v1{symbol}{index}"))
            )
            vib_after.append(
                sensor.convert(thru, RATE,
                               rng=child_rng(rng, f"v2{symbol}{index}"))
            )
        freqs, mag_before = mean_fft_magnitude(
            vib_before, 200.0, VIB_N_FFT
        )
        _, mag_after = mean_fft_magnitude(vib_after, 200.0, VIB_N_FFT)
        results[symbol] = (freqs, mag_before, mag_after)
    return results


def _band_mean(freqs, mags, low=20.0, high=80.0):
    mask = (freqs >= low) & (freqs <= high)
    return float(mags[mask].mean())


def test_fig4_vibration_barrier_effect(benchmark):
    results = run_once(benchmark, _vibration_spectra)
    rows = []
    lines = []
    for symbol, (freqs, before, after) in results.items():
        rows.append(
            (
                f"/{symbol}/",
                f"{_band_mean(freqs, before):.5f}",
                f"{_band_mean(freqs, after):.5f}",
            )
        )
        view = (freqs >= 10.0) & (freqs <= 95.0)
        lines.append(f"/{symbol}/ before: {sparkline(before[view])}")
        lines.append(f"/{symbol}/ after : {sparkline(after[view])}")
    emit(
        "fig4_vibration_barrier_effect",
        format_table(
            ["phoneme", "mean |FFT| 20-80 Hz (direct)",
             "mean |FFT| 20-80 Hz (thru barrier)"],
            rows,
            title="Fig. 4 — vibration-domain FFT magnitude",
        )
        + "\n\nVibration spectra 10-95 Hz:\n" + "\n".join(lines),
    )

    freqs, ae_before, ae_after = results["ae"]
    _, v_before, v_after = results["v"]
    # The paper's key claim: /ae/ after the barrier and /v/ without the
    # barrier are distinguishable in the vibration domain (unlike the
    # audio domain, Fig. 3).
    ae_after_level = _band_mean(freqs, ae_after)
    v_before_level = _band_mean(freqs, v_before)
    assert v_before_level > 1.5 * ae_after_level
    # Both phonemes lose vibration energy through the barrier.
    assert _band_mean(freqs, ae_before) > 2 * ae_after_level
