"""Fig. 7 — accelerometer response to a 500-2500 Hz audio chirp.

The paper probes the smartwatch with an audio chirp and finds a strongly
dominant 0-5 Hz response (the DC-sensitivity artifact) on top of the
aliased in-band content — the reason the feature extractor crops the
lowest spectrogram rows.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.dsp.spectrum import fft_magnitude
from repro.eval.reporting import format_table, sparkline
from repro.sensing.cross_domain import CrossDomainSensor


def _chirp_spectrum():
    sensor = CrossDomainSensor()
    vibration = sensor.chirp_response(
        500.0, 2500.0, 3.0, amplitude=0.3, rng=7000
    )
    freqs, mags = fft_magnitude(vibration, 200.0, n_fft=256)
    return freqs, mags


def test_fig7_chirp_response(benchmark):
    freqs, mags = run_once(benchmark, _chirp_spectrum)
    bands = [(0, 5), (5, 20), (20, 50), (50, 100)]
    rows = [
        (
            f"{low}-{high} Hz",
            f"{float(mags[(freqs >= low) & (freqs < high)].mean()):.5f}",
            f"{float(mags[(freqs >= low) & (freqs < high)].max()):.5f}",
        )
        for low, high in bands
    ]
    emit(
        "fig7_chirp_response",
        format_table(
            ["band", "mean |FFT|", "max |FFT|"],
            rows,
            title=(
                "Fig. 7 — accelerometer response to a 500-2500 Hz "
                "chirp"
            ),
        )
        + f"\n\nSpectrum 0-100 Hz: {sparkline(mags)}",
    )

    # The paper's observation: the 0-5 Hz band dominates.
    low_band = mags[freqs <= 5.0].max()
    rest = mags[freqs > 5.0].max()
    assert low_band > 3.0 * rest
