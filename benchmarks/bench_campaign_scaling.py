"""Campaign-runner scaling: wall clock vs worker count.

Not a paper figure — this measures the evaluation harness itself.  The
same campaign is scored serially and through a process pool; the
determinism contract requires bitwise-identical score sets, so the only
thing allowed to move is the wall clock.  On an N-core machine the pool
run should approach an N× speedup for worker counts up to N (e.g. ≥2×
at 4 workers on a 4-core box); on a single core the pool adds process
overhead and the speedup column simply documents that.

Worker counts default to (1, 2, 4) capped at the core count; override
with ``REPRO_BENCH_WORKERS`` (comma-separated, e.g. ``1,4,8``).
"""

from __future__ import annotations

import os

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackKind
from repro.eval.campaign import CampaignConfig, DetectorBank
from repro.eval.participants import ParticipantPool
from repro.eval.reporting import format_runner_stats, format_table
from repro.eval.rooms import ROOMS
from repro.eval.runner import CampaignRunner
from repro.phonemes.corpus import SyntheticCorpus


def _worker_counts():
    spec = os.environ.get("REPRO_BENCH_WORKERS", "")
    if spec:
        return [int(token) for token in spec.split(",")]
    cores = os.cpu_count() or 1
    return [count for count in (1, 2, 4) if count <= max(cores, 1)] or [1]


def _campaign():
    pool = ParticipantPool(n_participants=8, seed=9100)
    detectors = DetectorBank(segmenter=None)
    config = CampaignConfig(
        n_commands_per_participant=2, n_attacks_per_kind=2, seed=9101
    )
    corpus = SyntheticCorpus(speakers=pool.speakers, seed=config.seed)
    return pool, detectors, config, corpus


def _scale(counts):
    pool, detectors, config, corpus = _campaign()
    results = {}
    for count in counts:
        results[count] = CampaignRunner(n_workers=count).run(
            list(ROOMS.values()), pool, detectors, [AttackKind.REPLAY],
            config, corpus=corpus,
        )
    return results


def test_campaign_scaling(benchmark):
    counts = sorted(set(_worker_counts()))
    results = run_once(benchmark, lambda: _scale(counts))

    baseline = results[counts[0]]
    rows = []
    for count in counts:
        result = results[count]
        # Determinism contract: identical scores at every worker count.
        assert result.scores.legit == baseline.scores.legit
        assert result.scores.attacks == baseline.scores.attacks
        stats = result.stats
        rows.append(
            (
                count,
                stats.mode,
                f"{stats.wall_s:.2f}",
                f"{stats.samples_per_s:.2f}",
                f"{baseline.stats.wall_s / stats.wall_s:.2f}x",
            )
        )
    body = format_table(
        ["workers", "mode", "wall s", "samples/s", "speedup"],
        rows,
        title=(
            f"campaign scaling — {baseline.stats.n_units} units, "
            f"{baseline.stats.n_samples} samples, "
            f"{os.cpu_count() or 1} core(s)"
        ),
    )
    body += "\n\n" + format_runner_stats(results[counts[-1]].stats)
    emit("campaign_scaling", body)
