"""Fig. 11(c) — EER vs barrier-to-VA distance (3/4/5 m), four attacks.

Paper: below 4.6 % EER at all distances, with a slight rise at 5 m
(the user's sound quality at the more distant VA degrades).
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackKind
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
)
from repro.eval.experiment import run_factor_sweep
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A, ROOM_B

ATTACKS = [
    AttackKind.RANDOM,
    AttackKind.REPLAY,
    AttackKind.SYNTHESIS,
    AttackKind.HIDDEN_VOICE,
]


def _run(trained_segmenter):
    # Keep barrier-to-wearable fixed at 2 m (the paper's protocol) and
    # move the VA; the user also speaks from further away at 5 m.
    config = CampaignConfig(
        n_commands_per_participant=5,
        n_attacks_per_kind=5,
        user_distances_m=(2.0, 3.0),
        seed=9400,
    )
    detectors = DetectorBank(
        segmenter=trained_segmenter, include_baselines=False
    )
    return run_factor_sweep(
        "barrier_to_va",
        [3.0, 4.0, 5.0],
        ATTACKS,
        base_config=config,
        rooms=[ROOM_A, ROOM_B],
        detectors=detectors,
    )


def test_fig11c_distance(benchmark, trained_segmenter):
    results = run_once(benchmark, lambda: _run(trained_segmenter))
    rows = []
    for label, by_kind in results.items():
        for kind in ATTACKS:
            rows.append(
                (
                    label,
                    kind.value,
                    f"{by_kind[kind][FULL_SYSTEM].eer * 100:.1f}%",
                    "< 4.6%",
                )
            )
    emit(
        "fig11c_distance",
        format_table(
            ["barrier-to-VA", "attack", "full-system EER", "paper"],
            rows,
            title="Fig. 11(c) — EER vs barrier-to-VA distance",
        ),
    )
    for label, by_kind in results.items():
        for kind in ATTACKS:
            assert by_kind[kind][FULL_SYSTEM].eer <= 0.08
