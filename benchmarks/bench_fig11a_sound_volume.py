"""Fig. 11(a) — EER vs attack sound volume (65/75/85 dB, replay).

Paper: the full system stays below ~3.2 % EER at 65 and 75 dB; the
audio-domain baseline degrades badly at 85 dB (≈29.5 % EER); the
vibration baseline sits between.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.attacks.base import AttackKind
from repro.eval.campaign import (
    AUDIO_BASELINE,
    CampaignConfig,
    DetectorBank,
    FULL_SYSTEM,
    VIBRATION_BASELINE,
)
from repro.eval.experiment import run_factor_sweep
from repro.eval.reporting import format_table
from repro.eval.rooms import ROOM_A, ROOM_B

PAPER_FULL_EER = {"65dB": 0.032, "75dB": 0.032, "85dB": 0.05}
PAPER_AUDIO_EER_85 = 0.295


def _run(trained_segmenter):
    config = CampaignConfig(
        n_commands_per_participant=6, n_attacks_per_kind=6, seed=9200
    )
    detectors = DetectorBank(segmenter=trained_segmenter)
    return run_factor_sweep(
        "attack_spl",
        [65.0, 75.0, 85.0],
        [AttackKind.REPLAY],
        base_config=config,
        rooms=[ROOM_A, ROOM_B],
        detectors=detectors,
    )


def test_fig11a_attack_volume(benchmark, trained_segmenter):
    results = run_once(benchmark, lambda: _run(trained_segmenter))
    rows = []
    for label, by_kind in results.items():
        metrics = by_kind[AttackKind.REPLAY]
        rows.append(
            (
                label,
                f"{metrics[AUDIO_BASELINE].eer * 100:.1f}%",
                f"{metrics[VIBRATION_BASELINE].eer * 100:.1f}%",
                f"{metrics[FULL_SYSTEM].eer * 100:.1f}%",
                f"{PAPER_FULL_EER[label] * 100:.1f}%",
            )
        )
    emit(
        "fig11a_sound_volume",
        format_table(
            ["attack SPL", "audio EER", "vibration EER",
             "full-system EER", "paper full-system EER"],
            rows,
            title="Fig. 11(a) — EER vs attack sound volume (replay)",
        ),
    )
    for label, by_kind in results.items():
        metrics = by_kind[AttackKind.REPLAY]
        # The full system stays in the paper's low-EER band at every
        # volume and never loses to the audio baseline.
        assert metrics[FULL_SYSTEM].eer <= 0.08
        assert (
            metrics[FULL_SYSTEM].eer <= metrics[AUDIO_BASELINE].eer
        )
