"""§ V-B — BRNN phoneme-detection accuracy.

Regenerates the paper's phoneme-detection evaluation: replay phoneme
sound segments with and without the barrier and classify each as
effective/ineffective.  Paper: 94 % accuracy without the barrier, 91 %
with.  Also reports the oracle-vs-BRNN segmentation agreement on whole
utterances.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.acoustics.barrier import Barrier
from repro.acoustics.materials import GLASS_WINDOW
from repro.acoustics.microphone import Microphone, SMART_SPEAKER_MIC
from repro.acoustics.propagation import propagate
from repro.acoustics.spl import db_to_gain
from repro.eval.reporting import format_table
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.inventory import (
    COMMON_PHONEMES,
    PAPER_SELECTED_PHONEMES,
)
from repro.utils.rng import child_rng

N_PER_PHONEME = 6
PAPER_ACCURACY = {"no barrier": 0.94, "thru barrier": 0.91}


def _evaluate(trained_segmenter):
    microphone = Microphone(SMART_SPEAKER_MIC)
    barrier = Barrier(GLASS_WINDOW)
    test_corpus = SyntheticCorpus(n_speakers=6, seed=8000)
    rng = np.random.default_rng(8001)
    correct = {"no barrier": 0, "thru barrier": 0}
    total = 0
    for symbol in COMMON_PHONEMES:
        label = symbol in PAPER_SELECTED_PHONEMES
        segments = test_corpus.phoneme_population(
            symbol, N_PER_PHONEME, rng=child_rng(rng, symbol)
        )
        for index, segment in enumerate(segments):
            source = segment.waveform * db_to_gain(10.0)
            clean = microphone.capture(
                propagate(source, 16_000.0, 2.0), 16_000.0,
                rng=child_rng(rng, f"c{symbol}{index}"),
            )
            thru = microphone.capture(
                propagate(
                    barrier.transmit(
                        source, 16_000.0,
                        rng=child_rng(rng, f"b{symbol}{index}"),
                    ),
                    16_000.0, 2.0,
                ),
                16_000.0, rng=child_rng(rng, f"m{symbol}{index}"),
            )
            correct["no barrier"] += (
                trained_segmenter.classify_segment(clean) == label
            )
            correct["thru barrier"] += (
                trained_segmenter.classify_segment(thru) == label
            )
            total += 1

    # Segmentation agreement on whole utterances (BRNN vs oracle).
    overlaps = []
    for index, command in enumerate(VA_COMMANDS[:8]):
        utterance = test_corpus.utterance(
            phonemize(command), rng=child_rng(rng, f"utt{index}")
        )
        oracle = trained_segmenter.oracle_segments(utterance)
        detected = trained_segmenter.segments(utterance.waveform)
        overlaps.append(_interval_overlap(oracle, detected))
    return (
        {key: value / total for key, value in correct.items()},
        total,
        float(np.mean(overlaps)),
    )


def _interval_overlap(a, b):
    """Jaccard overlap of two interval lists (in seconds)."""

    def total(intervals):
        return sum(end - start for start, end in intervals)

    def intersection(x, y):
        acc = 0.0
        for sx, ex in x:
            for sy, ey in y:
                acc += max(0.0, min(ex, ey) - max(sx, sy))
        return acc

    union = total(a) + total(b) - intersection(a, b)
    if union <= 0:
        return 0.0
    return intersection(a, b) / union


def test_phoneme_detection_accuracy(benchmark, trained_segmenter):
    accuracies, total, overlap = run_once(
        benchmark, lambda: _evaluate(trained_segmenter)
    )
    rows = [
        (
            condition,
            f"{accuracies[condition] * 100:.1f}%",
            f"{PAPER_ACCURACY[condition] * 100:.0f}%",
        )
        for condition in ("no barrier", "thru barrier")
    ]
    rows.append(("BRNN/oracle segmentation overlap",
                 f"{overlap * 100:.1f}%", "-"))
    emit(
        "phoneme_detection_accuracy",
        format_table(
            ["condition", "measured", "paper"],
            rows,
            title=(
                f"§ V-B — phoneme detection over {total} segments "
                "per condition"
            ),
        ),
    )
    # Shape: both conditions accurate; the barrier costs a few points.
    assert accuracies["no barrier"] >= 0.88
    assert accuracies["thru barrier"] >= 0.85
    assert (
        accuracies["thru barrier"] <= accuracies["no barrier"] + 0.02
    )
