"""Serving latency/throughput: percentiles vs offered load.

Not a paper figure — this measures the online verification service
(`repro.serve`) itself.  A closed-loop load generator drives the warm
worker pool at increasing client concurrency; for each level the table
reports throughput and client-side p50/p95/p99 latency, plus the
server-side per-stage breakdown at the highest level.  A final run
repeats the highest load with latency-adaptive batching enabled
(``p95_target_s``) to show the controller's steady-state decisions.
The acceptance bar is accounting, not speed: every issued request must
reach exactly one terminal state and none may fail.

Worker count defaults to min(4, cores); override with
``REPRO_BENCH_SERVE_WORKERS``.  Concurrency levels default to
(1, 4, 8); override with ``REPRO_BENCH_SERVE_CONCURRENCY``
(comma-separated).
"""

from __future__ import annotations

import os

from benchmarks.conftest import emit, run_once
from repro.eval.reporting import format_service_metrics, format_table
from repro.serve import (
    LoadgenConfig,
    PipelineSpec,
    ServiceConfig,
    VerificationService,
    build_recording_pool,
    run_loadgen,
)

N_REQUESTS = 60


def _worker_count():
    spec = os.environ.get("REPRO_BENCH_SERVE_WORKERS", "")
    if spec:
        return int(spec)
    return min(4, os.cpu_count() or 1)


def _concurrency_levels():
    spec = os.environ.get("REPRO_BENCH_SERVE_CONCURRENCY", "")
    if spec:
        return [int(token) for token in spec.split(",")]
    return [1, 4, 8]


def _sweep(levels, n_workers):
    spec = PipelineSpec(
        segmenter_seed=9200, n_speakers=2, n_per_phoneme=3, epochs=3
    )
    pool = build_recording_pool(seed=9201, pool_size=6)
    runs = {}
    for concurrency in levels:
        config = ServiceConfig(
            n_workers=n_workers, max_batch_size=8, max_wait_s=0.01
        )
        with VerificationService(spec, config) as service:
            report = run_loadgen(
                service,
                LoadgenConfig(
                    n_requests=N_REQUESTS,
                    concurrency=concurrency,
                    seed=9202,
                ),
                pool=pool,
            )
            runs[concurrency] = (report, service.metrics())
    # Latency-adaptive rerun of the highest load: same pool/spec, but
    # the controller steers the effective batch size toward the target.
    adaptive_config = ServiceConfig(
        n_workers=n_workers,
        max_batch_size=16,
        max_wait_s=0.01,
        p95_target_s=0.15,
    )
    with VerificationService(spec, adaptive_config) as service:
        report = run_loadgen(
            service,
            LoadgenConfig(
                n_requests=N_REQUESTS,
                concurrency=max(levels),
                seed=9203,
            ),
            pool=pool,
        )
        runs["adaptive"] = (report, service.metrics())
    return runs


def test_serving_throughput(benchmark):
    levels = sorted(set(_concurrency_levels()))
    n_workers = _worker_count()
    runs = run_once(benchmark, lambda: _sweep(levels, n_workers))

    rows = []
    for concurrency in levels:
        report, metrics = runs[concurrency]
        # Accounting invariants: nothing dropped-but-reported-served.
        assert report.n_issued == N_REQUESTS
        assert report.n_served == N_REQUESTS
        assert report.n_failed == 0
        assert metrics.n_resolved == metrics.n_submitted == N_REQUESTS
        rows.append(
            (
                concurrency,
                report.n_served,
                f"{report.throughput_rps:.2f}",
                f"{report.latency_percentile(50) * 1e3:.1f}",
                f"{report.latency_percentile(95) * 1e3:.1f}",
                f"{report.latency_percentile(99) * 1e3:.1f}",
                f"{metrics.mean_batch_size:.2f}",
            )
        )
    body = format_table(
        [
            "clients",
            "served",
            "req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "batch",
        ],
        rows,
        title=(
            f"serving throughput — {N_REQUESTS} requests/level, "
            f"{n_workers} warm worker(s), {os.cpu_count() or 1} core(s)"
        ),
    )
    body += "\n\nserver-side breakdown at the highest load:\n\n"
    body += format_service_metrics(runs[levels[-1]][1])

    adaptive_report, adaptive_metrics = runs["adaptive"]
    assert adaptive_report.n_served == N_REQUESTS
    assert adaptive_report.n_failed == 0
    assert adaptive_metrics.batch_controller is not None
    body += (
        f"\n\nlatency-adaptive rerun at {max(levels)} clients "
        "(p95 target 150 ms, batch bound 16):\n\n"
    )
    body += format_service_metrics(adaptive_metrics)
    emit("serving_throughput", body)
