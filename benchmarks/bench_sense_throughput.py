"""Cross-domain sensing throughput: convert_batch vs convert (not a
paper figure).

The sensing stage replays each recording through the wearable's
speaker → strap → accelerometer chain (§IV-A) twice per request — once
for the VA microphone recording, once for the wearable one — and used
to dominate the serving hot path.  `CrossDomainSensor.convert_batch`
pushes a whole micro-batch through the chain as dense ``(batch, time)``
arrays (grouped by exact recording length, so results stay bitwise
identical to the sequential path; see DESIGN.md § "Sensing hot path").

Measures sequential vs batched conversions at batch sizes 1/4/8/16,
for both the still-wearer and wearer-moving (body-motion) paths, and
verifies bitwise parity on every measured batch.  Acceptance bar:
batched must reach ``SPEEDUP_TARGET`` x sequential at batch 8.

Runs two ways:

* under pytest-benchmark (``make bench``), emitting
  ``benchmarks/results/sense_throughput.txt``;
* as a plain script — ``python benchmarks/bench_sense_throughput.py
  [--quick]`` — for the ``sense-smoke`` CI job, which gates bitwise
  parity plus batched >= sequential at batch 8 (exit status 1
  otherwise).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: make repo imports work
    _ROOT = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(_ROOT))
    sys.path.insert(0, str(_ROOT / "src"))

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.eval.reporting import format_table
from repro.sensing.cross_domain import CrossDomainSensor

AUDIO_RATE = 16_000.0
BATCH_SIZES = (1, 4, 8, 16)
SPEEDUP_TARGET = 1.1  # batched vs sequential sensing at batch 8


def _audios(n, seed=9400):
    """Ragged one-second-ish recordings spanning four length buckets."""
    generator = np.random.default_rng(seed)
    return [
        generator.normal(0.0, 0.1, 16_000 + 800 * (index % 4))
        for index in range(n)
    ]


def _timed(func, rounds):
    """Total seconds over ``rounds`` calls, with one untimed warmup."""
    func()
    total = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        total += time.perf_counter() - start
    return total


def _measure(sensor, batch, rounds, include_body_motion):
    audios = _audios(batch)
    seeds = list(range(batch))
    sequential = lambda: [  # noqa: E731 - tiny timed closure
        sensor.convert(
            audio,
            AUDIO_RATE,
            rng=seed,
            include_body_motion=include_body_motion,
        )
        for audio, seed in zip(audios, seeds)
    ]
    batched = lambda: sensor.convert_batch(  # noqa: E731
        audios,
        AUDIO_RATE,
        rngs=seeds,
        include_body_motion=include_body_motion,
    )
    # Parity gate: batched output must equal sequential bitwise.
    for single, together in zip(sequential(), batched()):
        np.testing.assert_array_equal(single, together)
    seq_total = _timed(sequential, rounds)
    bat_total = _timed(batched, rounds)
    return seq_total, bat_total


def run_sweep(batch_sizes=BATCH_SIZES, rounds=5):
    sensor = CrossDomainSensor()
    tables = {}
    speedups = {}
    for label, moving in (("still", False), ("wearer-moving", True)):
        rows = []
        for batch in batch_sizes:
            seq_total, bat_total = _measure(
                sensor, batch, rounds, include_body_motion=moving
            )
            n = batch * rounds
            speedup = seq_total / bat_total
            if label == "still":
                speedups[batch] = speedup
            rows.append(
                (
                    batch,
                    f"{n / seq_total:.1f}",
                    f"{n / bat_total:.1f}",
                    f"{speedup:.2f}x",
                )
            )
        tables[label] = rows
    return tables, speedups


def render(tables, rounds):
    blocks = []
    for label, rows in tables.items():
        blocks.append(
            format_table(
                ["batch", "seq conv/s", "batched conv/s", "speedup"],
                rows,
                title=(
                    f"cross-domain sensing ({label}) — "
                    f"convert_batch vs convert loop, {rounds} round(s)"
                ),
            )
        )
    return "\n\n".join(blocks)


def test_sense_throughput(benchmark):
    rounds = 5
    tables, speedups = run_once(
        benchmark, lambda: run_sweep(rounds=rounds)
    )
    emit("sense_throughput", render(tables, rounds))
    assert speedups[8] >= SPEEDUP_TARGET, (
        f"batched sensing at batch 8 is only {speedups[8]:.2f}x "
        f"sequential (target {SPEEDUP_TARGET}x)"
    )


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="sequential vs batched cross-domain sensing"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke: batch sizes (1, 8), 2 rounds, and only gate "
            "parity plus batched >= sequential at batch 8"
        ),
    )
    args = parser.parse_args(argv)

    batch_sizes = (1, 8) if args.quick else BATCH_SIZES
    rounds = 2 if args.quick else 5
    tables, speedups = run_sweep(batch_sizes=batch_sizes, rounds=rounds)
    print(render(tables, rounds))

    target = 1.0 if args.quick else SPEEDUP_TARGET
    if speedups[8] < target:
        print(
            f"FAIL: batched sensing at batch 8 is "
            f"{speedups[8]:.2f}x sequential (target >= {target}x)"
        )
        return 1
    print(
        f"OK: batched sensing at batch 8 is {speedups[8]:.2f}x "
        f"sequential (target >= {target}x); bitwise parity held"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
