"""Runtime performance of the pipeline's hot paths (pytest-benchmark).

These are classic micro/meso benchmarks (multiple rounds), complementing
the one-shot experiment benches: cross-domain conversion, vibration
feature extraction, 2-D correlation, synchronization, BRNN inference,
and a full end-to-end analyze call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import VibrationFeatureExtractor
from repro.core.pipeline import DefensePipeline
from repro.core.sync import synchronize_recordings
from repro.dsp.correlate import correlation_2d
from repro.phonemes.commands import phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.sensing.cross_domain import CrossDomainSensor

RATE = 16_000.0


@pytest.fixture(scope="module")
def audio_pair():
    corpus = SyntheticCorpus(n_speakers=2, seed=9700)
    utterance = corpus.utterance(
        phonemize("alexa play my favorite playlist"), rng=1
    )
    rng = np.random.default_rng(2)
    va = utterance.waveform + 0.001 * rng.standard_normal(
        utterance.waveform.size
    )
    wearable = va[1600:] + 0.001 * rng.standard_normal(
        va.size - 1600
    )
    return va, wearable


def test_perf_cross_domain_conversion(benchmark, audio_pair):
    sensor = CrossDomainSensor()
    va, _ = audio_pair
    benchmark(lambda: sensor.convert(va, RATE, rng=0))


def test_perf_feature_extraction(benchmark, audio_pair):
    sensor = CrossDomainSensor()
    va, _ = audio_pair
    vibration = sensor.convert(va, RATE, rng=0)
    extractor = VibrationFeatureExtractor()
    benchmark(lambda: extractor.extract(vibration))


def test_perf_correlation_2d(benchmark, rng_features=(31, 120)):
    rng = np.random.default_rng(3)
    a = rng.standard_normal(rng_features)
    b = rng.standard_normal(rng_features)
    benchmark(lambda: correlation_2d(a, b))


def test_perf_synchronization(benchmark, audio_pair):
    va, wearable = audio_pair
    benchmark(
        lambda: synchronize_recordings(va, wearable, RATE)
    )


def test_perf_segmenter_inference(benchmark, trained_segmenter,
                                  audio_pair):
    va, _ = audio_pair
    benchmark(lambda: trained_segmenter.segments(va))


def test_perf_full_pipeline_analyze(benchmark, trained_segmenter,
                                    audio_pair):
    pipeline = DefensePipeline(segmenter=trained_segmenter)
    va, wearable = audio_pair
    benchmark.pedantic(
        lambda: pipeline.analyze(va, wearable, rng=5),
        rounds=3,
        iterations=1,
    )
