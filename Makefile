# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test test-fast smoke serve-smoke store-smoke \
	perf-smoke sense-smoke runtime-smoke segmenter-smoke fleet-smoke \
	redteam-smoke scenario-smoke bench examples clean

# Artifact-store directory for store-smoke.  Deliberately NOT removed
# by the target: CI restores it via actions/cache so the second run —
# and the next CI run — start warm.
STORE_SMOKE_DIR ?= .store-smoke

install:
	pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# 2-worker campaign smoke test: process-pool sharding must reproduce
# the serial score set bitwise (the determinism contract).
smoke:
	$(PYTHON) -m pytest tests/test_eval_runner.py -q
	$(PYTHON) -m repro evaluate replay --commands 1 --attacks 1 --workers 2

# Serving smoke: a tiny closed-loop run against the warm-pool service.
# The command exits non-zero on any failed request, and the metrics
# table (latency percentiles per stage) prints on stdout.
serve-smoke:
	$(PYTHON) -m repro loadgen --segmenter fast --workers 2 \
		--requests 12 --concurrency 4 --seed 0

# Store smoke: two serve-smoke runs against a persistent artifact
# store.  The first run may train and publish; the second must load
# everything — its accounting line has to report "0 trained".
store-smoke:
	$(PYTHON) -m repro loadgen --segmenter fast --workers 2 \
		--requests 12 --concurrency 4 --seed 0 \
		--store-dir $(STORE_SMOKE_DIR)
	$(PYTHON) -m repro loadgen --segmenter fast --workers 2 \
		--requests 12 --concurrency 4 --seed 0 \
		--store-dir $(STORE_SMOKE_DIR) | tee /tmp/store-smoke.log
	grep -q "0 trained" /tmp/store-smoke.log
	$(PYTHON) -m repro store verify --dir $(STORE_SMOKE_DIR)

# Runtime smoke: the unified execution layer.  Unit tests cover the
# fallback ladder, retries, StageEvent plumbing, and the shared
# percentile helper; then a 2-worker campaign and a 2-worker serve
# run must both succeed under the thread AND process executors (the
# campaign score set is bitwise identical across all of them).
runtime-smoke:
	$(PYTHON) -m pytest tests/test_runtime.py tests/test_runtime_events.py \
		tests/test_utils_stats.py -q
	$(PYTHON) -m repro evaluate replay --commands 1 --attacks 1 \
		--workers 2 --executor thread
	$(PYTHON) -m repro evaluate replay --commands 1 --attacks 1 \
		--workers 2 --executor process
	$(PYTHON) -m repro loadgen --segmenter none --workers 2 \
		--worker-mode thread --requests 8 --concurrency 4 --seed 0
	$(PYTHON) -m repro loadgen --segmenter none --workers 2 \
		--worker-mode process --requests 8 --concurrency 4 --seed 0

# Segmenter smoke: both segmentation backends through the full stack.
# Unit/property tests pin the protocol, bounds, parity, and the RD
# backend's zero-training contract; then a 2-worker serve run and a
# small campaign must succeed under the trained BLSTM (--segmenter
# paper) AND the training-free rate-distortion backend (--segmenter
# rd).
segmenter-smoke:
	$(PYTHON) -m pytest tests/test_segmenter_backends.py -q
	$(PYTHON) -m repro loadgen --segmenter paper --workers 2 \
		--requests 8 --concurrency 4 --seed 0
	$(PYTHON) -m repro loadgen --segmenter rd --workers 2 \
		--requests 8 --concurrency 4 --seed 0
	$(PYTHON) -m repro evaluate replay --commands 1 --attacks 1 \
		--workers 2 --segmenter paper
	$(PYTHON) -m repro evaluate replay --commands 1 --attacks 1 \
		--workers 2 --segmenter rd

# Fleet smoke: a 2-shard fleet serves heavy-tailed Zipf-user traffic
# end to end.  Both runs exit non-zero if any routed request never
# reached a terminal outcome (the zero-dropped-on-shutdown
# assertion); the second drives the real warm verification workers
# through the front door.
fleet-smoke:
	$(PYTHON) -m repro fleet loadgen --engine sim --shards 2 \
		--requests 120 --users 100000 --rate 400 \
		--queue-capacity 64 --seed 0
	$(PYTHON) -m repro fleet serve --engine service --segmenter none \
		--shards 2 --requests 8 --users 1000 --rate 50 --seed 0

# Red-team smoke: unit tests pin the attack space, oracle budget
# accounting, and optimizer checkpointing; then two tiny campaigns
# (~2 generations each) exercise the gradient-free and
# surrogate-gradient attackers end to end against the black-box
# oracle, with the second deploying the randomized defenses.
redteam-smoke:
	$(PYTHON) -m pytest tests/test_redteam_space.py \
		tests/test_redteam_oracle.py tests/test_redteam_optimizers.py \
		tests/test_core_hardening.py -q
	$(PYTHON) -m repro redteam attack --mode cmaes --budget 10 \
		--population 1 --bands 4 --slices 2 --probe-episodes 1 \
		--eval-episodes 4 --workers 1 --executor inline --seed 3
	$(PYTHON) -m repro redteam attack --mode surrogate --budget 14 \
		--population 1 --bands 4 --slices 2 --probe-episodes 1 \
		--eval-episodes 4 --workers 1 --executor inline --seed 3 \
		--harden

# Scenario smoke: the composable channel layer and the scenario
# registry.  Unit tests pin bitwise chain parity and the registry
# round-trip; then the two proof packs run end to end through the
# evaluate CLI, and the quick scenario matrix regenerates
# benchmarks/results/scenario_matrix.txt over every registered pack.
scenario-smoke:
	$(PYTHON) -m pytest tests/test_channels.py tests/test_scenarios.py -q
	$(PYTHON) -m repro evaluate --scenario ultrasound-solid \
		--segmenter rd --commands 1 --attacks 1 --workers 2
	$(PYTHON) -m repro evaluate --scenario metamaterial-barrier \
		--segmenter rd --commands 1 --attacks 1 --workers 2
	REPRO_BENCH_QUICK=1 $(PYTHON) -m pytest \
		benchmarks/bench_scenario_matrix.py --benchmark-only -q

# Perf smoke: the vectorized micro-batch path must beat the
# sequential loop at batch 8 (exits non-zero otherwise).
perf-smoke:
	$(PYTHON) benchmarks/bench_batched_inference.py --quick

# Sensing smoke: the vectorized cross-domain sensing chain.  Unit
# tests pin bitwise parity (convert_batch vs convert, shm transport
# round-trips, adaptive batching decisions); then the throughput
# bench re-checks parity on every measured batch and gates batched >=
# sequential at batch 8; finally an adaptive-batching serve run must
# answer every request.
sense-smoke:
	$(PYTHON) -m pytest tests/test_sensing_batch.py \
		tests/test_runtime_shm.py tests/test_serve_adaptive.py -q
	$(PYTHON) benchmarks/bench_sense_throughput.py --quick
	$(PYTHON) -m repro loadgen --segmenter none --workers 2 \
		--requests 8 --concurrency 4 --p95-target-ms 150 --seed 0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/phoneme_selection_study.py
	$(PYTHON) examples/attack_study.py
	$(PYTHON) examples/distributed_protocol_demo.py
	$(PYTHON) examples/smart_home_protection.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
