# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test test-fast bench examples clean

install:
	pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/phoneme_selection_study.py
	$(PYTHON) examples/attack_study.py
	$(PYTHON) examples/distributed_protocol_demo.py
	$(PYTHON) examples/smart_home_protection.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
