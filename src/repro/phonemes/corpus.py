"""Synthetic TIMIT-like corpus with time-aligned transcriptions.

This module substitutes for the TIMIT acoustic-phonetic corpus the paper
uses: it builds populations of phoneme sound segments (for the barrier
study and phoneme selection) and whole utterances with time-aligned
phonetic transcriptions (for training/evaluating the BRNN segmenter and
for generating voice commands).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.phonemes.inventory import get_phoneme
from repro.phonemes.speaker import SpeakerProfile, generate_speakers
from repro.phonemes.synthesis import PhonemeSynthesizer
from repro.utils.rng import SeedLike, as_generator, child_rng


@dataclass(frozen=True)
class PhonemeSegment:
    """One synthesized phoneme sound with its provenance."""

    symbol: str
    speaker_id: str
    waveform: np.ndarray
    sample_rate: float

    @property
    def duration_s(self) -> float:
        """Segment duration in seconds."""
        return self.waveform.size / self.sample_rate


@dataclass(frozen=True)
class PhonemeInterval:
    """Time-aligned phonetic label: ``symbol`` spans [start, end) seconds."""

    symbol: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"interval for {self.symbol!r} has non-positive length: "
                f"[{self.start_s}, {self.end_s})"
            )

    @property
    def duration_s(self) -> float:
        """Interval length in seconds."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class Utterance:
    """A synthesized utterance with its time-aligned transcription."""

    waveform: np.ndarray
    sample_rate: float
    alignment: Tuple[PhonemeInterval, ...]
    speaker_id: str
    text: str = ""

    @property
    def duration_s(self) -> float:
        """Utterance duration in seconds."""
        return self.waveform.size / self.sample_rate

    def labels_at(self, times_s: np.ndarray) -> List[str]:
        """Phoneme symbol active at each query time (``"sil"`` if none)."""
        labels = ["sil"] * len(times_s)
        for index, time_s in enumerate(times_s):
            for interval in self.alignment:
                if interval.start_s <= time_s < interval.end_s:
                    labels[index] = interval.symbol
                    break
        return labels


#: Crossfade between adjacent phonemes (seconds) for coarticulation.
_CROSSFADE_S = 0.008


class SyntheticCorpus:
    """Builds populations of phoneme segments and aligned utterances.

    Parameters
    ----------
    speakers:
        Speaker pool; generated (balanced male/female) when omitted.
    synthesizer:
        Shared phoneme synthesizer.
    seed:
        Base seed; all draws derive from it deterministically.
    utterance_cache_size:
        Capacity of the LRU cache for :meth:`utterance` results.  An
        utterance is cacheable only when its draw is fully pinned — the
        caller passes an *integer* seed and an explicit speaker — in
        which case re-synthesis is a pure recomputation.  Campaigns and
        factor sweeps repeat exactly such (phonemes, speaker, seed)
        triples, so the cache removes redundant synthesis without ever
        changing a result.  ``0`` disables caching.

    Examples
    --------
    >>> corpus = SyntheticCorpus(n_speakers=4, seed=11)
    >>> segments = corpus.phoneme_population("ae", n_segments=10)
    >>> len(segments)
    10
    """

    def __init__(
        self,
        speakers: Optional[Sequence[SpeakerProfile]] = None,
        synthesizer: Optional[PhonemeSynthesizer] = None,
        n_speakers: int = 10,
        seed: SeedLike = None,
        utterance_cache_size: int = 128,
    ) -> None:
        self._rng = as_generator(seed)
        if speakers is None:
            speakers = generate_speakers(
                n_speakers, rng=child_rng(self._rng, "speakers")
            )
        if not speakers:
            raise ConfigurationError("speaker pool must be non-empty")
        if utterance_cache_size < 0:
            raise ConfigurationError(
                "utterance_cache_size must be >= 0"
            )
        self.speakers: Tuple[SpeakerProfile, ...] = tuple(speakers)
        self.synthesizer = synthesizer or PhonemeSynthesizer()
        self._utterance_cache: "OrderedDict[tuple, Utterance]" = (
            OrderedDict()
        )
        self._utterance_cache_size = int(utterance_cache_size)
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def sample_rate(self) -> float:
        """Audio sampling rate of generated material."""
        return self.synthesizer.sample_rate

    def phoneme_population(
        self,
        symbol: str,
        n_segments: int,
        rng: SeedLike = None,
        duration_s: Optional[float] = None,
    ) -> List[PhonemeSegment]:
        """Synthesize ``n_segments`` renditions of one phoneme.

        Speakers rotate through the pool, mirroring the paper's "100
        sound segments from five males and five females" populations.
        ``duration_s`` fixes the segment length (spectral studies need
        enough samples for stable FFT estimates); the phoneme's natural
        duration range is used when omitted.
        """
        if n_segments <= 0:
            raise ConfigurationError(
                f"n_segments must be > 0, got {n_segments}"
            )
        generator = as_generator(rng) if rng is not None else self._rng
        segments = []
        for index in range(n_segments):
            speaker = self.speakers[index % len(self.speakers)]
            waveform = self.synthesizer.synthesize(
                symbol, speaker, duration_s=duration_s,
                rng=child_rng(generator, f"{symbol}{index}"),
            )
            segments.append(
                PhonemeSegment(
                    symbol=symbol,
                    speaker_id=speaker.speaker_id,
                    waveform=waveform,
                    sample_rate=self.sample_rate,
                )
            )
        return segments

    def phoneme_dataset(
        self,
        symbols: Sequence[str],
        n_per_phoneme: int,
        rng: SeedLike = None,
    ) -> Dict[str, List[PhonemeSegment]]:
        """Populations for many phonemes at once, keyed by symbol."""
        generator = as_generator(rng) if rng is not None else self._rng
        return {
            symbol: self.phoneme_population(
                symbol, n_per_phoneme,
                rng=child_rng(generator, f"pop-{symbol}"),
            )
            for symbol in symbols
        }

    def utterance(
        self,
        phoneme_sequence: Sequence[str],
        speaker: Optional[SpeakerProfile] = None,
        text: str = "",
        rng: SeedLike = None,
    ) -> Utterance:
        """Synthesize an utterance with a time-aligned transcription.

        Adjacent phonemes are joined with a short crossfade to mimic
        coarticulation; the alignment records each phoneme's interval in
        the final waveform (crossfade regions are attributed to the later
        phoneme, as TIMIT's single-boundary alignments do).

        When ``rng`` is an integer seed and ``speaker`` is given, the
        result is memoized in an LRU cache: the same (phonemes, speaker,
        seed) triple always synthesizes the same waveform, so repeated
        commands — across attack kinds, factor-sweep values, or campaign
        re-runs — are served without re-synthesis.
        """
        if not phoneme_sequence:
            raise ConfigurationError("phoneme_sequence must be non-empty")
        cache_key = None
        if (
            self._utterance_cache_size > 0
            and speaker is not None
            and isinstance(rng, (int, np.integer))
        ):
            cache_key = (tuple(phoneme_sequence), speaker, text, int(rng))
            cached = self._utterance_cache.get(cache_key)
            if cached is not None:
                self._utterance_cache.move_to_end(cache_key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        generator = as_generator(rng) if rng is not None else self._rng
        if speaker is None:
            speaker = self.speakers[
                int(generator.integers(0, len(self.speakers)))
            ]
        sample_rate = self.sample_rate
        fade = int(round(_CROSSFADE_S * sample_rate))

        pieces: List[np.ndarray] = []
        intervals: List[PhonemeInterval] = []
        total = 0
        for index, symbol in enumerate(phoneme_sequence):
            get_phoneme(symbol)  # Validate early with a clear error.
            piece = self.synthesizer.synthesize(
                symbol, speaker,
                rng=child_rng(generator, f"utt-{index}-{symbol}"),
            )
            start = total
            if pieces and fade > 0 and piece.size > fade:
                # Crossfade into the previous piece; the overlap region
                # is attributed to this (later) phoneme, as in TIMIT's
                # single-boundary alignments.
                ramp = np.linspace(0.0, 1.0, fade)
                overlap = (
                    pieces[-1][-fade:] * (1 - ramp) + piece[:fade] * ramp
                )
                pieces[-1] = np.concatenate([pieces[-1][:-fade], overlap])
                piece = piece[fade:]
                start = total - fade
                previous = intervals[-1]
                intervals[-1] = PhonemeInterval(
                    symbol=previous.symbol,
                    start_s=previous.start_s,
                    end_s=start / sample_rate,
                )
            pieces.append(piece)
            total += piece.size
            intervals.append(
                PhonemeInterval(
                    symbol=symbol,
                    start_s=start / sample_rate,
                    end_s=total / sample_rate,
                )
            )
        waveform = np.concatenate(pieces)
        result = Utterance(
            waveform=waveform,
            sample_rate=sample_rate,
            alignment=tuple(intervals),
            speaker_id=speaker.speaker_id,
            text=text,
        )
        if cache_key is not None:
            self._utterance_cache[cache_key] = result
            while len(self._utterance_cache) > self._utterance_cache_size:
                self._utterance_cache.popitem(last=False)
        return result
