"""Phoneme and speech-synthesis substrate (TIMIT-corpus substitution).

Provides a 63-symbol TIMIT-style phoneme inventory with per-phoneme
acoustic parameters, a multi-speaker source–filter synthesizer, a corpus
builder with time-aligned phonetic transcriptions, and the VA-command
corpus behind the paper's Table II.
"""

from repro.phonemes.inventory import (
    COMMON_PHONEMES,
    PAPER_SELECTED_PHONEMES,
    PHONEME_INVENTORY,
    PhonemeClass,
    Phoneme,
    get_phoneme,
    phoneme_symbols,
)
from repro.phonemes.speaker import SpeakerProfile, generate_speakers
from repro.phonemes.synthesis import (
    PhonemeSynthesizer,
    spectral_envelope,
)
from repro.phonemes.corpus import (
    PhonemeInterval,
    PhonemeSegment,
    SyntheticCorpus,
    Utterance,
)
from repro.phonemes.commands import (
    PAPER_TABLE2_COUNTS,
    VA_COMMANDS,
    command_phoneme_counts,
    phonemize,
)

__all__ = [
    "COMMON_PHONEMES",
    "PAPER_SELECTED_PHONEMES",
    "PHONEME_INVENTORY",
    "PhonemeClass",
    "Phoneme",
    "get_phoneme",
    "phoneme_symbols",
    "SpeakerProfile",
    "generate_speakers",
    "PhonemeSynthesizer",
    "spectral_envelope",
    "PhonemeInterval",
    "PhonemeSegment",
    "SyntheticCorpus",
    "Utterance",
    "PAPER_TABLE2_COUNTS",
    "VA_COMMANDS",
    "command_phoneme_counts",
    "phonemize",
]
