"""TIMIT-style phoneme inventory with per-phoneme acoustic parameters.

The inventory contains 63 symbols (the TIMIT transcription set, including
closures and pause markers, as counted by the paper).  For each phoneme we
record the acoustic parameters the source–filter synthesizer needs:

* formant frequencies / bandwidths / gains (vowels, glides, nasals, voiced
  consonants) — canonical male values from Peterson & Barney-style tables,
  scaled per speaker at synthesis time;
* a frication noise band and gain (fricatives, affricates, stop bursts,
  aspiration);
* an overall intensity offset in dB relative to a reference vowel — the
  property behind the paper's Criterion II (weak phonemes such as /s/,
  /z/, /sh/, /th/ cannot trigger the accelerometer) and Criterion I
  (over-loud open vowels /aa/, /ao/ still trigger it after the barrier);
* a typical duration range.

Table II of the paper lists 37 phonemes that dominate VA voice commands,
with appearance counts; 31 of them are barrier-effect sensitive.  Those
reference tables are shipped here (``COMMON_PHONEMES``,
``PAPER_SELECTED_PHONEMES``) so the selection pipeline can be validated
against the paper's outcome.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError


class PhonemeClass(enum.Enum):
    """Broad articulatory classes used to pick a synthesis recipe."""

    VOWEL = "vowel"
    DIPHTHONG = "diphthong"
    SEMIVOWEL = "semivowel"
    NASAL = "nasal"
    FRICATIVE = "fricative"
    AFFRICATE = "affricate"
    STOP = "stop"
    CLOSURE = "closure"
    SILENCE = "silence"


@dataclass(frozen=True)
class Phoneme:
    """Acoustic description of one phoneme.

    Attributes
    ----------
    symbol:
        TIMIT transcription symbol (e.g. ``"ae"``, ``"v"``).
    klass:
        Broad articulatory class.
    voiced:
        Whether the larynx vibrates during production (drives harmonic
        synthesis and overall intensity).
    formants:
        Formant center frequencies in Hz for a canonical male speaker.
    formant_bandwidths:
        Resonance bandwidths in Hz (same length as ``formants``).
    formant_gains:
        Linear gain of each resonance peak.
    noise_band:
        ``(low_hz, high_hz)`` band of frication/aspiration noise, or
        ``None`` for purely voiced sounds.
    noise_gain:
        Linear gain of the noise component relative to the voiced part.
    intensity_db:
        Overall level offset (dB) relative to a reference vowel at 0 dB.
    duration_range_s:
        Typical (min, max) segment duration in seconds.
    """

    symbol: str
    klass: PhonemeClass
    voiced: bool
    formants: Tuple[float, ...] = field(default=())
    formant_bandwidths: Tuple[float, ...] = field(default=())
    formant_gains: Tuple[float, ...] = field(default=())
    noise_band: Optional[Tuple[float, float]] = None
    noise_gain: float = 0.0
    intensity_db: float = 0.0
    duration_range_s: Tuple[float, float] = (0.08, 0.16)

    def __post_init__(self) -> None:
        if len(self.formants) != len(self.formant_bandwidths):
            raise ConfigurationError(
                f"{self.symbol}: formants and bandwidths length mismatch"
            )
        if len(self.formants) != len(self.formant_gains):
            raise ConfigurationError(
                f"{self.symbol}: formants and gains length mismatch"
            )

    @property
    def is_sounding(self) -> bool:
        """Whether the phoneme produces acoustic energy at all."""
        return self.klass not in (PhonemeClass.CLOSURE, PhonemeClass.SILENCE)


def _vowel(
    symbol: str,
    f1: float,
    f2: float,
    f3: float,
    intensity_db: float = 0.0,
    klass: PhonemeClass = PhonemeClass.VOWEL,
    duration: Tuple[float, float] = (0.09, 0.18),
) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        klass=klass,
        voiced=True,
        formants=(f1, f2, f3),
        formant_bandwidths=(60.0, 90.0, 150.0),
        formant_gains=(1.0, 0.63, 0.32),
        intensity_db=intensity_db,
        duration_range_s=duration,
    )


def _nasal(symbol: str, f1: float, f2: float, intensity_db: float) -> Phoneme:
    # Nasal murmur keeps noticeable energy at the second and third
    # resonances — that is what lets nasals trigger the accelerometer
    # when not blocked by a barrier (they are in the paper's sensitive
    # set).
    return Phoneme(
        symbol=symbol,
        klass=PhonemeClass.NASAL,
        voiced=True,
        formants=(f1, f2, 2500.0),
        formant_bandwidths=(80.0, 160.0, 320.0),
        formant_gains=(1.0, 0.9, 0.5),
        intensity_db=intensity_db,
        duration_range_s=(0.06, 0.12),
    )


def _fricative(
    symbol: str,
    band: Tuple[float, float],
    noise_gain: float,
    intensity_db: float,
    voiced: bool = False,
    formants: Tuple[float, ...] = (),
) -> Phoneme:
    bandwidths = tuple(90.0 for _ in formants)
    gains = tuple(0.8 / (i + 1) for i in range(len(formants)))
    return Phoneme(
        symbol=symbol,
        klass=PhonemeClass.FRICATIVE,
        voiced=voiced,
        formants=formants,
        formant_bandwidths=bandwidths,
        formant_gains=gains,
        noise_band=band,
        noise_gain=noise_gain,
        intensity_db=intensity_db,
        duration_range_s=(0.07, 0.14),
    )


def _stop(
    symbol: str,
    burst_band: Tuple[float, float],
    intensity_db: float,
    voiced: bool,
) -> Phoneme:
    formants = (350.0, 1400.0) if voiced else ()
    bandwidths = tuple(120.0 for _ in formants)
    gains = tuple(0.7 for _ in formants)
    return Phoneme(
        symbol=symbol,
        klass=PhonemeClass.STOP,
        voiced=voiced,
        formants=formants,
        formant_bandwidths=bandwidths,
        formant_gains=gains,
        noise_band=burst_band,
        noise_gain=1.0,
        intensity_db=intensity_db,
        duration_range_s=(0.03, 0.07),
    )


def _silence(symbol: str, klass: PhonemeClass) -> Phoneme:
    return Phoneme(
        symbol=symbol,
        klass=klass,
        voiced=False,
        intensity_db=-80.0,
        duration_range_s=(0.02, 0.08),
    )


def _build_inventory() -> Dict[str, Phoneme]:
    phonemes = [
        # --- Monophthong vowels (canonical male formants, Hz) ---
        _vowel("iy", 270, 2290, 3010, intensity_db=1.0),
        _vowel("ih", 390, 1990, 2550, intensity_db=0.5),
        _vowel("eh", 530, 1840, 2480, intensity_db=1.0),
        _vowel("ae", 660, 1720, 2410, intensity_db=2.0),
        # /aa/ and /ao/ are pronounced with strong larynx vibration; the
        # paper singles them out as too loud to lose their high-frequency
        # energy behind a barrier (Criterion I failures).
        # The loud open vowels carry a strong low-frequency voicing bar
        # (modelled as an extra ~250 Hz resonance): pronounced with high
        # vocal effort, their low harmonics stay strong even behind a
        # barrier — the paper's Criterion I failures.
        Phoneme(
            symbol="aa", klass=PhonemeClass.VOWEL, voiced=True,
            formants=(250.0, 730.0, 1090.0, 2440.0),
            formant_bandwidths=(140.0, 70.0, 110.0, 170.0),
            formant_gains=(0.9, 1.0, 0.9, 0.35),
            intensity_db=11.5, duration_range_s=(0.09, 0.18),
        ),
        Phoneme(
            symbol="ao", klass=PhonemeClass.VOWEL, voiced=True,
            formants=(240.0, 570.0, 840.0, 2410.0),
            formant_bandwidths=(140.0, 70.0, 100.0, 170.0),
            formant_gains=(0.9, 1.0, 0.9, 0.35),
            intensity_db=10.0, duration_range_s=(0.09, 0.18),
        ),
        _vowel("ah", 640, 1190, 2390, intensity_db=2.0),
        _vowel("uh", 440, 1020, 2240, intensity_db=0.0),
        _vowel("uw", 300, 870, 2240, intensity_db=0.5),
        _vowel("er", 490, 1350, 1690, intensity_db=1.0),
        _vowel("ax", 500, 1400, 2400, intensity_db=-2.0),
        _vowel("ix", 420, 1800, 2500, intensity_db=-2.0),
        _vowel("axr", 480, 1400, 1700, intensity_db=-2.0),
        _vowel("ax-h", 500, 1400, 2400, intensity_db=-6.0),
        _vowel("ux", 330, 1700, 2350, intensity_db=0.0),
        # --- Diphthongs (midpoint formants; glide handled at synthesis) ---
        _vowel("ey", 480, 1950, 2600, intensity_db=1.5,
               klass=PhonemeClass.DIPHTHONG, duration=(0.12, 0.22)),
        _vowel("ay", 620, 1500, 2500, intensity_db=2.0,
               klass=PhonemeClass.DIPHTHONG, duration=(0.12, 0.22)),
        _vowel("aw", 690, 1200, 2450, intensity_db=2.0,
               klass=PhonemeClass.DIPHTHONG, duration=(0.12, 0.22)),
        _vowel("oy", 520, 1000, 2400, intensity_db=1.5,
               klass=PhonemeClass.DIPHTHONG, duration=(0.12, 0.22)),
        _vowel("ow", 470, 950, 2350, intensity_db=1.5,
               klass=PhonemeClass.DIPHTHONG, duration=(0.12, 0.22)),
        # --- Semivowels and glides ---
        _vowel("l", 360, 1300, 2700, intensity_db=-1.0,
               klass=PhonemeClass.SEMIVOWEL, duration=(0.05, 0.10)),
        _vowel("el", 380, 1300, 2700, intensity_db=-2.0,
               klass=PhonemeClass.SEMIVOWEL, duration=(0.06, 0.12)),
        _vowel("r", 420, 1300, 1600, intensity_db=-1.0,
               klass=PhonemeClass.SEMIVOWEL, duration=(0.05, 0.10)),
        _vowel("w", 300, 750, 2200, intensity_db=-1.0,
               klass=PhonemeClass.SEMIVOWEL, duration=(0.05, 0.10)),
        _vowel("y", 280, 2200, 2900, intensity_db=-1.0,
               klass=PhonemeClass.SEMIVOWEL, duration=(0.05, 0.10)),
        _fricative("hh", (400.0, 2500.0), 0.8, -8.0),
        _fricative("hv", (400.0, 2500.0), 0.6, -10.0, voiced=True,
                   formants=(500.0, 1500.0)),
        # --- Nasals ---
        _nasal("m", 250, 1100, -1.0),
        _nasal("n", 280, 1450, -3.0),
        _nasal("ng", 280, 1300, -2.5),
        _nasal("em", 250, 1100, -6.0),
        _nasal("en", 280, 1450, -6.0),
        _nasal("eng", 280, 1300, -6.0),
        _nasal("nx", 280, 1450, -6.0),
        # --- Fricatives ---
        # /s/, /z/, /sh/, /th/ inherently have low sound intensity
        # (Criterion II failures in the paper's selection).
        _fricative("s", (4000.0, 7500.0), 1.0, -22.0),
        _fricative("z", (4000.0, 7500.0), 0.8, -21.0, voiced=True,
                   formants=(250.0,)),
        _fricative("sh", (2000.0, 6000.0), 1.0, -20.0),
        _fricative("zh", (2000.0, 6000.0), 0.8, -14.0, voiced=True,
                   formants=(250.0,)),
        _fricative("f", (1500.0, 7000.0), 0.9, -8.0),
        _fricative("th", (1400.0, 7000.0), 0.8, -23.0),
        _fricative("v", (1000.0, 6500.0), 0.7, -6.0, voiced=True,
                   formants=(300.0,)),
        _fricative("dh", (1200.0, 6000.0), 0.6, -6.0, voiced=True,
                   formants=(300.0,)),
        # --- Affricates ---
        # Affricates start with a stop-like broadband release.
        Phoneme(
            symbol="ch", klass=PhonemeClass.AFFRICATE, voiced=False,
            noise_band=(900.0, 6000.0), noise_gain=1.0,
            intensity_db=-8.0, duration_range_s=(0.08, 0.14),
        ),
        Phoneme(
            symbol="jh", klass=PhonemeClass.AFFRICATE, voiced=True,
            formants=(300.0, 1700.0), formant_bandwidths=(110.0, 150.0),
            formant_gains=(0.8, 0.5), noise_band=(900.0, 6000.0),
            noise_gain=0.8, intensity_db=-7.0,
            duration_range_s=(0.08, 0.14),
        ),
        # --- Stops ---
        # Release bursts are broadband transients: energy extends well
        # below 1 kHz (unlike sustained fricatives), which is what lets
        # the 0-900 Hz MFCC front end tell /t/ from /s/.
        _stop("b", (200.0, 2500.0), -6.0, voiced=True),
        _stop("d", (700.0, 5500.0), -6.0, voiced=True),
        _stop("g", (500.0, 3500.0), -6.0, voiced=True),
        _stop("p", (200.0, 3000.0), -7.0, voiced=False),
        _stop("t", (700.0, 6500.0), -5.0, voiced=False),
        _stop("k", (500.0, 4000.0), -7.0, voiced=False),
        _stop("dx", (700.0, 5000.0), -10.0, voiced=True),
        _stop("q", (200.0, 1500.0), -14.0, voiced=False),
        # --- Closures and silences ---
        _silence("bcl", PhonemeClass.CLOSURE),
        _silence("dcl", PhonemeClass.CLOSURE),
        _silence("gcl", PhonemeClass.CLOSURE),
        _silence("pcl", PhonemeClass.CLOSURE),
        _silence("tcl", PhonemeClass.CLOSURE),
        _silence("kcl", PhonemeClass.CLOSURE),
        _silence("pau", PhonemeClass.SILENCE),
        _silence("epi", PhonemeClass.SILENCE),
        _silence("h#", PhonemeClass.SILENCE),
        # Generic inter-word pause symbols used by the utterance builder
        # (bringing the transcription alphabet to the 63 symbols the paper
        # counts).  Natural inter-word gaps run 50–180 ms.
        Phoneme(
            symbol="sil", klass=PhonemeClass.SILENCE, voiced=False,
            intensity_db=-80.0, duration_range_s=(0.08, 0.25),
        ),
        Phoneme(
            symbol="sp", klass=PhonemeClass.SILENCE, voiced=False,
            intensity_db=-80.0, duration_range_s=(0.05, 0.18),
        ),
    ]
    inventory = {phoneme.symbol: phoneme for phoneme in phonemes}
    if len(inventory) != len(phonemes):
        raise ConfigurationError("duplicate phoneme symbols in inventory")
    return inventory


#: Full 63-symbol inventory keyed by TIMIT symbol.
PHONEME_INVENTORY: Dict[str, Phoneme] = _build_inventory()

#: Table II of the paper: the 37 phonemes common in VA voice commands,
#: with their appearance counts in the command corpus the authors studied.
COMMON_PHONEMES: Dict[str, int] = {
    "t": 129, "n": 108, "ah": 107, "s": 101, "r": 100, "ih": 99,
    "d": 83, "l": 70, "k": 70, "ch": 69, "iy": 65, "m": 65,
    "er": 58, "z": 49, "w": 40, "ae": 39, "ey": 38, "p": 37,
    "ay": 36, "aa": 32, "uw": 31, "b": 31, "ao": 29, "f": 29,
    "v": 28, "hh": 20, "ng": 17, "ow": 17, "aw": 15, "y": 15,
    "jh": 14, "g": 13, "eh": 13, "dh": 12, "th": 10, "sh": 8,
    "uh": 6,
}

#: The 6 common phonemes the paper's selection drops: /s/, /z/, /sh/, /th/
#: fail Criterion II (too weak to trigger the accelerometer at all) and
#: /aa/, /ao/ fail Criterion I (loud enough to still trigger it behind a
#: barrier).  The remaining 31 are the barrier-effect-sensitive set.
PAPER_EXCLUDED_PHONEMES = frozenset({"s", "z", "sh", "th", "aa", "ao"})

#: The paper's 31 barrier-effect-sensitive phonemes (Table II, bold).
PAPER_SELECTED_PHONEMES = frozenset(
    symbol for symbol in COMMON_PHONEMES
    if symbol not in PAPER_EXCLUDED_PHONEMES
)


def get_phoneme(symbol: str) -> Phoneme:
    """Look up a phoneme by TIMIT symbol, raising a clear error if unknown."""
    try:
        return PHONEME_INVENTORY[symbol]
    except KeyError:
        raise ConfigurationError(
            f"unknown phoneme symbol {symbol!r}; known symbols: "
            f"{sorted(PHONEME_INVENTORY)}"
        ) from None


def phoneme_symbols(sounding_only: bool = False) -> Tuple[str, ...]:
    """All inventory symbols, optionally restricted to sounding phonemes."""
    if sounding_only:
        return tuple(
            symbol for symbol, phoneme in PHONEME_INVENTORY.items()
            if phoneme.is_sounding
        )
    return tuple(PHONEME_INVENTORY)
