"""Source–filter phoneme synthesis.

The synthesizer generates phoneme sounds at 16 kHz from the inventory's
acoustic parameters and a speaker profile:

* **Voiced sounds** are built as a harmonic series at the speaker's F0
  (with jitter), each harmonic weighted by the phoneme's formant envelope
  and a glottal spectral tilt.  This is additive synthesis of exactly the
  spectrum a glottal-pulse-through-resonators model would produce, which
  gives precise control over the spectral shapes the barrier-effect study
  depends on.
* **Frication/aspiration** is white noise spectrally shaped into the
  phoneme's noise band (plus formant coloring for voiced fricatives).
* **Stops/affricates** get a burst-like amplitude envelope; other classes
  get a smooth attack/decay envelope.

All amplitudes are relative; absolute sound pressure levels are applied
later by :mod:`repro.acoustics.spl`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, SynthesisError
from repro.phonemes.inventory import Phoneme, PhonemeClass, get_phoneme
from repro.phonemes.speaker import SpeakerProfile
from repro.utils.rng import SeedLike, as_generator

#: Library-wide audio sampling rate (Hz).
AUDIO_SAMPLE_RATE = 16_000.0

#: Spectral tilt of the glottal source, dB per octave above 100 Hz.
_GLOTTAL_TILT_DB_PER_OCTAVE = -7.0

#: Reference RMS amplitude of a 0 dB-intensity phoneme.
_REFERENCE_RMS = 0.1


def spectral_envelope(
    phoneme: Phoneme,
    speaker: SpeakerProfile,
    frequencies: np.ndarray,
) -> np.ndarray:
    """Formant-resonance amplitude envelope evaluated at ``frequencies``.

    Each formant contributes a Lorentzian resonance peak; formant centers
    are scaled by the speaker's vocal-tract factor and perturbed slightly
    by dialect region.  Returns linear amplitudes (not dB).
    """
    frequencies = np.asarray(frequencies, dtype=np.float64)
    envelope = np.full(frequencies.shape, 1e-3)
    dialect_shift = 1.0 + 0.01 * (speaker.dialect_region - 4.5) / 4.5
    for center, bandwidth, gain in zip(
        phoneme.formants, phoneme.formant_bandwidths, phoneme.formant_gains
    ):
        scaled_center = center * speaker.formant_scale * dialect_shift
        envelope += gain / (
            1.0 + ((frequencies - scaled_center) / bandwidth) ** 2
        )
    return envelope


def _glottal_tilt(frequencies: np.ndarray) -> np.ndarray:
    """Linear-amplitude glottal roll-off above 100 Hz."""
    frequencies = np.maximum(np.asarray(frequencies, dtype=np.float64), 1.0)
    octaves = np.log2(np.maximum(frequencies / 100.0, 1.0))
    return 10.0 ** (_GLOTTAL_TILT_DB_PER_OCTAVE * octaves / 20.0)


@dataclass
class SynthesisConfig:
    """Tunable synthesis constants (defaults fit the paper's setting)."""

    sample_rate: float = AUDIO_SAMPLE_RATE
    reference_rms: float = _REFERENCE_RMS
    max_harmonics: int = 60


class PhonemeSynthesizer:
    """Synthesizes phoneme sounds and whole utterances.

    Parameters
    ----------
    config:
        Optional synthesis constants; defaults are fine for all paper
        experiments.

    Examples
    --------
    >>> from repro.phonemes import PhonemeSynthesizer, generate_speakers
    >>> speaker = generate_speakers(1, rng=7)[0]
    >>> synth = PhonemeSynthesizer()
    >>> sound = synth.synthesize("ae", speaker, rng=7)
    >>> sound.ndim
    1
    """

    def __init__(self, config: Optional[SynthesisConfig] = None) -> None:
        self.config = config or SynthesisConfig()
        if self.config.sample_rate <= 0:
            raise ConfigurationError("sample_rate must be > 0")

    @property
    def sample_rate(self) -> float:
        """Output sampling rate in Hz."""
        return self.config.sample_rate

    def synthesize(
        self,
        symbol: str,
        speaker: SpeakerProfile,
        duration_s: Optional[float] = None,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Synthesize one phoneme sound.

        Parameters
        ----------
        symbol:
            TIMIT phoneme symbol.
        speaker:
            Voice parameters.
        duration_s:
            Segment duration; drawn from the phoneme's typical range when
            omitted.
        rng:
            Seed or generator for jitter, noise, and duration draws.

        Returns
        -------
        numpy.ndarray
            Mono waveform at :attr:`sample_rate`; silent phonemes return
            near-zero samples of the requested duration.
        """
        generator = as_generator(rng)
        phoneme = get_phoneme(symbol)
        if duration_s is None:
            low, high = phoneme.duration_range_s
            duration_s = float(generator.uniform(low, high))
        n_samples = max(int(round(duration_s * self.sample_rate)), 8)

        if not phoneme.is_sounding:
            return 1e-6 * generator.standard_normal(n_samples)

        voiced_part = np.zeros(n_samples)
        noise_part = np.zeros(n_samples)
        if phoneme.voiced and phoneme.formants:
            voiced_part = self._harmonic_series(
                phoneme, speaker, n_samples, generator
            )
        if phoneme.noise_band is not None and phoneme.noise_gain > 0:
            noise_part = phoneme.noise_gain * self._shaped_noise(
                phoneme, speaker, n_samples, generator
            )
        if phoneme.voiced and speaker.breathiness > 0 and phoneme.formants:
            noise_part += speaker.breathiness * self._aspiration(
                phoneme, speaker, n_samples, generator
            )

        waveform = voiced_part + noise_part
        waveform *= self._amplitude_envelope(phoneme, n_samples)
        return self._scale_to_intensity(waveform, phoneme, speaker)

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------

    def _harmonic_series(
        self,
        phoneme: Phoneme,
        speaker: SpeakerProfile,
        n_samples: int,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Additive harmonic synthesis shaped by the formant envelope."""
        sample_rate = self.sample_rate
        nyquist = sample_rate / 2.0
        f0 = speaker.f0_hz * float(
            1.0 + generator.normal(0.0, speaker.jitter)
        )
        f0 = float(np.clip(f0, 50.0, 400.0))
        n_harmonics = min(
            int(nyquist / f0) - 1, self.config.max_harmonics
        )
        if n_harmonics < 1:
            raise SynthesisError(
                f"F0 {f0:.1f} Hz leaves no harmonics below Nyquist"
            )
        t = np.arange(n_samples) / sample_rate
        harmonic_freqs = f0 * np.arange(1, n_harmonics + 1)
        amplitudes = (
            spectral_envelope(phoneme, speaker, harmonic_freqs)
            * _glottal_tilt(harmonic_freqs)
        )
        phases = generator.uniform(0.0, 2 * np.pi, size=n_harmonics)
        # Slow vibrato: a few cents of F0 drift across the segment.
        vibrato = 1.0 + 0.003 * np.sin(
            2 * np.pi * 5.0 * t + generator.uniform(0, 2 * np.pi)
        )
        phase_matrix = (
            2 * np.pi * np.outer(np.cumsum(vibrato) / sample_rate,
                                 harmonic_freqs)
            + phases[np.newaxis, :]
        )
        return np.sin(phase_matrix) @ amplitudes

    def _shaped_noise(
        self,
        phoneme: Phoneme,
        speaker: SpeakerProfile,
        n_samples: int,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """White noise band-limited to the phoneme's frication band."""
        low_hz, high_hz = phoneme.noise_band
        nyquist = self.sample_rate / 2.0
        low_hz = min(low_hz, nyquist * 0.95)
        high_hz = min(high_hz, nyquist * 0.999)
        white = generator.standard_normal(n_samples)
        spectrum = np.fft.rfft(white)
        frequencies = np.fft.rfftfreq(n_samples, d=1.0 / self.sample_rate)
        # Raised-cosine band edges avoid ringing from brick-wall masks.
        width = max((high_hz - low_hz) * 0.15, 50.0)
        gain = np.clip((frequencies - (low_hz - width)) / width, 0.0, 1.0)
        gain *= np.clip(((high_hz + width) - frequencies) / width, 0.0, 1.0)
        shaped = np.fft.irfft(spectrum * gain, n=n_samples)
        rms = float(np.sqrt(np.mean(shaped**2))) + 1e-12
        return shaped / rms

    def _aspiration(
        self,
        phoneme: Phoneme,
        speaker: SpeakerProfile,
        n_samples: int,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Breathy noise colored by the phoneme's formants."""
        white = generator.standard_normal(n_samples)
        spectrum = np.fft.rfft(white)
        frequencies = np.fft.rfftfreq(n_samples, d=1.0 / self.sample_rate)
        envelope = spectral_envelope(phoneme, speaker, frequencies)
        shaped = np.fft.irfft(spectrum * envelope, n=n_samples)
        rms = float(np.sqrt(np.mean(shaped**2))) + 1e-12
        return shaped / rms

    def _amplitude_envelope(
        self, phoneme: Phoneme, n_samples: int
    ) -> np.ndarray:
        """Temporal envelope: burst-like for stops, smooth otherwise."""
        t = np.linspace(0.0, 1.0, n_samples)
        if phoneme.klass is PhonemeClass.STOP:
            # Sharp attack, exponential decay: a release burst.
            return np.exp(-6.0 * t) * (1.0 - np.exp(-80.0 * t))
        if phoneme.klass is PhonemeClass.AFFRICATE:
            return np.exp(-3.0 * t) * (1.0 - np.exp(-40.0 * t))
        attack = np.clip(t / 0.15, 0.0, 1.0)
        release = np.clip((1.0 - t) / 0.2, 0.0, 1.0)
        return np.minimum(attack, release) ** 0.5

    def _scale_to_intensity(
        self,
        waveform: np.ndarray,
        phoneme: Phoneme,
        speaker: SpeakerProfile,
    ) -> np.ndarray:
        """Scale RMS to the phoneme's intensity plus speaker loudness."""
        rms = float(np.sqrt(np.mean(waveform**2)))
        if rms <= 1e-12:
            return waveform
        target_db = phoneme.intensity_db + speaker.loudness_db
        target_rms = self.config.reference_rms * 10.0 ** (target_db / 20.0)
        return waveform * (target_rms / rms)
