"""Speaker models for the synthetic corpus.

A speaker is a small bundle of vocal parameters: fundamental frequency,
vocal-tract length (formant scaling), breathiness, and habitual loudness.
The evaluation campaign generates pools of such speakers (the paper
recruited 20 participants; its barrier study used five males and five
females) with gender-typical parameter distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SpeakerProfile:
    """Vocal parameters of one synthetic speaker.

    Attributes
    ----------
    speaker_id:
        Stable identifier, e.g. ``"M03"``.
    gender:
        ``"male"`` or ``"female"``; affects default parameter ranges only.
    f0_hz:
        Mean fundamental frequency.
    formant_scale:
        Multiplier on canonical male formant frequencies (shorter vocal
        tracts shift formants up; typical female scale ≈ 1.15).
    jitter:
        Relative cycle-to-cycle F0 perturbation (0–0.05 typical).
    breathiness:
        Fraction of aspiration noise mixed into voiced sounds (0–0.3).
    loudness_db:
        Habitual loudness offset in dB relative to the pool average.
    dialect_region:
        TIMIT-style dialect region index (1–8); perturbs vowel formants.
    """

    speaker_id: str
    gender: str
    f0_hz: float
    formant_scale: float
    jitter: float = 0.01
    breathiness: float = 0.08
    loudness_db: float = 0.0
    dialect_region: int = 1

    def __post_init__(self) -> None:
        if self.gender not in ("male", "female"):
            raise ConfigurationError(
                f"gender must be 'male' or 'female', got {self.gender!r}"
            )
        if not 50.0 <= self.f0_hz <= 400.0:
            raise ConfigurationError(
                f"f0_hz out of plausible range [50, 400]: {self.f0_hz}"
            )
        if not 0.7 <= self.formant_scale <= 1.5:
            raise ConfigurationError(
                f"formant_scale out of range [0.7, 1.5]: {self.formant_scale}"
            )
        if not 1 <= self.dialect_region <= 8:
            raise ConfigurationError(
                f"dialect_region must be in [1, 8]: {self.dialect_region}"
            )


def generate_speakers(
    n_speakers: int,
    rng: SeedLike = None,
    genders: Sequence[str] = ("male", "female"),
) -> List[SpeakerProfile]:
    """Generate a pool of speakers with gender-typical parameters.

    Genders alternate through ``genders`` so an even count yields a
    balanced pool (matching the paper's five-male / five-female barrier
    study).
    """
    if n_speakers <= 0:
        raise ConfigurationError(
            f"n_speakers must be > 0, got {n_speakers}"
        )
    generator = as_generator(rng)
    speakers = []
    for index in range(n_speakers):
        gender = genders[index % len(genders)]
        if gender == "male":
            f0 = float(generator.uniform(95.0, 145.0))
            scale = float(generator.uniform(0.95, 1.05))
            prefix = "M"
        else:
            f0 = float(generator.uniform(175.0, 245.0))
            scale = float(generator.uniform(1.10, 1.22))
            prefix = "F"
        speakers.append(
            SpeakerProfile(
                speaker_id=f"{prefix}{index:02d}",
                gender=gender,
                f0_hz=f0,
                formant_scale=scale,
                jitter=float(generator.uniform(0.005, 0.02)),
                breathiness=float(generator.uniform(0.04, 0.15)),
                loudness_db=float(generator.normal(0.0, 1.5)),
                dialect_region=int(generator.integers(1, 9)),
            )
        )
    return speakers
