"""VA voice-command corpus and phonemizer (behind the paper's Table II).

The paper derives its 37 common phonemes from lists of popular Alexa and
Google Assistant commands.  This module ships a representative command
corpus with a hand-built ARPABET-style lexicon, a phonemizer, and the
appearance-count computation, plus the paper's own Table II counts for
comparison.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.phonemes.inventory import COMMON_PHONEMES

#: The paper's Table II appearance counts (reference data).
PAPER_TABLE2_COUNTS: Dict[str, int] = dict(COMMON_PHONEMES)

#: Word -> phoneme-sequence lexicon for the command corpus (TIMIT symbols,
#: no stress markers; closures omitted for brevity).
LEXICON: Dict[str, Tuple[str, ...]] = {
    "ok": ("ow", "k", "ey"),
    "google": ("g", "uw", "g", "ah", "l"),
    "alexa": ("ah", "l", "eh", "k", "s", "ah"),
    "hey": ("hh", "ey"),
    "siri": ("s", "ih", "r", "iy"),
    "turn": ("t", "er", "n"),
    "on": ("aa", "n"),
    "off": ("ao", "f"),
    "the": ("dh", "ah"),
    "lights": ("l", "ay", "t", "s"),
    "light": ("l", "ay", "t"),
    "living": ("l", "ih", "v", "ih", "ng"),
    "room": ("r", "uw", "m"),
    "bedroom": ("b", "eh", "d", "r", "uw", "m"),
    "kitchen": ("k", "ih", "ch", "ah", "n"),
    "what": ("w", "ah", "t"),
    "whats": ("w", "ah", "t", "s"),
    "is": ("ih", "z"),
    "time": ("t", "ay", "m"),
    "it": ("ih", "t"),
    "weather": ("w", "eh", "dh", "er"),
    "today": ("t", "ah", "d", "ey"),
    "tomorrow": ("t", "ah", "m", "aa", "r", "ow"),
    "set": ("s", "eh", "t"),
    "a": ("ah",),
    "an": ("ah", "n"),
    "timer": ("t", "ay", "m", "er"),
    "for": ("f", "er"),
    "ten": ("t", "eh", "n"),
    "five": ("f", "ay", "v"),
    "twenty": ("t", "w", "eh", "n", "t", "iy"),
    "minutes": ("m", "ih", "n", "ah", "t", "s"),
    "minute": ("m", "ih", "n", "ah", "t"),
    "alarm": ("ah", "l", "aa", "r", "m"),
    "seven": ("s", "eh", "v", "ah", "n"),
    "thirty": ("th", "er", "t", "iy"),
    "am": ("ey", "eh", "m"),
    "play": ("p", "l", "ey"),
    "music": ("m", "y", "uw", "z", "ih", "k"),
    "pause": ("p", "ao", "z"),
    "stop": ("s", "t", "aa", "p"),
    "next": ("n", "eh", "k", "s", "t"),
    "song": ("s", "ao", "ng"),
    "volume": ("v", "aa", "l", "y", "uw", "m"),
    "up": ("ah", "p"),
    "down": ("d", "aw", "n"),
    "lower": ("l", "ow", "er"),
    "raise": ("r", "ey", "z"),
    "temperature": ("t", "eh", "m", "p", "er", "ah", "ch", "er"),
    "thermostat": ("th", "er", "m", "ah", "s", "t", "ae", "t"),
    "to": ("t", "uw"),
    "seventy": ("s", "eh", "v", "ah", "n", "t", "iy"),
    "degrees": ("d", "ah", "g", "r", "iy", "z"),
    "lock": ("l", "aa", "k"),
    "unlock": ("ah", "n", "l", "aa", "k"),
    "front": ("f", "r", "ah", "n", "t"),
    "back": ("b", "ae", "k"),
    "door": ("d", "ao", "r"),
    "open": ("ow", "p", "ah", "n"),
    "close": ("k", "l", "ow", "z"),
    "garage": ("g", "er", "aa", "jh"),
    "call": ("k", "ao", "l"),
    "mom": ("m", "aa", "m"),
    "send": ("s", "eh", "n", "d"),
    "message": ("m", "eh", "s", "ah", "jh"),
    "remind": ("r", "iy", "m", "ay", "n", "d"),
    "me": ("m", "iy"),
    "at": ("ae", "t"),
    "add": ("ae", "d"),
    "milk": ("m", "ih", "l", "k"),
    "shopping": ("sh", "aa", "p", "ih", "ng"),
    "list": ("l", "ih", "s", "t"),
    "my": ("m", "ay"),
    "tell": ("t", "eh", "l"),
    "joke": ("jh", "ow", "k"),
    "news": ("n", "uw", "z"),
    "read": ("r", "iy", "d"),
    "how": ("hh", "aw"),
    "far": ("f", "aa", "r"),
    "airport": ("eh", "r", "p", "ao", "r", "t"),
    "traffic": ("t", "r", "ae", "f", "ih", "k"),
    "like": ("l", "ay", "k"),
    "will": ("w", "ih", "l"),
    "rain": ("r", "ey", "n"),
    "cancel": ("k", "ae", "n", "s", "ah", "l"),
    "snooze": ("s", "n", "uw", "z"),
    "good": ("g", "uh", "d"),
    "morning": ("m", "ao", "r", "n", "ih", "ng"),
    "night": ("n", "ay", "t"),
    "start": ("s", "t", "aa", "r", "t"),
    "vacuum": ("v", "ae", "k", "y", "uw", "m"),
    "cleaner": ("k", "l", "iy", "n", "er"),
    "dim": ("d", "ih", "m"),
    "percent": ("p", "er", "s", "eh", "n", "t"),
    "fifty": ("f", "ih", "f", "t", "iy"),
    "coffee": ("k", "aa", "f", "iy"),
    "maker": ("m", "ey", "k", "er"),
    "brew": ("b", "r", "uw"),
    "switch": ("s", "w", "ih", "ch"),
    "channel": ("ch", "ae", "n", "ah", "l"),
    "tv": ("t", "iy", "v", "iy"),
    "increase": ("ih", "n", "k", "r", "iy", "s"),
    "decrease": ("d", "iy", "k", "r", "iy", "s"),
    "watch": ("w", "aa", "ch"),
    "movie": ("m", "uw", "v", "iy"),
    "search": ("s", "er", "ch"),
    "question": ("k", "w", "eh", "s", "ch", "ah", "n"),
    "answer": ("ae", "n", "s", "er"),
    "repeat": ("r", "iy", "p", "iy", "t"),
    "that": ("dh", "ae", "t"),
    "louder": ("l", "aw", "d", "er"),
    "quieter": ("k", "w", "ay", "ah", "t", "er"),
    "shuffle": ("sh", "ah", "f", "ah", "l"),
    "favorite": ("f", "ey", "v", "er", "ah", "t"),
    "playlist": ("p", "l", "ey", "l", "ih", "s", "t"),
    "security": ("s", "ah", "k", "y", "uh", "r", "ah", "t", "iy"),
    "camera": ("k", "ae", "m", "er", "ah"),
    "show": ("sh", "ow"),
    "disarm": ("d", "ih", "s", "aa", "r", "m"),
    "arm": ("aa", "r", "m"),
    "system": ("s", "ih", "s", "t", "ah", "m"),
}

#: Representative VA command corpus (wake word + command phrases).
VA_COMMANDS: Tuple[str, ...] = (
    "ok google turn on the lights",
    "ok google turn off the living room lights",
    "ok google whats the weather today",
    "ok google set a timer for ten minutes",
    "ok google play music",
    "ok google lower the volume",
    "ok google lock the front door",
    "ok google open the garage door",
    "ok google set the thermostat to seventy degrees",
    "ok google tell me a joke",
    "ok google read the news",
    "ok google will it rain tomorrow",
    "ok google dim the lights to fifty percent",
    "ok google start the vacuum cleaner",
    "ok google whats on my shopping list",
    "alexa turn on the kitchen light",
    "alexa turn off the bedroom lights",
    "alexa what time is it",
    "alexa set an alarm for seven thirty am",
    "alexa play my favorite playlist",
    "alexa next song",
    "alexa stop the music",
    "alexa add milk to my shopping list",
    "alexa remind me to call mom at five",
    "alexa unlock the back door",
    "alexa show the security camera",
    "alexa disarm the security system",
    "alexa increase the temperature",
    "alexa snooze the alarm",
    "alexa how far is the airport",
    "hey siri send a message to mom",
    "hey siri whats the traffic like",
    "hey siri turn up the volume",
    "hey siri pause the music",
    "hey siri switch the tv channel",
    "hey siri repeat that",
    "hey siri cancel my alarm",
    "hey siri good morning",
    "hey siri good night",
    "hey siri watch a movie",
)


def phonemize(text: str) -> List[str]:
    """Convert command text to a phoneme sequence via the lexicon.

    Words are separated by short pauses (``sp``) so the utterance builder
    produces natural word boundaries.  Raises on out-of-lexicon words so
    corpus gaps fail loudly rather than silently skipping words.
    """
    words = text.lower().replace("'", "").split()
    if not words:
        raise ConfigurationError("text must contain at least one word")
    sequence: List[str] = []
    for index, word in enumerate(words):
        if word not in LEXICON:
            raise ConfigurationError(
                f"word {word!r} is not in the command lexicon"
            )
        if index > 0:
            sequence.append("sp")
        sequence.extend(LEXICON[word])
    return sequence


def command_phoneme_counts(
    commands: Sequence[str] = VA_COMMANDS,
) -> Dict[str, int]:
    """Appearance count of every phoneme across a command corpus.

    This reproduces the counting behind Table II (pause symbols are not
    counted).
    """
    counter: Counter = Counter()
    for command in commands:
        for symbol in phonemize(command):
            if symbol not in ("sp", "sil"):
                counter[symbol] += 1
    return dict(counter)


def common_phonemes_from_corpus(
    commands: Sequence[str] = VA_COMMANDS,
    top_k: int = 37,
) -> List[str]:
    """The ``top_k`` most frequent phonemes in a command corpus."""
    if top_k <= 0:
        raise ConfigurationError(f"top_k must be > 0, got {top_k}")
    counts = command_phoneme_counts(commands)
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [symbol for symbol, _ in ranked[:top_k]]
