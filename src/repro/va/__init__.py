"""Voice-assistant device substrate.

Models the four commercial VA devices of the paper's attack study
(Table I): microphone sensitivity, wake-word detection, and the embedded
speaker-verification gate that Siri devices apply to "Hey Siri".
"""

from repro.va.device import (
    ALEXA_ECHO,
    GOOGLE_HOME,
    IPHONE,
    MACBOOK_PRO,
    VA_DEVICES,
    VoiceAssistantDevice,
    VoiceAssistantSpec,
)
from repro.va.wakeword import WakeWordDetector, WakeWordResult
from repro.va.verification import (
    SpeakerVerifier,
    VerificationResult,
    VerifierConfig,
)

__all__ = [
    "SpeakerVerifier",
    "VerificationResult",
    "VerifierConfig",
    "GOOGLE_HOME",
    "ALEXA_ECHO",
    "MACBOOK_PRO",
    "IPHONE",
    "VA_DEVICES",
    "VoiceAssistantDevice",
    "VoiceAssistantSpec",
    "WakeWordDetector",
    "WakeWordResult",
]
