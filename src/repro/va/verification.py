"""Speaker verification (the "voice authentication" the paper layers on).

Commercial VAs ship voice authentication (the paper's § I notes Siri's
embedded recognition and WeChat's voiceprint); its weakness against
replay/synthesis attacks is exactly why the thru-barrier defense is
needed as an *additional* layer.  This module implements a compact
text-independent speaker verifier so that interplay can be studied:

* **Features** — a long-term average log-mel spectrum (LTAS, vocal-tract
  signature) concatenated with F0 statistics (median and spread of the
  autocorrelation pitch track, source signature), computed over voiced
  frames only.
* **Enrollment** — the mean feature vector over a few enrollment
  utterances.
* **Verification** — cosine similarity between the probe's features and
  the enrolled profile, thresholded.

The verifier correctly rejects *random* attacks (different speaker) but
accepts replayed and well-cloned voices — reproducing the paper's
premise that voice authentication alone cannot stop replay/synthesis,
while the cross-domain defense can.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.dsp.mel import mel_filterbank
from repro.dsp.windows import frame_signal, get_window
from repro.errors import ConfigurationError, ModelError
from repro.utils.validation import ensure_1d, ensure_positive


@dataclass
class VerifierConfig:
    """Speaker-verifier parameters.

    Attributes
    ----------
    n_mel:
        Mel channels of the long-term average spectrum.
    band_hz:
        Upper edge of the analysis band.
    frame_length_s / hop_length_s:
        Analysis framing.
    f0_range_hz:
        Plausible fundamental-frequency search range.
    voicing_threshold:
        Fraction of the maximum frame energy below which frames are
        treated as silence and excluded.
    accept_threshold:
        Cosine-similarity score at or above which a probe is accepted.
    """

    n_mel: int = 32
    band_hz: float = 4000.0
    frame_length_s: float = 0.032
    hop_length_s: float = 0.016
    f0_range_hz: tuple = (60.0, 400.0)
    voicing_threshold: float = 0.05
    accept_threshold: float = 0.80

    def __post_init__(self) -> None:
        if self.n_mel <= 0:
            raise ConfigurationError("n_mel must be > 0")
        low, high = self.f0_range_hz
        if not 0 < low < high:
            raise ConfigurationError("invalid f0_range_hz")
        if not 0.0 < self.voicing_threshold < 1.0:
            raise ConfigurationError(
                "voicing_threshold must be in (0, 1)"
            )


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one verification attempt."""

    accepted: bool
    score: float


class SpeakerVerifier:
    """Text-independent speaker verification by LTAS + F0 statistics."""

    def __init__(
        self,
        config: Optional[VerifierConfig] = None,
        sample_rate: float = 16_000.0,
    ) -> None:
        self.config = config or VerifierConfig()
        ensure_positive(sample_rate, "sample_rate")
        self.sample_rate = float(sample_rate)
        self._profile: Optional[np.ndarray] = None
        frame_length = int(
            round(self.config.frame_length_s * self.sample_rate)
        )
        n_fft = 1
        while n_fft < frame_length:
            n_fft *= 2
        self._frame_length = frame_length
        self._n_fft = n_fft
        self._bank = mel_filterbank(
            self.config.n_mel, n_fft, self.sample_rate,
            high_hz=self.config.band_hz,
        )

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------

    def features(self, audio: np.ndarray) -> np.ndarray:
        """Speaker-signature feature vector of one utterance."""
        samples = ensure_1d(audio, "audio")
        hop = max(
            int(round(self.config.hop_length_s * self.sample_rate)), 1
        )
        frames = frame_signal(
            samples, self._frame_length, hop, pad_final=True
        )
        window = get_window("hamming", self._frame_length)
        energies = np.sqrt(np.mean(frames**2, axis=1))
        if energies.max() <= 0:
            raise ModelError("utterance is silent; cannot verify")
        voiced = energies >= self.config.voicing_threshold * (
            energies.max()
        )
        if not np.any(voiced):
            voiced = energies >= 0.0  # Degenerate: use everything.
        active = frames[voiced] * window[np.newaxis, :]

        power = np.abs(np.fft.rfft(active, n=self._n_fft, axis=1)) ** 2
        ltas = np.log(power @ self._bank.T + 1e-10).mean(axis=0)
        ltas = ltas - ltas.mean()

        f0_values = self._frame_f0(active)
        if f0_values.size:
            f0_median = float(np.median(f0_values))
            f0_spread = float(np.std(f0_values))
        else:
            f0_median, f0_spread = 0.0, 0.0
        # Scale F0 stats to be commensurate with the LTAS entries.
        return np.concatenate(
            [ltas, [f0_median / 50.0, f0_spread / 50.0]]
        )

    def _frame_f0(self, frames: np.ndarray) -> np.ndarray:
        """Autocorrelation pitch per frame (voiced frames only)."""
        low_hz, high_hz = self.config.f0_range_hz
        min_lag = max(int(self.sample_rate / high_hz), 2)
        max_lag = min(
            int(self.sample_rate / low_hz), frames.shape[1] - 2
        )
        if max_lag <= min_lag:
            return np.zeros(0)
        f0_values: List[float] = []
        for frame in frames:
            centered = frame - frame.mean()
            spectrum = np.fft.rfft(centered, n=2 * centered.size)
            autocorr = np.fft.irfft(np.abs(spectrum) ** 2)
            autocorr = autocorr[: centered.size]
            if autocorr[0] <= 0:
                continue
            segment = autocorr[min_lag : max_lag + 1] / autocorr[0]
            peak = int(np.argmax(segment))
            if segment[peak] < 0.3:  # Unvoiced frame.
                continue
            f0_values.append(self.sample_rate / (min_lag + peak))
        return np.asarray(f0_values)

    # ------------------------------------------------------------------
    # Enrollment and verification
    # ------------------------------------------------------------------

    @property
    def is_enrolled(self) -> bool:
        """Whether a user profile has been enrolled."""
        return self._profile is not None

    def enroll(self, utterances: Sequence[np.ndarray]) -> None:
        """Build the user profile from enrollment utterances."""
        if not utterances:
            raise ModelError("need at least one enrollment utterance")
        vectors = [self.features(u) for u in utterances]
        self._profile = np.mean(vectors, axis=0)

    def score(self, audio: np.ndarray) -> float:
        """Cosine similarity of a probe against the enrolled profile."""
        if self._profile is None:
            raise ModelError("no profile enrolled; call enroll() first")
        probe = self.features(audio)
        denominator = (
            np.linalg.norm(probe) * np.linalg.norm(self._profile)
        )
        if denominator <= 1e-12:
            return 0.0
        return float(np.dot(probe, self._profile) / denominator)

    def verify(self, audio: np.ndarray) -> VerificationResult:
        """Thresholded accept/reject decision for a probe utterance."""
        value = self.score(audio)
        return VerificationResult(
            accepted=value >= self.config.accept_threshold,
            score=value,
        )
