"""Wake-word detection model.

A commercial wake-word engine fires when the wake phrase is audible above
the device's detection threshold with enough spectral evidence.  The
model scores a recording by (a) speech-band SNR against the device noise
floor and (b) how much of the phrase's characteristic band survives; a
logistic function converts the score to a trigger probability, which
captures the paper's observation that attacks succeed stochastically
(e.g., 4/10 at 65 dB, 10/10 at 75 dB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.spl import REFERENCE_RMS_AT_65_DB, gain_to_db
from repro.dsp.spectrum import band_energy
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d, ensure_positive


@dataclass(frozen=True)
class WakeWordResult:
    """Outcome of one wake-word evaluation."""

    triggered: bool
    probability: float
    snr_db: float


class WakeWordDetector:
    """SNR-based stochastic wake-word engine.

    Parameters
    ----------
    threshold_snr_db:
        Speech-band SNR at which the trigger probability is 50 %.
    steepness:
        Logistic steepness (probability per dB around the threshold).
    speech_band:
        Band whose energy counts as wake-word evidence; wake phrases
        survive barriers mainly in the low band, so the default band
        starts low.
    """

    def __init__(
        self,
        threshold_snr_db: float = 6.0,
        steepness: float = 0.55,
        speech_band: tuple = (85.0, 4000.0),
        noise_floor_db: float = 40.0,
    ) -> None:
        ensure_positive(steepness, "steepness")
        self.threshold_snr_db = float(threshold_snr_db)
        self.steepness = float(steepness)
        self.speech_band = speech_band
        self.noise_floor_db = float(noise_floor_db)

    def evaluate(
        self,
        recording: np.ndarray,
        sample_rate: float,
        rng: SeedLike = None,
    ) -> WakeWordResult:
        """Score a recording and stochastically decide a trigger."""
        samples = ensure_1d(recording, "recording")
        generator = as_generator(rng)
        low_hz, high_hz = self.speech_band
        energy = band_energy(samples, sample_rate, low_hz, high_hz)
        level_rms = float(np.sqrt(max(energy, 1e-30)))
        level_db = 65.0 + gain_to_db(
            max(level_rms, 1e-12) / REFERENCE_RMS_AT_65_DB
        )
        snr_db = level_db - self.noise_floor_db
        probability = 1.0 / (
            1.0
            + np.exp(-self.steepness * (snr_db - self.threshold_snr_db))
        )
        triggered = bool(generator.random() < probability)
        return WakeWordResult(
            triggered=triggered,
            probability=float(probability),
            snr_db=float(snr_db),
        )
