"""VA device profiles and the thru-barrier trigger experiment (Table I).

Each device couples a microphone model with a wake-word detector tuned to
its class: far-field smart speakers are the most sensitive, laptops in
between, phones the least.  Siri devices additionally run an embedded
speaker-verification gate, which rejects voices that do not match the
enrolled user — the reason Table I has no random/synthesis entries for
the MacBook and iPhone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.acoustics.microphone import (
    LAPTOP_MIC,
    Microphone,
    MicrophoneSpec,
    PHONE_MIC,
    SMART_SPEAKER_MIC,
)
from repro.va.wakeword import WakeWordDetector, WakeWordResult
from repro.utils.rng import SeedLike, as_generator, child_rng


@dataclass(frozen=True)
class VoiceAssistantSpec:
    """Static description of a VA device.

    Attributes
    ----------
    name:
        Commercial device name.
    wake_word:
        The phrase that activates it.
    mic:
        Microphone model.
    threshold_snr_db:
        Wake-word sensitivity (lower = easier to trigger).
    has_voice_recognition:
        Whether an embedded speaker-verification gate rejects
        non-enrolled voices (Siri devices).
    """

    name: str
    wake_word: str
    mic: MicrophoneSpec
    threshold_snr_db: float
    has_voice_recognition: bool = False


GOOGLE_HOME = VoiceAssistantSpec(
    name="Google Home",
    wake_word="ok google",
    mic=SMART_SPEAKER_MIC,
    threshold_snr_db=3.0,
)

ALEXA_ECHO = VoiceAssistantSpec(
    name="Alexa Echo",
    wake_word="alexa",
    mic=SMART_SPEAKER_MIC,
    threshold_snr_db=5.0,
)

MACBOOK_PRO = VoiceAssistantSpec(
    name="MacBook Pro",
    wake_word="hey siri",
    mic=LAPTOP_MIC,
    threshold_snr_db=10.0,
    has_voice_recognition=True,
)

IPHONE = VoiceAssistantSpec(
    name="iPhone",
    wake_word="hey siri",
    mic=PHONE_MIC,
    threshold_snr_db=14.5,
    has_voice_recognition=True,
)

#: Registry of the paper's four study devices.
VA_DEVICES: Dict[str, VoiceAssistantSpec] = {
    spec.name: spec
    for spec in (GOOGLE_HOME, ALEXA_ECHO, MACBOOK_PRO, IPHONE)
}


class VoiceAssistantDevice:
    """A VA device that can be probed with (attack) sound fields."""

    def __init__(self, spec: VoiceAssistantSpec) -> None:
        self.spec = spec
        self.microphone = Microphone(spec.mic)
        self.wakeword = WakeWordDetector(
            threshold_snr_db=spec.threshold_snr_db
        )

    def try_trigger(
        self,
        sound_field: np.ndarray,
        sample_rate: float,
        voice_matches_user: bool = True,
        rng: SeedLike = None,
    ) -> WakeWordResult:
        """One activation attempt with the sound arriving at the device.

        ``voice_matches_user`` models the speaker-verification gate:
        on Siri devices a non-matching voice never activates the
        assistant regardless of level (Table I's missing entries).
        """
        generator = as_generator(rng)
        recording = self.microphone.capture(
            sound_field, sample_rate, rng=child_rng(generator, "mic")
        )
        result = self.wakeword.evaluate(
            recording, sample_rate, rng=child_rng(generator, "wake")
        )
        if self.spec.has_voice_recognition and not voice_matches_user:
            return WakeWordResult(
                triggered=False,
                probability=0.0,
                snr_db=result.snr_db,
            )
        return result
