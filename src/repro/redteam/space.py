"""Parameterized attack space for adaptive waveform shaping.

The optimizing attacker cannot touch the defense internals — it can
only reshape the sound it plays behind the barrier.  The search space
is therefore a deterministic waveform transform with a small, bounded
parameter vector θ:

* **Spectral-envelope shaping** — per-band gains (dB) over
  log-spaced frequency bands.  The barrier is a frequency-selective
  filter and the detector correlates *vibration-domain* features, so
  moving energy between bands is exactly the lever a thru-barrier
  attacker has.
* **Phoneme-timing emphasis** — per-slice gains (dB) over equal time
  slices of the utterance, linearly interpolated between slice
  centers.  This lets the attacker emphasize the command's sensitive
  phoneme regions (which drive segmentation and the correlation)
  without *warping* time: slice gains preserve the utterance's
  alignment, so the oracle's segmentation stays valid and the
  transform stays differentiable-in-spirit for the surrogate mode.

Absolute level is deliberately **not** a parameter: the scenario
re-calibrates playback to the configured SPL
(:func:`repro.acoustics.spl.scale_to_spl`), so only spectral and
temporal *shape* can move the score — a uniform gain is the identity.
θ = 0 is exactly the static attack (the zero-budget baseline).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.attacks.base import AttackSound
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AttackSpace:
    """Bounded parameterization of the waveform transform.

    Attributes
    ----------
    n_bands:
        Number of log-spaced spectral bands between ``band_low_hz``
        and ``band_high_hz``.
    band_low_hz / band_high_hz:
        Frequency range the spectral gains cover; energy outside is
        left untouched.
    max_band_gain_db:
        Box bound on each spectral gain (±dB).
    n_slices:
        Number of temporal slices across the waveform.
    max_slice_gain_db:
        Box bound on each temporal gain (±dB).
    """

    n_bands: int = 8
    band_low_hz: float = 50.0
    band_high_hz: float = 4000.0
    max_band_gain_db: float = 18.0
    n_slices: int = 4
    max_slice_gain_db: float = 9.0

    def __post_init__(self) -> None:
        if self.n_bands < 1 or self.n_slices < 0:
            raise ConfigurationError(
                "need n_bands >= 1 and n_slices >= 0"
            )
        if not 0 < self.band_low_hz < self.band_high_hz:
            raise ConfigurationError(
                "need 0 < band_low_hz < band_high_hz"
            )
        if self.max_band_gain_db <= 0 or (
            self.n_slices > 0 and self.max_slice_gain_db <= 0
        ):
            raise ConfigurationError("gain bounds must be > 0 dB")

    # ------------------------------------------------------------------
    # Parameter-vector geometry
    # ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """Length of the parameter vector θ."""
        return self.n_bands + self.n_slices

    @property
    def band_edges_hz(self) -> np.ndarray:
        """The ``n_bands + 1`` log-spaced band edges."""
        return np.geomspace(
            self.band_low_hz, self.band_high_hz, self.n_bands + 1
        )

    @property
    def lower_bounds(self) -> np.ndarray:
        """Element-wise lower box bound on θ (dB)."""
        return -self.upper_bounds

    @property
    def upper_bounds(self) -> np.ndarray:
        """Element-wise upper box bound on θ (dB)."""
        return np.concatenate(
            [
                np.full(self.n_bands, self.max_band_gain_db),
                np.full(self.n_slices, self.max_slice_gain_db),
            ]
        )

    def identity(self) -> np.ndarray:
        """θ = 0: the transform that returns the waveform unchanged."""
        return np.zeros(self.dimension)

    def clip(self, params: np.ndarray) -> np.ndarray:
        """Project θ into the box bounds."""
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (self.dimension,):
            raise ConfigurationError(
                f"params must have shape ({self.dimension},), "
                f"got {params.shape}"
            )
        return np.clip(params, self.lower_bounds, self.upper_bounds)

    def random(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform random θ inside the box bounds."""
        return rng.uniform(self.lower_bounds, self.upper_bounds)

    # ------------------------------------------------------------------
    # The waveform transform
    # ------------------------------------------------------------------

    def apply(
        self,
        waveform: np.ndarray,
        sample_rate: float,
        params: np.ndarray,
    ) -> np.ndarray:
        """Apply the θ-parameterized transform to ``waveform``.

        Deterministic (no RNG anywhere) and exactly the identity at
        θ = 0, which is what makes the zero-budget attacker degenerate
        bitwise to the static attack baseline.
        """
        params = self.clip(params)
        if not np.any(params):
            return np.asarray(waveform, dtype=np.float64)
        shaped = np.asarray(waveform, dtype=np.float64)

        band_gains_db = params[: self.n_bands]
        if np.any(band_gains_db):
            spectrum = np.fft.rfft(shaped)
            frequencies = np.fft.rfftfreq(
                shaped.size, d=1.0 / sample_rate
            )
            gain = np.ones_like(frequencies)
            edges = self.band_edges_hz
            for index in range(self.n_bands):
                band = (frequencies >= edges[index]) & (
                    frequencies < edges[index + 1]
                )
                gain[band] = 10.0 ** (band_gains_db[index] / 20.0)
            shaped = np.fft.irfft(spectrum * gain, n=shaped.size)

        slice_gains_db = params[self.n_bands:]
        if slice_gains_db.size and np.any(slice_gains_db):
            # Linear interpolation between slice-center gains keeps the
            # temporal envelope smooth (no clicks at slice boundaries)
            # while preserving the utterance's time alignment.
            centers = (
                (np.arange(self.n_slices) + 0.5) / self.n_slices
            ) * shaped.size
            positions = np.arange(shaped.size)
            envelope_db = np.interp(
                positions, centers, slice_gains_db
            )
            shaped = shaped * 10.0 ** (envelope_db / 20.0)
        return shaped

    def mutate(
        self, attack: AttackSound, params: np.ndarray
    ) -> AttackSound:
        """The θ-shaped variant of a static :class:`AttackSound`."""
        return dataclasses.replace(
            attack,
            waveform=self.apply(
                attack.waveform, attack.sample_rate, params
            ),
            description=(
                f"{attack.description} [redteam-shaped "
                f"|θ|={float(np.linalg.norm(params)):.2f} dB]"
            ),
        )

    def describe(self, params: np.ndarray) -> str:
        """Human-readable summary of θ for reports."""
        params = self.clip(params)
        edges = self.band_edges_hz
        bands = ", ".join(
            f"{edges[i]:.0f}-{edges[i + 1]:.0f}Hz:"
            f"{params[i]:+.1f}dB"
            for i in range(self.n_bands)
        )
        if self.n_slices:
            slices = ", ".join(
                f"t{i}:{params[self.n_bands + i]:+.1f}dB"
                for i in range(self.n_slices)
            )
            return f"bands[{bands}] slices[{slices}]"
        return f"bands[{bands}]"

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe config (checkpoint and report headers)."""
        return {
            "n_bands": self.n_bands,
            "band_low_hz": self.band_low_hz,
            "band_high_hz": self.band_high_hz,
            "max_band_gain_db": self.max_band_gain_db,
            "n_slices": self.n_slices,
            "max_slice_gain_db": self.max_slice_gain_db,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AttackSpace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            n_bands=int(payload["n_bands"]),
            band_low_hz=float(payload["band_low_hz"]),
            band_high_hz=float(payload["band_high_hz"]),
            max_band_gain_db=float(payload["max_band_gain_db"]),
            n_slices=int(payload["n_slices"]),
            max_slice_gain_db=float(payload["max_slice_gain_db"]),
        )
