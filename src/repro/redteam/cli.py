"""``repro redteam`` — adaptive-adversary campaigns from the shell.

Subcommands
-----------
``attack``
    Run one optimizing-attacker campaign against the deployed detector
    (hardened with ``--harden``) and print the static-vs-optimized
    comparison on held-out episodes.
``curve``
    Run both detector arms across a budget grid and print the
    budget-vs-detection-rate robustness table (the headline artifact:
    how much query budget buys the attacker, and how much the
    randomized defenses claw back).
``report``
    Pretty-print a JSON summary previously written with ``--save``.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.errors import ConfigurationError


def add_redteam_parser(subparsers) -> None:
    """Attach the ``redteam`` command tree to the root CLI parser."""
    redteam = subparsers.add_parser(
        "redteam", help="adaptive-adversary optimization campaigns"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--mode", choices=["cmaes", "random", "surrogate"],
        default="cmaes",
        help=(
            "attacker: cmaes / random (gradient-free) or surrogate "
            "(differentiable proxy with gradient-free fallback)"
        ),
    )
    common.add_argument(
        "--attack", dest="attack_kind",
        choices=["random", "replay", "synthesis", "hidden_voice"],
        default="replay",
        help="static attack the adversary starts from",
    )
    common.add_argument(
        "--population", type=int, default=2,
        help="independent attacker restarts (best one wins)",
    )
    common.add_argument(
        "--spl", type=float, default=85.0, metavar="DB",
        help="attack playback level behind the barrier",
    )
    common.add_argument(
        "--bands", type=int, default=8,
        help="spectral-envelope bands in the attack space",
    )
    common.add_argument(
        "--slices", type=int, default=4,
        help="temporal slices in the attack space",
    )
    common.add_argument(
        "--probe-episodes", type=int, default=2,
        help="common-random-number episodes averaged per oracle query",
    )
    common.add_argument(
        "--eval-episodes", type=int, default=24,
        help="held-out episodes per evaluation point",
    )
    common.add_argument(
        "--threshold", type=float, default=None,
        help="detector threshold (default: EER calibration)",
    )
    common.add_argument(
        "--jitter", type=float, default=0.04, metavar="J",
        help="hardened arm: per-session threshold jitter (+-J)",
    )
    common.add_argument(
        "--subset-fraction", type=float, default=0.6, metavar="F",
        help="hardened arm: per-session sensitive-phoneme fraction",
    )
    common.add_argument(
        "--workers", type=int, default=2,
        help=(
            "worker processes for the attacker population "
            "(results are identical for any count)"
        ),
    )
    common.add_argument(
        "--executor", choices=["process", "thread", "inline"],
        default="process",
        help=(
            "runtime executor for multi-worker runs "
            "(results are identical for any kind)"
        ),
    )
    common.add_argument(
        "--save", default=None, metavar="FILE",
        help="also write a JSON summary for `repro redteam report`",
    )
    common.add_argument("--seed", type=int, default=0)
    actions = redteam.add_subparsers(
        dest="redteam_command", required=True
    )

    attack = actions.add_parser(
        "attack",
        help="one optimizing-attacker campaign vs the deployed arm",
        parents=[common],
    )
    attack.add_argument(
        "--budget", type=int, default=120,
        help="oracle queries each population member may spend",
    )
    attack.add_argument(
        "--harden", action="store_true",
        help="deploy the randomized defenses (default: paper detector)",
    )

    curve = actions.add_parser(
        "curve",
        help="budget-vs-detection robustness table, both arms",
        parents=[common],
    )
    curve.add_argument(
        "--budgets", type=int, nargs="+",
        default=[0, 20, 60, 120],
        help="query-budget grid (0 = static attack, always included)",
    )

    report = actions.add_parser(
        "report", help="pretty-print a saved campaign JSON"
    )
    report.add_argument("file", help="JSON written with --save")


def _build_config(
    args: argparse.Namespace, budget: int, hardened: bool
):
    from repro.attacks import AttackKind
    from repro.core.hardening import HardeningConfig
    from repro.redteam.campaign import AttackSpace, RedTeamConfig

    hardening = None
    if hardened:
        hardening = HardeningConfig(
            threshold_jitter=args.jitter,
            subset_fraction=args.subset_fraction,
        )
    return RedTeamConfig(
        mode=args.mode,
        budget=budget,
        population=args.population,
        attack_kind=AttackKind(args.attack_kind),
        spl_db=args.spl,
        space=AttackSpace(n_bands=args.bands, n_slices=args.slices),
        n_probe_episodes=args.probe_episodes,
        n_eval_episodes=args.eval_episodes,
        seed=args.seed,
        threshold=args.threshold,
        hardening=hardening,
        executor=args.executor,
        n_workers=max(args.workers, 1),
    )


def _save(payload, path: Optional[str]) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"saved JSON summary to {path}")


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.redteam.campaign import run_redteam
    from repro.redteam.reporting import format_redteam_result

    config = _build_config(args, args.budget, args.harden)
    print(
        f"Running {config.population} {config.mode} attacker(s), "
        f"budget {config.budget} (this simulates "
        f"~{config.population * config.budget} barrier episodes)..."
    )
    result = run_redteam(config)
    print(format_redteam_result(result))
    _save(result.to_dict(), args.save)
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from repro.redteam.campaign import robustness_curve
    from repro.redteam.reporting import format_curve

    config = _build_config(args, max(args.budgets), hardened=False)
    print(
        f"Running both arms x {config.population} {config.mode} "
        f"attacker(s) to budget {max(args.budgets)}..."
    )
    result = robustness_curve(config, args.budgets)
    print(format_curve(result))
    _save(result.to_dict(), args.save)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise SystemExit(f"error: cannot read {args.file}: {error}") from None
    except json.JSONDecodeError as error:
        raise SystemExit(f"error: {args.file} is not JSON: {error}") from None
    kind = payload.get("kind")
    if kind == "redteam-attack":
        print(
            f"redteam attack: mode={payload['mode']} "
            f"kind={payload['attack_kind']} "
            f"budget={payload['budget']} seed={payload['seed']} "
            f"{'hardened' if payload['hardened'] else 'unhardened'}"
        )
        print(
            f"threshold {payload['threshold']:.4f}; static success "
            f"{payload['static_success_rate'] * 100:.1f}% -> optimized "
            f"{payload['optimized_success_rate'] * 100:.1f}% "
            f"(advantage {payload['advantage'] * 100:.1f}%)"
        )
        print(f"best θ: {payload['best_params']}")
        return 0
    if kind == "redteam-curve":
        print(
            f"redteam curve: mode={payload['mode']} "
            f"kind={payload['attack_kind']} seed={payload['seed']}"
        )
        header = (
            f"{'arm':12} {'budget':>6} {'detect':>8} {'success':>8}"
        )
        print(header)
        for point in payload["points"]:
            print(
                f"{point['arm']:12} {point['budget']:>6} "
                f"{point['detection_rate'] * 100:>7.1f}% "
                f"{point['success_rate'] * 100:>7.1f}%"
            )
        print(
            "advantage: unhardened "
            f"{payload['advantage_unhardened'] * 100:.1f}%, hardened "
            f"{payload['advantage_hardened'] * 100:.1f}%"
        )
        return 0
    raise SystemExit(
        f"error: {args.file} is not a redteam summary (kind={kind!r})"
    )


def cmd_redteam(args: argparse.Namespace) -> int:
    """Dispatch one ``redteam`` subcommand; returns the exit code."""
    handlers = {
        "attack": _cmd_attack,
        "curve": _cmd_curve,
        "report": _cmd_report,
    }
    try:
        return handlers[args.redteam_command](args)
    except ConfigurationError as error:
        raise SystemExit(f"error: {error}") from None
