"""Red-team campaigns: populations of optimizing attackers vs the defense.

The loop the curves come from:

1. **World** — a deterministic scenario (Room A, glass window), a
   static base attack generated on its per-attack RNG stream
   (:func:`repro.attacks.attack_stream`), and an oracle-segmentation
   defense pipeline (no training needed — red-team turnaround matters).
2. **Calibration** — an EER threshold fit on legitimate commands over
   a mixed speaking-condition grid (including the paper's hard
   quiet-and-far corner) vs static attack replays.  Both detector arms
   (hardened and unhardened) deploy the *same* base threshold, so the
   curves isolate the effect of the randomized defenses.
3. **Population** — ``population`` independent attackers per arm, each
   with its own member seed, optimized in parallel through
   :class:`repro.runtime.Runtime` (process → inline ladder).  Each
   attacker drives a budgeted :class:`~repro.redteam.oracle.ScoreOracle`
   and records its full per-query history, so one run to the maximum
   budget yields the best-so-far snapshot at *every* intermediate
   budget on the curve.
4. **Evaluation** — each snapshot θ (and the static θ = 0 baseline) is
   replayed on held-out evaluation episodes against the deployed
   detector; the curve plots attacker budget vs detection rate.

Everything is derived from ``RedTeamConfig.seed``; serial and
process-parallel runs produce bitwise-identical histories.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks import (
    AttackKind,
    AttackScenario,
    AttackSound,
    HiddenVoiceAttack,
    RandomAttack,
    ReplayAttack,
    VoiceSynthesisAttack,
)
from repro.core import calibrate_eer
from repro.core.detector import DetectorConfig
from repro.core.hardening import HardeningConfig
from repro.core.pipeline import DefenseConfig, DefensePipeline
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import ConfigurationError
from repro.eval.rooms import ROOM_A
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus
from repro.redteam.oracle import (
    EvaluationResult,
    OracleConfig,
    ScoreOracle,
)
from repro.redteam.optimizers import OPTIMIZERS, make_optimizer
from repro.redteam.space import AttackSpace
from repro.redteam.surrogate import SurrogateGradientAttacker
from repro.runtime import FallbackPolicy, Runtime
from repro.utils.rng import derive_seed

#: Attacker modes the campaign accepts (gradient-free registry plus the
#: surrogate-gradient attacker).
ATTACKER_MODES = tuple(sorted(OPTIMIZERS)) + (
    SurrogateGradientAttacker.name,
)

#: Default randomized-defense arm used when the caller does not supply
#: one: mild threshold jitter plus a 60 % per-session phoneme subset.
DEFAULT_HARDENING = HardeningConfig(
    threshold_jitter=0.04, subset_fraction=0.6
)

#: Speaking-condition grid (SPL dB, user-to-VA distance m) the
#: legitimate calibration scores pool over — from comfortable to the
#: paper's Fig. 11(c) quiet-and-far failure corner.
LEGIT_CONDITIONS: Tuple[Tuple[float, float], ...] = (
    (70.0, 2.0),
    (65.0, 3.0),
    (60.0, 5.0),
)


@dataclass(frozen=True)
class RedTeamConfig:
    """One red-team campaign's full recipe (picklable).

    Attributes
    ----------
    mode:
        Attacker: ``cmaes`` / ``random`` (gradient-free) or
        ``surrogate`` (proxy ascent with gradient-free fallback).
    budget:
        Oracle queries each population member may spend.
    population:
        Independent attacker restarts (best-of-population wins).
    attack_kind:
        Which static attack the adversary starts from.
    command:
        Target voice command (default: the first VA command).
    spl_db:
        Attack playback level behind the barrier.
    space:
        Attack-space parameterization.
    n_probe_episodes:
        Common-random-number episodes averaged per oracle query.
    n_eval_episodes:
        Held-out episodes per evaluation point.
    seed:
        Root seed; everything below derives from it.
    threshold:
        Detector threshold; ``None`` calibrates at the EER point.
    hardening:
        Randomized defenses of the deployed detector (``None`` = the
        paper's deterministic detector).
    executor / n_workers:
        Runtime placement of the attacker population.
    """

    mode: str = "cmaes"
    budget: int = 120
    population: int = 2
    attack_kind: AttackKind = AttackKind.REPLAY
    command: Optional[str] = None
    spl_db: float = 85.0
    space: AttackSpace = field(default_factory=AttackSpace)
    n_probe_episodes: int = 2
    n_eval_episodes: int = 24
    n_calibration_reps: int = 6
    seed: int = 0
    threshold: Optional[float] = None
    hardening: Optional[HardeningConfig] = None
    executor: str = "process"
    n_workers: int = 2

    def __post_init__(self) -> None:
        if self.mode not in ATTACKER_MODES:
            raise ConfigurationError(
                f"mode must be one of {ATTACKER_MODES}, "
                f"got {self.mode!r}"
            )
        if self.budget < 0:
            raise ConfigurationError("budget must be >= 0")
        if self.population < 1:
            raise ConfigurationError("population must be >= 1")
        if self.n_eval_episodes < 1 or self.n_calibration_reps < 1:
            raise ConfigurationError(
                "need n_eval_episodes >= 1 and n_calibration_reps >= 1"
            )
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")


@dataclass
class RedTeamWorld:
    """The deterministic scenario one campaign plays in."""

    corpus: SyntheticCorpus
    scenario: AttackScenario
    attack: AttackSound
    command: str


def build_world(config: RedTeamConfig) -> RedTeamWorld:
    """Materialize the campaign scenario from the config seed.

    The static base attack comes off its per-attack RNG stream
    (``generate_indexed(seed, 0)``), so every worker process rebuilds
    bitwise the same waveform.
    """
    corpus = SyntheticCorpus(
        n_speakers=4, seed=derive_seed(config.seed, "redteam-corpus")
    )
    victim = corpus.speakers[0]
    adversary = corpus.speakers[1]
    command = config.command or VA_COMMANDS[0]
    kind = config.attack_kind
    if kind == AttackKind.REPLAY:
        generator = ReplayAttack(corpus, victim)
    elif kind == AttackKind.RANDOM:
        generator = RandomAttack(corpus, adversary)
    elif kind == AttackKind.SYNTHESIS:
        generator = VoiceSynthesisAttack(
            corpus,
            victim,
            rng=derive_seed(config.seed, "redteam-synth"),
        )
    else:
        generator = HiddenVoiceAttack(corpus)
    attack = generator.generate_indexed(
        config.seed, 0, command=command
    )
    scenario = AttackScenario(room_config=ROOM_A)
    return RedTeamWorld(
        corpus=corpus,
        scenario=scenario,
        attack=attack,
        command=command,
    )


def build_defense(
    threshold: Optional[float],
    hardening: Optional[HardeningConfig],
) -> DefensePipeline:
    """The deployed pipeline: oracle segmentation, optional hardening.

    Segmentation runs in oracle-alignment mode (an untrained
    :class:`PhonemeSegmenter` only consults its sensitive set), so
    red-team campaigns never pay BLSTM training and the phoneme-subset
    defense acts exactly where it is defined.
    """
    return DefensePipeline(
        segmenter=PhonemeSegmenter(),
        config=DefenseConfig(
            detector=DetectorConfig(threshold=threshold),
            hardening=hardening,
        ),
    )


# ----------------------------------------------------------------------
# Threshold calibration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationOutcome:
    """EER calibration inputs and resulting operating point."""

    threshold: float
    legit_scores: Tuple[float, ...]
    attack_scores: Tuple[float, ...]


def calibrate_detector(config: RedTeamConfig) -> CalibrationOutcome:
    """EER threshold from legit-vs-static-attack score distributions.

    Legitimate scores pool over :data:`LEGIT_CONDITIONS` (the paper's
    comfortable-to-hard speaking grid); attack scores replay the static
    base attack at the campaign's SPL.  Both distributions are scored
    by the *unhardened* pipeline: the deployed threshold is a property
    of the calibration data, shared by both detector arms.
    """
    world = build_world(config)
    pipeline = build_defense(threshold=None, hardening=None)
    legit: List[float] = []
    utterance = world.attack.utterance
    if utterance is None:
        # Hidden-voice attacks carry no aligned utterance; synthesize
        # the victim's legitimate rendition of the command instead.
        utterance = world.corpus.utterance(
            phonemize(world.command),
            speaker=world.corpus.speakers[0],
            text=world.command,
            rng=derive_seed(config.seed, "redteam-legit-utt"),
        )
    for spl_db, distance_m in LEGIT_CONDITIONS:
        for rep in range(config.n_calibration_reps):
            episode = derive_seed(
                config.seed, "redteam-cal-legit", spl_db, distance_m, rep
            )
            va, wearable = world.scenario.legitimate_recordings(
                utterance,
                spl_db=spl_db,
                user_to_va_m=distance_m,
                rng=np.random.default_rng(episode),
            )
            legit.append(
                pipeline.score(
                    va,
                    wearable,
                    rng=derive_seed(episode, "analysis"),
                    oracle_utterance=utterance,
                )
            )
    attack_oracle = ScoreOracle(
        world.attack,
        world.scenario,
        pipeline,
        config.space,
        OracleConfig(
            spl_db=config.spl_db,
            n_probe_episodes=1,
            seed=derive_seed(config.seed, "redteam-cal-attack"),
        ),
    )
    n_attack = 2 * config.n_calibration_reps
    attack_scores = [
        attack_oracle._episode_score(
            config.space.identity(), "calibration", episode
        )
        for episode in range(n_attack)
    ]
    report = calibrate_eer(legit, attack_scores)
    return CalibrationOutcome(
        threshold=float(report.threshold),
        legit_scores=tuple(legit),
        attack_scores=tuple(attack_scores),
    )


# ----------------------------------------------------------------------
# Attacker population units (module-level: process-pool picklable)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttackerUnit:
    """One population member's work order (picklable)."""

    config: RedTeamConfig
    member: int
    threshold: float


@dataclass
class AttackerRun:
    """One population member's full optimization trace (picklable).

    ``history`` holds every (θ, probe score) pair in query order, which
    is what lets a single max-budget run be sliced into best-so-far
    snapshots at every intermediate budget.
    """

    member: int
    mode: str
    history: List[Tuple[List[float], float]]
    queries_used: int
    optimizer_state: Optional[Dict[str, object]] = None
    fell_back: bool = False

    @property
    def best_score(self) -> float:
        """Best probe score over the whole run (``nan`` if empty)."""
        if not self.history:
            return float("nan")
        return max(score for _, score in self.history)

    def best_at_budget(
        self, space: AttackSpace, budget: int
    ) -> Tuple[np.ndarray, Optional[float]]:
        """Best-so-far (θ, probe score) after ``budget`` queries.

        Budget 0 — and any budget before the first query — degenerates
        to the static attack (θ = 0), by construction of the space.
        """
        best_theta = space.identity()
        best_score: Optional[float] = None
        for theta, score in self.history[: max(budget, 0)]:
            if best_score is None or score > best_score:
                best_score = score
                best_theta = np.asarray(theta, dtype=np.float64)
        return best_theta, best_score


def drive_attacker(
    mode: str,
    space: AttackSpace,
    oracle: ScoreOracle,
    budget: int,
    seed: int,
) -> Tuple[
    List[Tuple[List[float], float]], Optional[Dict[str, object]], bool
]:
    """Spend ``budget`` oracle queries under the requested mode.

    Returns the per-query history, the final optimizer checkpoint (for
    the ask/tell modes, when one can be taken), and whether the
    surrogate mode fell back to gradient-free search.
    """
    history: List[Tuple[List[float], float]] = []
    if budget <= 0:
        return history, None, False
    if mode == SurrogateGradientAttacker.name:
        attacker = SurrogateGradientAttacker(space, seed=seed)
        attacker.run(oracle, budget)
        history = [
            (theta.tolist(), score)
            for theta, score in attacker.history
        ]
        return history, None, attacker.trace.fell_back

    optimizer = make_optimizer(mode, space, seed=seed)
    while (oracle.queries_remaining or 0) > 0:
        candidates = optimizer.ask()
        take = candidates[: oracle.queries_remaining]
        scores = [oracle.query(theta) for theta in take]
        history.extend(
            (theta.tolist(), score)
            for theta, score in zip(take, scores)
        )
        if len(take) < len(candidates):
            break  # Budget truncated the generation mid-ask.
        optimizer.tell(candidates, scores)
    state = (
        optimizer.to_state() if optimizer.can_checkpoint else None
    )
    return history, state, False


def optimize_attacker_unit(unit: AttackerUnit) -> AttackerRun:
    """Run one population member against its deployed detector arm."""
    config = unit.config
    world = build_world(config)
    pipeline = build_defense(unit.threshold, config.hardening)
    member_seed = derive_seed(
        config.seed, "redteam-member", config.mode, unit.member
    )
    oracle = ScoreOracle(
        world.attack,
        world.scenario,
        pipeline,
        config.space,
        OracleConfig(
            spl_db=config.spl_db,
            n_probe_episodes=config.n_probe_episodes,
            budget=config.budget,
            seed=member_seed,
        ),
    )
    history, state, fell_back = drive_attacker(
        config.mode, config.space, oracle, config.budget, member_seed
    )
    return AttackerRun(
        member=unit.member,
        mode=config.mode,
        history=history,
        queries_used=oracle.queries_used,
        optimizer_state=state,
        fell_back=fell_back,
    )


def attack_digest_unit(
    payload: Tuple[int, str, int, Optional[str]]
) -> str:
    """SHA-256 of the ``index``-th attack waveform of a kind.

    A provenance/reproducibility probe: because every attack is
    generated on its own :func:`~repro.attacks.attack_stream`, the
    digest is a pure function of ``(seed, kind, index, command)`` —
    the determinism tests map this unit over process and inline
    runtimes and require bitwise-identical answers.
    """
    seed, kind_value, index, command = payload
    corpus = SyntheticCorpus(
        n_speakers=4, seed=derive_seed(seed, "redteam-corpus")
    )
    kind = AttackKind(kind_value)
    if kind == AttackKind.REPLAY:
        generator = ReplayAttack(corpus, corpus.speakers[0])
    elif kind == AttackKind.RANDOM:
        generator = RandomAttack(corpus, corpus.speakers[1])
    elif kind == AttackKind.SYNTHESIS:
        generator = VoiceSynthesisAttack(
            corpus,
            corpus.speakers[0],
            rng=derive_seed(seed, "redteam-synth"),
        )
    else:
        generator = HiddenVoiceAttack(corpus)
    attack = generator.generate_indexed(seed, index, command=command)
    return hashlib.sha256(
        np.ascontiguousarray(attack.waveform, dtype=np.float64).tobytes()
    ).hexdigest()


def _run_population(
    units: Sequence[AttackerUnit],
    executor: str,
    n_workers: int,
) -> List[AttackerRun]:
    """Map attacker units over the runtime ladder, in order."""
    units = list(units)
    kind = "inline" if n_workers == 1 or len(units) == 1 else executor
    runtime = Runtime(
        kind,
        n_workers=min(n_workers, len(units)),
        fallback=FallbackPolicy(ladder=("process", "inline")),
    )
    try:
        return runtime.map_units(optimize_attacker_unit, units)
    finally:
        runtime.shutdown()


# ----------------------------------------------------------------------
# Campaign entry points
# ----------------------------------------------------------------------


@dataclass
class RedTeamResult:
    """Outcome of :func:`run_redteam` (one arm, one budget)."""

    config: RedTeamConfig
    threshold: float
    runs: List[AttackerRun]
    best_member: int
    best_params: np.ndarray
    best_probe_score: float
    static_eval: EvaluationResult
    optimized_eval: EvaluationResult

    @property
    def advantage(self) -> float:
        """Optimized minus static attack success rate (fresh sessions)."""
        return (
            self.optimized_eval.success_rate
            - self.static_eval.success_rate
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary (CLI ``--save`` / ``redteam report``)."""
        return {
            "kind": "redteam-attack",
            "mode": self.config.mode,
            "attack_kind": self.config.attack_kind.value,
            "budget": self.config.budget,
            "population": self.config.population,
            "seed": self.config.seed,
            "spl_db": self.config.spl_db,
            "hardened": self.config.hardening is not None,
            "threshold": self.threshold,
            "space": self.config.space.to_dict(),
            "best_member": self.best_member,
            "best_params": self.best_params.tolist(),
            "best_probe_score": self.best_probe_score,
            "static_success_rate": self.static_eval.success_rate,
            "optimized_success_rate": self.optimized_eval.success_rate,
            "static_mean_score": self.static_eval.mean_score,
            "optimized_mean_score": self.optimized_eval.mean_score,
            "advantage": self.advantage,
            "queries_used": [run.queries_used for run in self.runs],
            "optimizer_states": [
                run.optimizer_state for run in self.runs
            ],
        }


def _evaluation_oracle(
    config: RedTeamConfig,
    world: RedTeamWorld,
    pipeline: DefensePipeline,
) -> ScoreOracle:
    """Budget-free oracle on the held-out evaluation episode stream."""
    return ScoreOracle(
        world.attack,
        world.scenario,
        pipeline,
        config.space,
        OracleConfig(
            spl_db=config.spl_db,
            n_probe_episodes=1,
            budget=None,
            seed=derive_seed(config.seed, "redteam-eval"),
        ),
    )


def resolve_threshold(config: RedTeamConfig) -> float:
    """The deployed threshold: configured, or EER-calibrated."""
    if config.threshold is not None:
        return float(config.threshold)
    return calibrate_detector(config).threshold


def run_redteam(config: RedTeamConfig) -> RedTeamResult:
    """One full red-team attack: optimize, then evaluate held-out."""
    threshold = resolve_threshold(config)
    world = build_world(config)
    units = [
        AttackerUnit(config=config, member=member, threshold=threshold)
        for member in range(config.population)
    ]
    runs = _run_population(units, config.executor, config.n_workers)

    best_member, best_params, best_probe = 0, config.space.identity(), None
    for run in runs:
        theta, score = run.best_at_budget(config.space, config.budget)
        if score is not None and (
            best_probe is None or score > best_probe
        ):
            best_member, best_params, best_probe = (
                run.member,
                theta,
                score,
            )

    deployed = build_defense(threshold, config.hardening)
    oracle = _evaluation_oracle(config, world, deployed)
    static_eval = oracle.evaluate(
        config.space.identity(), config.n_eval_episodes
    )
    optimized_eval = oracle.evaluate(
        best_params, config.n_eval_episodes
    )
    return RedTeamResult(
        config=config,
        threshold=threshold,
        runs=runs,
        best_member=best_member,
        best_params=best_params,
        best_probe_score=(
            float("nan") if best_probe is None else best_probe
        ),
        static_eval=static_eval,
        optimized_eval=optimized_eval,
    )


@dataclass(frozen=True)
class CurvePoint:
    """One (arm, budget) cell of the robustness curve."""

    arm: str
    budget: int
    probe_score: Optional[float]
    mean_score: float
    detection_rate: float
    success_rate: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "arm": self.arm,
            "budget": self.budget,
            "probe_score": self.probe_score,
            "mean_score": self.mean_score,
            "detection_rate": self.detection_rate,
            "success_rate": self.success_rate,
        }


@dataclass
class CurveResult:
    """Budget-vs-detection-rate curves, hardened vs unhardened."""

    config: RedTeamConfig
    threshold: float
    hardening: HardeningConfig
    budgets: Tuple[int, ...]
    points: List[CurvePoint]

    def arm_points(self, arm: str) -> List[CurvePoint]:
        """This arm's cells in ascending budget order."""
        return sorted(
            (point for point in self.points if point.arm == arm),
            key=lambda point: point.budget,
        )

    def success_rate(self, arm: str, budget: int) -> float:
        for point in self.points:
            if point.arm == arm and point.budget == budget:
                return point.success_rate
        raise KeyError(f"no curve point for {arm!r} at budget {budget}")

    def advantage(self, arm: str) -> float:
        """Best-over-budgets success gain vs the static baseline."""
        cells = self.arm_points(arm)
        static = cells[0].success_rate  # Budget 0 row.
        return max(point.success_rate for point in cells) - static

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary (CLI ``--save`` / ``redteam report``)."""
        return {
            "kind": "redteam-curve",
            "mode": self.config.mode,
            "attack_kind": self.config.attack_kind.value,
            "population": self.config.population,
            "seed": self.config.seed,
            "spl_db": self.config.spl_db,
            "threshold": self.threshold,
            "space": self.config.space.to_dict(),
            "hardening": {
                "threshold_jitter": self.hardening.threshold_jitter,
                "subset_fraction": self.hardening.subset_fraction,
                "min_subset": self.hardening.min_subset,
            },
            "budgets": list(self.budgets),
            "points": [point.to_dict() for point in self.points],
            "advantage_unhardened": self.advantage("unhardened"),
            "advantage_hardened": self.advantage("hardened"),
        }


def robustness_curve(
    config: RedTeamConfig,
    budgets: Sequence[int],
) -> CurveResult:
    """Budget-vs-detection-rate table for both detector arms.

    Each arm's population runs **once**, to the maximum budget; the
    per-query histories are then sliced into best-so-far snapshots at
    every requested budget and each snapshot is evaluated on held-out
    episodes against that arm's deployed detector.  Budget 0 is the
    static attack by construction (θ = 0).
    """
    budgets = tuple(sorted({int(budget) for budget in budgets}))
    if not budgets:
        raise ConfigurationError("budgets must be non-empty")
    if budgets[0] != 0:
        budgets = (0,) + budgets
    max_budget = budgets[-1]

    threshold = resolve_threshold(config)
    hardening = config.hardening or DEFAULT_HARDENING
    arms: List[Tuple[str, Optional[HardeningConfig]]] = [
        ("unhardened", None),
        ("hardened", hardening),
    ]
    units: List[AttackerUnit] = []
    for _, arm_hardening in arms:
        arm_config = dataclasses.replace(
            config, budget=max_budget, hardening=arm_hardening
        )
        units.extend(
            AttackerUnit(
                config=arm_config, member=member, threshold=threshold
            )
            for member in range(config.population)
        )
    runs = _run_population(units, config.executor, config.n_workers)

    world = build_world(config)
    points: List[CurvePoint] = []
    for arm_index, (arm, arm_hardening) in enumerate(arms):
        arm_runs = runs[
            arm_index
            * config.population : (arm_index + 1)
            * config.population
        ]
        deployed = build_defense(threshold, arm_hardening)
        oracle = _evaluation_oracle(config, world, deployed)
        for budget in budgets:
            best_theta, best_probe = config.space.identity(), None
            for run in arm_runs:
                theta, score = run.best_at_budget(config.space, budget)
                if score is not None and (
                    best_probe is None or score > best_probe
                ):
                    best_theta, best_probe = theta, score
            evaluation = oracle.evaluate(
                best_theta, config.n_eval_episodes
            )
            points.append(
                CurvePoint(
                    arm=arm,
                    budget=budget,
                    probe_score=best_probe,
                    mean_score=evaluation.mean_score,
                    detection_rate=evaluation.detection_rate,
                    success_rate=evaluation.success_rate,
                )
            )
    return CurveResult(
        config=config,
        threshold=threshold,
        hardening=hardening,
        budgets=budgets,
        points=points,
    )
