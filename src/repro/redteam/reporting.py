"""Plain-text reports for red-team campaigns and robustness curves."""

from __future__ import annotations

import math
from typing import List

from repro.eval.reporting import format_table
from repro.redteam.campaign import CurveResult, RedTeamResult


def _rate(value: float) -> str:
    return f"{value * 100:.1f}%"


def format_redteam_result(result: RedTeamResult) -> str:
    """Render one :func:`~repro.redteam.campaign.run_redteam` outcome."""
    config = result.config
    arm = "hardened" if config.hardening is not None else "unhardened"
    lines = [
        (
            f"redteam attack: mode={config.mode} "
            f"kind={config.attack_kind.value} arm={arm} "
            f"budget={config.budget} population={config.population} "
            f"seed={config.seed}"
        ),
        (
            f"deployed threshold {result.threshold:.4f}, attack SPL "
            f"{config.spl_db:.0f} dB, {config.n_eval_episodes} held-out "
            f"eval episodes"
        ),
    ]
    rows = [
        (
            "static (θ=0)",
            "-",
            f"{result.static_eval.mean_score:.4f}",
            _rate(result.static_eval.detection_rate),
            _rate(result.static_eval.success_rate),
        ),
        (
            f"optimized (member {result.best_member})",
            (
                "-"
                if math.isnan(result.best_probe_score)
                else f"{result.best_probe_score:.4f}"
            ),
            f"{result.optimized_eval.mean_score:.4f}",
            _rate(result.optimized_eval.detection_rate),
            _rate(result.optimized_eval.success_rate),
        ),
    ]
    lines.append(
        format_table(
            ["attack", "probe score", "eval score", "detected", "success"],
            rows,
        )
    )
    lines.append(
        f"attacker advantage: {_rate(result.advantage)} "
        f"(optimized - static success rate)"
    )
    fell_back = [run.member for run in result.runs if run.fell_back]
    if fell_back:
        lines.append(
            "surrogate fell back to gradient-free for member(s) "
            + ", ".join(str(member) for member in fell_back)
        )
    lines.append("best θ: " + config.space.describe(result.best_params))
    return "\n".join(lines)


def format_curve(result: CurveResult) -> str:
    """Render a robustness curve: budget vs detection, both arms."""
    config = result.config
    hardening = result.hardening
    lines = [
        (
            f"redteam robustness curve: mode={config.mode} "
            f"kind={config.attack_kind.value} "
            f"population={config.population} seed={config.seed}"
        ),
        (
            f"deployed threshold {result.threshold:.4f}; hardened arm: "
            f"jitter ±{hardening.threshold_jitter:.3f}, phoneme subset "
            f"{hardening.subset_fraction * 100:.0f}% "
            f"(min {hardening.min_subset})"
        ),
    ]
    rows: List[tuple] = []
    for budget in result.budgets:
        cells = {
            arm: next(
                point
                for point in result.points
                if point.arm == arm and point.budget == budget
            )
            for arm in ("unhardened", "hardened")
        }
        rows.append(
            (
                budget,
                _rate(cells["unhardened"].detection_rate),
                _rate(cells["unhardened"].success_rate),
                _rate(cells["hardened"].detection_rate),
                _rate(cells["hardened"].success_rate),
            )
        )
    lines.append(
        format_table(
            [
                "budget",
                "unhardened detect",
                "unhardened success",
                "hardened detect",
                "hardened success",
            ],
            rows,
        )
    )
    lines.append(
        "attacker advantage (best success - static success): "
        f"unhardened {_rate(result.advantage('unhardened'))}, "
        f"hardened {_rate(result.advantage('hardened'))}"
    )
    return "\n".join(lines)
