"""Black-box score oracle wrapping the barrier/sensing simulation.

The attacker's view of the defense: submit a parameter vector θ, hear
back the 2-D correlation score the deployed pipeline computed for the
θ-shaped attack sound played behind the barrier.  Everything inside —
barrier physics, cross-domain sensing, segmentation, hardening — is
opaque; the oracle boundary is exactly the deployed system's public
behaviour, which is what makes red-team numbers honest.

Two episode regimes matter:

* **Probe episodes** (``query``) use *fixed* per-oracle episode seeds —
  common random numbers — so the optimizer sees a smooth objective
  instead of chasing simulation noise.  Every ``query`` counts against
  the attacker's budget.
* **Evaluation episodes** (``evaluate``) use *held-out* episode seeds
  the optimizer never saw, measuring how the optimized θ generalizes
  to fresh sessions (fresh noise, fresh hardening draws).  Evaluation
  is the defender's measurement and does not touch the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.attacks.base import AttackSound
from repro.attacks.scenario import AttackScenario
from repro.core.pipeline import DefensePipeline
from repro.errors import BudgetExceededError, ConfigurationError
from repro.redteam.space import AttackSpace
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class OracleConfig:
    """Query regime of a :class:`ScoreOracle`.

    Attributes
    ----------
    spl_db:
        Playback level of the attack behind the barrier.  Red-team
        runs default to a loud attacker (85 dB) — the contested
        operating point where shaping can actually move the score.
    n_probe_episodes:
        Fixed common-random-number episodes averaged per query.
    budget:
        Maximum number of queries; ``None`` means unlimited.  The
        budget is the curve axis: detection rate vs how many oracle
        calls the attacker may spend.
    seed:
        Base seed for the probe and evaluation episode streams.
    """

    spl_db: float = 85.0
    n_probe_episodes: int = 2
    budget: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_probe_episodes < 1:
            raise ConfigurationError("n_probe_episodes must be >= 1")
        if self.budget is not None and self.budget < 0:
            raise ConfigurationError("budget must be >= 0 or None")


@dataclass(frozen=True)
class EvaluationResult:
    """Held-out evaluation of one θ against the deployed detector."""

    scores: List[float]
    detected: List[bool]

    @property
    def n_episodes(self) -> int:
        return len(self.scores)

    @property
    def mean_score(self) -> float:
        return float(np.mean(self.scores))

    @property
    def detection_rate(self) -> float:
        """Fraction of fresh sessions that flagged the attack."""
        return float(np.mean(self.detected))

    @property
    def success_rate(self) -> float:
        """Fraction of fresh sessions the attack slipped through."""
        return 1.0 - self.detection_rate


class ScoreOracle:
    """Budgeted black-box oracle over the deployed defense pipeline.

    Parameters
    ----------
    attack:
        The static base attack the adversary starts from.
    scenario:
        Room/barrier/device layout the attack is played in.
    pipeline:
        The deployed defense (hardened or not).  For detection-rate
        evaluation its detector needs a calibrated threshold.
    space:
        Attack-space parameterization θ lives in.
    config:
        Query regime (SPL, probe episodes, budget, seed).
    """

    def __init__(
        self,
        attack: AttackSound,
        scenario: AttackScenario,
        pipeline: DefensePipeline,
        space: AttackSpace,
        config: Optional[OracleConfig] = None,
    ) -> None:
        self.attack = attack
        self.scenario = scenario
        self.pipeline = pipeline
        self.space = space
        self.config = config or OracleConfig()
        self._queries_used = 0

    @property
    def queries_used(self) -> int:
        """Oracle queries charged against the budget so far."""
        return self._queries_used

    @property
    def queries_remaining(self) -> Optional[int]:
        """Budget left, or ``None`` when unlimited."""
        if self.config.budget is None:
            return None
        return self.config.budget - self._queries_used

    def query(self, params: np.ndarray) -> float:
        """Mean probe score of θ (counts against the budget).

        Averages the deployed pipeline's correlation score over the
        oracle's fixed probe episodes.  Raises
        :class:`BudgetExceededError` once the budget is spent — the
        optimizer drivers use this as their termination signal.
        """
        remaining = self.queries_remaining
        if remaining is not None and remaining <= 0:
            raise BudgetExceededError(
                f"attacker budget of {self.config.budget} oracle "
                f"queries is exhausted"
            )
        self._queries_used += 1
        scores = [
            self._episode_score(params, "probe", episode)
            for episode in range(self.config.n_probe_episodes)
        ]
        return float(np.mean(scores))

    def evaluate(
        self, params: np.ndarray, n_episodes: int
    ) -> EvaluationResult:
        """Held-out evaluation of θ on fresh sessions (budget-free).

        Runs the θ-shaped attack through ``n_episodes`` evaluation
        episodes whose seeds are disjoint from every probe episode, and
        collects the deployed detector's verdicts.  This is the
        defender's measurement — the number the robustness curves
        plot — so it never consumes attacker budget.
        """
        if self.pipeline.config.detector.threshold is None:
            raise ConfigurationError(
                "evaluate needs a calibrated detector threshold; "
                "probe-only oracles can still query scores"
            )
        scores: List[float] = []
        detected: List[bool] = []
        for episode in range(n_episodes):
            verdict = self._episode_verdict(params, "eval", episode)
            scores.append(verdict.score)
            detected.append(bool(verdict.is_attack))
        return EvaluationResult(scores=scores, detected=detected)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _episode_verdict(
        self, params: np.ndarray, phase: str, episode: int
    ):
        """One full session: shape, play thru barrier, analyze."""
        shaped = self.space.mutate(self.attack, params)
        episode_seed = derive_seed(
            self.config.seed, "redteam-episode", phase, episode
        )
        va, wearable = self.scenario.attack_recordings(
            shaped,
            spl_db=self.config.spl_db,
            rng=np.random.default_rng(
                derive_seed(episode_seed, "recordings")
            ),
        )
        return self.pipeline.analyze(
            va,
            wearable,
            rng=derive_seed(episode_seed, "analysis"),
            oracle_utterance=shaped.utterance,
        )

    def _episode_score(
        self, params: np.ndarray, phase: str, episode: int
    ) -> float:
        return self._episode_verdict(params, phase, episode).score
