"""Surrogate-gradient attacker: fit a cheap proxy, ascend it, verify.

The gradient-free modes treat every oracle call as equally expensive.
This mode spends a warm-up slice of the budget on random probes, fits
a ridge-regularized quadratic proxy of the score surface

    ŝ(θ) = w₀ + w·θ + v·θ²   (diagonal quadratic, closed-form fit)

and then ascends the proxy's analytic gradient from the best probe.
Each ascent proposal is verified with one real oracle query; the
**transfer gap** |ŝ(θ) − s(θ)| tells the attacker whether its proxy
still describes the real surface.  When the gap exceeds the tolerance,
the proxy has stopped transferring — the attacker falls back to the
gradient-free optimizer for the remaining budget (seeded from its best
point so far), exactly the behaviour an adaptive adversary would
implement and the behaviour ISSUE 8's mode (b) specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.redteam.space import AttackSpace
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class SurrogateConfig:
    """Knobs of the surrogate-gradient attacker.

    Attributes
    ----------
    warmup_fraction:
        Fraction of the budget spent on random probes that train the
        proxy (at least ``2 × dimension + 1`` probes are needed for
        the quadratic fit to be determined).
    learning_rate:
        Ascent step size in dB along the normalized proxy gradient.
    ascent_steps:
        Proxy-gradient steps taken between oracle verifications.
    transfer_tolerance:
        Maximum |proxy − oracle| score discrepancy before the proxy is
        declared non-transferring and the attacker falls back to
        gradient-free search.
    ridge:
        L2 regularization of the proxy fit.
    """

    warmup_fraction: float = 0.35
    learning_rate: float = 2.0
    ascent_steps: int = 3
    transfer_tolerance: float = 0.12
    ridge: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.warmup_fraction < 1.0:
            raise ConfigurationError(
                "warmup_fraction must lie in (0, 1)"
            )
        if self.learning_rate <= 0 or self.ascent_steps < 1:
            raise ConfigurationError(
                "need learning_rate > 0 and ascent_steps >= 1"
            )
        if self.transfer_tolerance <= 0 or self.ridge < 0:
            raise ConfigurationError(
                "need transfer_tolerance > 0 and ridge >= 0"
            )


class QuadraticProxy:
    """Ridge-fit diagonal-quadratic model of the score surface."""

    def __init__(self, space: AttackSpace, ridge: float) -> None:
        self.space = space
        self.ridge = float(ridge)
        self._weights: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self._weights is not None

    def _design(self, thetas: np.ndarray) -> np.ndarray:
        return np.hstack(
            [np.ones((thetas.shape[0], 1)), thetas, thetas**2]
        )

    def fit(
        self, thetas: List[np.ndarray], scores: List[float]
    ) -> None:
        """Closed-form ridge regression on (θ, score) pairs."""
        design = self._design(np.stack(thetas))
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._weights = np.linalg.solve(
            gram, design.T @ np.asarray(scores, dtype=np.float64)
        )

    def predict(self, theta: np.ndarray) -> float:
        """ŝ(θ) under the fitted proxy."""
        if self._weights is None:
            raise ConfigurationError("proxy is not fitted")
        return float(
            (self._design(theta[None, :]) @ self._weights)[0]
        )

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        """Analytic ∇ŝ(θ) — the whole point of the differentiable proxy."""
        if self._weights is None:
            raise ConfigurationError("proxy is not fitted")
        dim = self.space.dimension
        linear = self._weights[1 : dim + 1]
        quadratic = self._weights[dim + 1 :]
        return linear + 2.0 * quadratic * theta


@dataclass
class SurrogateTrace:
    """What the surrogate attacker did with its budget (for reports)."""

    warmup_queries: int = 0
    ascent_queries: int = 0
    fallback_queries: int = 0
    fell_back: bool = False
    max_transfer_gap: float = 0.0


class SurrogateGradientAttacker:
    """Budgeted attacker: proxy ascent with gradient-free fallback.

    Drives a :class:`~repro.redteam.oracle.ScoreOracle` directly
    (unlike the ask/tell optimizers, it decides per-query what to
    spend), tracking best-so-far across warm-up, ascent, and any
    fallback phase.
    """

    name = "surrogate"

    def __init__(
        self,
        space: AttackSpace,
        seed: int = 0,
        config: Optional[SurrogateConfig] = None,
    ) -> None:
        self.space = space
        self.seed = int(seed)
        self.config = config or SurrogateConfig()
        self.trace = SurrogateTrace()
        self.best_params = space.identity()
        self.best_score = -np.inf
        self.history: List[Tuple[np.ndarray, float]] = []

    def _note(self, theta: np.ndarray, score: float) -> None:
        self.history.append((np.array(theta), float(score)))
        if score > self.best_score:
            self.best_score = float(score)
            self.best_params = np.array(theta, dtype=np.float64)

    def run(self, oracle, budget: int) -> None:
        """Spend up to ``budget`` oracle queries optimizing θ.

        Phase 1 (warm-up) probes random θ; phase 2 fits the proxy and
        alternates proxy-gradient ascent with single-query
        verification; a transfer gap beyond tolerance triggers phase 3,
        handing the remaining budget to a
        :class:`~repro.redteam.optimizers.CmaEsOptimizer` centred on
        the best point found so far.
        """
        from repro.redteam.optimizers import CmaEsOptimizer

        if budget <= 0:
            return
        config = self.config
        dim = self.space.dimension
        min_fit = 2 * dim + 1
        warmup = min(
            budget,
            max(min_fit, int(round(config.warmup_fraction * budget))),
        )
        rng = np.random.default_rng(
            derive_seed(self.seed, "surrogate-warmup")
        )
        thetas: List[np.ndarray] = [self.space.identity()]
        thetas += [self.space.random(rng) for _ in range(warmup - 1)]
        for theta in thetas:
            self._note(theta, oracle.query(theta))
            self.trace.warmup_queries += 1

        spent = warmup
        if spent >= budget or len(self.history) < min_fit:
            return

        proxy = QuadraticProxy(self.space, config.ridge)
        theta = np.array(self.best_params)
        while spent < budget:
            proxy.fit(
                [pair[0] for pair in self.history],
                [pair[1] for pair in self.history],
            )
            for _ in range(config.ascent_steps):
                gradient = proxy.gradient(theta)
                norm = float(np.linalg.norm(gradient))
                if norm < 1e-12:
                    break
                theta = self.space.clip(
                    theta + config.learning_rate * gradient / norm
                )
            predicted = proxy.predict(theta)
            actual = oracle.query(theta)
            spent += 1
            self.trace.ascent_queries += 1
            self._note(theta, actual)
            gap = abs(predicted - actual)
            self.trace.max_transfer_gap = max(
                self.trace.max_transfer_gap, gap
            )
            if gap > config.transfer_tolerance:
                # The proxy no longer transfers to the real surface:
                # hand the rest of the budget to gradient-free search
                # centred on the best point so far.
                self.trace.fell_back = True
                fallback = CmaEsOptimizer(
                    self.space,
                    seed=derive_seed(self.seed, "surrogate-fallback"),
                )
                fallback.mean = np.array(self.best_params)
                while spent < budget:
                    candidates = fallback.ask()
                    take = candidates[: budget - spent]
                    scores = [oracle.query(c) for c in take]
                    spent += len(take)
                    self.trace.fallback_queries += len(take)
                    for candidate, score in zip(take, scores):
                        self._note(candidate, score)
                    if len(take) == len(candidates):
                        fallback.tell(candidates, scores)
                return
            # Proxy still transferring: restart ascent from the best
            # point (the verified query just joined the training set).
            theta = np.array(self.best_params)
