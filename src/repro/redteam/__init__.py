"""Adaptive-adversary red-team suite for the thru-barrier defense.

``repro.redteam`` treats the deployed barrier/sensing pipeline as a
black-box score oracle and runs budgeted optimizing attackers against
it — gradient-free (CMA-ES, random search) over a bounded
spectral-envelope / phoneme-timing shaping space, plus a
surrogate-gradient mode that fits a differentiable proxy and falls
back when the proxy stops transferring.  Campaigns pit attacker
populations against hardened and unhardened detector arms and produce
budget-vs-detection-rate robustness curves.
"""

from repro.redteam.campaign import (
    ATTACKER_MODES,
    DEFAULT_HARDENING,
    AttackerRun,
    AttackerUnit,
    CalibrationOutcome,
    CurvePoint,
    CurveResult,
    RedTeamConfig,
    RedTeamResult,
    RedTeamWorld,
    attack_digest_unit,
    build_defense,
    build_world,
    calibrate_detector,
    drive_attacker,
    optimize_attacker_unit,
    resolve_threshold,
    robustness_curve,
    run_redteam,
)
from repro.redteam.oracle import (
    EvaluationResult,
    OracleConfig,
    ScoreOracle,
)
from repro.redteam.optimizers import (
    OPTIMIZERS,
    CmaEsOptimizer,
    Optimizer,
    RandomSearchOptimizer,
    default_popsize,
    make_optimizer,
    optimizer_from_state,
)
from repro.redteam.reporting import (
    format_curve,
    format_redteam_result,
)
from repro.redteam.space import AttackSpace
from repro.redteam.surrogate import (
    QuadraticProxy,
    SurrogateConfig,
    SurrogateGradientAttacker,
    SurrogateTrace,
)

__all__ = [
    "ATTACKER_MODES",
    "DEFAULT_HARDENING",
    "OPTIMIZERS",
    "AttackSpace",
    "AttackerRun",
    "AttackerUnit",
    "CalibrationOutcome",
    "CmaEsOptimizer",
    "CurvePoint",
    "CurveResult",
    "EvaluationResult",
    "OracleConfig",
    "Optimizer",
    "QuadraticProxy",
    "RandomSearchOptimizer",
    "RedTeamConfig",
    "RedTeamResult",
    "RedTeamWorld",
    "ScoreOracle",
    "SurrogateConfig",
    "SurrogateGradientAttacker",
    "SurrogateTrace",
    "attack_digest_unit",
    "build_defense",
    "build_world",
    "calibrate_detector",
    "default_popsize",
    "drive_attacker",
    "format_curve",
    "format_redteam_result",
    "make_optimizer",
    "optimize_attacker_unit",
    "optimizer_from_state",
    "resolve_threshold",
    "robustness_curve",
    "run_redteam",
]
