"""Gradient-free optimizers for the black-box attacker.

Both optimizers speak the ask/tell protocol: ``ask()`` proposes one
generation of candidate θ vectors (clipped into the attack-space box),
``tell(candidates, scores)`` feeds the oracle's answers back.  The
driver loop (:mod:`repro.redteam.campaign`) owns the oracle and the
budget; the optimizers own only search state.

Determinism and checkpointing are structural, not bolted on: every
random draw comes from a generator derived from
``(seed, "gen", generation)``, so the candidate stream is a pure
function of the optimizer's JSON-safe state dict.  ``to_state`` /
``from_state`` round-trip mid-run and the continued run is bitwise
identical to an uninterrupted one.

:class:`CmaEsOptimizer` is a compact numpy implementation of the
standard (μ/μ_w, λ)-CMA-ES (Hansen's tutorial parameterization):
weighted recombination, cumulative step-size adaptation, rank-one plus
rank-μ covariance updates.  No third-party dependency — the container
has none to offer.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.redteam.space import AttackSpace
from repro.utils.rng import derive_seed


class Optimizer:
    """Ask/tell optimizer over an :class:`AttackSpace` (maximizing)."""

    #: Registry name used by configs, checkpoints, and the CLI.
    name: str = "optimizer"

    def __init__(self, space: AttackSpace, seed: int = 0) -> None:
        self.space = space
        self.seed = int(seed)
        self.generation = 0
        self.best_params = space.identity()
        #: Best oracle score seen so far; -inf until the first tell.
        self.best_score = -math.inf

    # -- protocol ------------------------------------------------------

    def ask(self) -> List[np.ndarray]:  # pragma: no cover
        raise NotImplementedError

    def tell(
        self,
        candidates: Sequence[np.ndarray],
        scores: Sequence[float],
    ) -> None:
        """Record oracle answers; subclasses extend with search state."""
        if len(candidates) != len(scores):
            raise ConfigurationError(
                "tell needs one score per candidate"
            )
        for candidate, score in zip(candidates, scores):
            if score > self.best_score:
                self.best_score = float(score)
                self.best_params = np.array(candidate, dtype=np.float64)
        self.generation += 1

    @property
    def can_checkpoint(self) -> bool:
        """Whether the optimizer is between generations.

        CMA-ES cannot snapshot between ``ask`` and ``tell`` (the
        proposals are in flight); the driver checks here before calling
        :meth:`to_state` after a partial, budget-truncated generation.
        """
        return getattr(self, "_pending", None) is None

    def _generation_rng(self) -> np.random.Generator:
        """The draw stream of the *current* generation.

        Keyed on ``(seed, "gen", generation)`` so resuming from a
        checkpoint replays the exact candidate sequence an
        uninterrupted run would produce.
        """
        return np.random.default_rng(
            derive_seed(self.seed, self.name, "gen", self.generation)
        )

    # -- checkpointing -------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot of the search state."""
        return {
            "name": self.name,
            "seed": self.seed,
            "space": self.space.to_dict(),
            "generation": self.generation,
            "best_params": self.best_params.tolist(),
            "best_score": (
                None if math.isinf(self.best_score) else self.best_score
            ),
        }

    def _restore_base(self, state: Dict[str, object]) -> None:
        self.generation = int(state["generation"])
        self.best_params = np.asarray(
            state["best_params"], dtype=np.float64
        )
        best = state["best_score"]
        self.best_score = -math.inf if best is None else float(best)


class RandomSearchOptimizer(Optimizer):
    """Uniform random search inside the box bounds.

    The honest baseline for the curve: each generation draws
    ``popsize`` independent uniform candidates; the best-so-far is a
    running maximum.  Strong black-box results must beat it.
    """

    name = "random"

    def __init__(
        self,
        space: AttackSpace,
        seed: int = 0,
        popsize: Optional[int] = None,
    ) -> None:
        super().__init__(space, seed=seed)
        self.popsize = int(
            popsize
            if popsize is not None
            else default_popsize(space.dimension)
        )
        if self.popsize < 1:
            raise ConfigurationError("popsize must be >= 1")

    def ask(self) -> List[np.ndarray]:
        rng = self._generation_rng()
        return [self.space.random(rng) for _ in range(self.popsize)]

    def to_state(self) -> Dict[str, object]:
        state = super().to_state()
        state["popsize"] = self.popsize
        return state

    @classmethod
    def from_state(
        cls, state: Dict[str, object]
    ) -> "RandomSearchOptimizer":
        optimizer = cls(
            AttackSpace.from_dict(dict(state["space"])),
            seed=int(state["seed"]),
            popsize=int(state["popsize"]),
        )
        optimizer._restore_base(state)
        return optimizer


class CmaEsOptimizer(Optimizer):
    """(μ/μ_w, λ)-CMA-ES restricted to the attack-space box.

    Maximizes the oracle score; proposals outside the box are clipped
    (the box is generous relative to the search scale, so clipping
    bias stays negligible).  All state — mean, step size, covariance,
    evolution paths — serializes to a JSON-safe dict.
    """

    name = "cmaes"

    def __init__(
        self,
        space: AttackSpace,
        seed: int = 0,
        popsize: Optional[int] = None,
        sigma0: Optional[float] = None,
    ) -> None:
        super().__init__(space, seed=seed)
        dim = space.dimension
        self.popsize = int(
            popsize
            if popsize is not None
            else default_popsize(dim)
        )
        if self.popsize < 2:
            raise ConfigurationError("CMA-ES popsize must be >= 2")
        # A third of the (symmetric) box half-width: wide enough to
        # reach the bounds within a few generations, narrow enough not
        # to waste the first generations on pure clipping.
        self.sigma = float(
            sigma0
            if sigma0 is not None
            else np.mean(space.upper_bounds) / 3.0
        )
        self.mean = space.identity()
        self.cov = np.eye(dim)
        self.path_sigma = np.zeros(dim)
        self.path_cov = np.zeros(dim)

        # Standard strategy parameters (Hansen's tutorial).
        mu = self.popsize // 2
        weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        self._weights = weights / weights.sum()
        self._mu_eff = 1.0 / np.sum(self._weights**2)
        self._c_sigma = (self._mu_eff + 2.0) / (dim + self._mu_eff + 5.0)
        self._d_sigma = (
            1.0
            + 2.0
            * max(0.0, math.sqrt((self._mu_eff - 1.0) / (dim + 1.0)) - 1.0)
            + self._c_sigma
        )
        self._c_cov_path = (4.0 + self._mu_eff / dim) / (
            dim + 4.0 + 2.0 * self._mu_eff / dim
        )
        self._c_rank1 = 2.0 / ((dim + 1.3) ** 2 + self._mu_eff)
        self._c_rank_mu = min(
            1.0 - self._c_rank1,
            2.0
            * (self._mu_eff - 2.0 + 1.0 / self._mu_eff)
            / ((dim + 2.0) ** 2 + self._mu_eff),
        )
        self._chi_n = math.sqrt(dim) * (
            1.0 - 1.0 / (4.0 * dim) + 1.0 / (21.0 * dim**2)
        )
        self._pending: Optional[List[np.ndarray]] = None

    # -- protocol ------------------------------------------------------

    def ask(self) -> List[np.ndarray]:
        rng = self._generation_rng()
        eigenvalues, eigenvectors = np.linalg.eigh(self.cov)
        eigenvalues = np.maximum(eigenvalues, 1e-20)
        transform = eigenvectors * np.sqrt(eigenvalues)
        raw = [
            self.mean
            + self.sigma
            * transform @ rng.standard_normal(self.space.dimension)
            for _ in range(self.popsize)
        ]
        # Keep the *unclipped* proposals for the update (the strategy's
        # internal geometry), hand the clipped ones to the oracle.
        self._pending = raw
        return [self.space.clip(candidate) for candidate in raw]

    def tell(
        self,
        candidates: Sequence[np.ndarray],
        scores: Sequence[float],
    ) -> None:
        if self._pending is None or len(candidates) != len(self._pending):
            raise ConfigurationError(
                "tell must follow ask with the same candidates"
            )
        dim = self.space.dimension
        order = np.argsort(scores)[::-1]  # maximize
        mu = self._weights.size
        selected = np.stack(
            [self._pending[index] for index in order[:mu]]
        )
        old_mean = self.mean
        self.mean = self._weights @ selected

        # Cumulative step-size adaptation.
        eigenvalues, eigenvectors = np.linalg.eigh(self.cov)
        eigenvalues = np.maximum(eigenvalues, 1e-20)
        inv_sqrt = (
            eigenvectors
            @ np.diag(1.0 / np.sqrt(eigenvalues))
            @ eigenvectors.T
        )
        mean_shift = (self.mean - old_mean) / self.sigma
        self.path_sigma = (
            1.0 - self._c_sigma
        ) * self.path_sigma + math.sqrt(
            self._c_sigma * (2.0 - self._c_sigma) * self._mu_eff
        ) * (inv_sqrt @ mean_shift)

        path_norm = float(np.linalg.norm(self.path_sigma))
        h_sigma = float(
            path_norm
            / math.sqrt(
                1.0
                - (1.0 - self._c_sigma)
                ** (2 * (self.generation + 1))
            )
            < (1.4 + 2.0 / (dim + 1.0)) * self._chi_n
        )
        self.path_cov = (
            1.0 - self._c_cov_path
        ) * self.path_cov + h_sigma * math.sqrt(
            self._c_cov_path * (2.0 - self._c_cov_path) * self._mu_eff
        ) * mean_shift

        # Rank-one + rank-μ covariance update.
        deviations = (selected - old_mean) / self.sigma
        rank_mu = (
            deviations.T * self._weights
        ) @ deviations
        correction = (1.0 - h_sigma) * self._c_cov_path * (
            2.0 - self._c_cov_path
        )
        self.cov = (
            (1.0 - self._c_rank1 - self._c_rank_mu) * self.cov
            + self._c_rank1
            * (
                np.outer(self.path_cov, self.path_cov)
                + correction * self.cov
            )
            + self._c_rank_mu * rank_mu
        )
        # Numerical symmetry guard.
        self.cov = (self.cov + self.cov.T) / 2.0

        self.sigma *= math.exp(
            (self._c_sigma / self._d_sigma)
            * (path_norm / self._chi_n - 1.0)
        )
        self._pending = None
        super().tell(candidates, scores)

    # -- checkpointing -------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        if self._pending is not None:
            raise ConfigurationError(
                "cannot checkpoint between ask and tell; finish the "
                "generation first"
            )
        state = super().to_state()
        state.update(
            popsize=self.popsize,
            sigma=self.sigma,
            mean=self.mean.tolist(),
            cov=self.cov.tolist(),
            path_sigma=self.path_sigma.tolist(),
            path_cov=self.path_cov.tolist(),
        )
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CmaEsOptimizer":
        optimizer = cls(
            AttackSpace.from_dict(dict(state["space"])),
            seed=int(state["seed"]),
            popsize=int(state["popsize"]),
        )
        optimizer._restore_base(state)
        optimizer.sigma = float(state["sigma"])
        optimizer.mean = np.asarray(state["mean"], dtype=np.float64)
        optimizer.cov = np.asarray(state["cov"], dtype=np.float64)
        optimizer.path_sigma = np.asarray(
            state["path_sigma"], dtype=np.float64
        )
        optimizer.path_cov = np.asarray(
            state["path_cov"], dtype=np.float64
        )
        return optimizer


#: Optimizer registry: config/CLI mode name → class.
OPTIMIZERS = {
    RandomSearchOptimizer.name: RandomSearchOptimizer,
    CmaEsOptimizer.name: CmaEsOptimizer,
}


def default_popsize(dimension: int) -> int:
    """The standard CMA-ES population heuristic, 4 + ⌊3 ln d⌋."""
    return 4 + int(3 * math.log(max(dimension, 1)))


def make_optimizer(
    mode: str, space: AttackSpace, seed: int = 0
) -> Optimizer:
    """Construct an optimizer by registry name."""
    try:
        factory = OPTIMIZERS[mode]
    except KeyError:
        raise ConfigurationError(
            f"unknown optimizer {mode!r}; "
            f"choose from {sorted(OPTIMIZERS)}"
        ) from None
    return factory(space, seed=seed)


def optimizer_from_state(state: Dict[str, object]) -> Optimizer:
    """Rebuild any registered optimizer from its checkpoint dict."""
    name = str(state.get("name"))
    try:
        factory = OPTIMIZERS[name]
    except KeyError:
        raise ConfigurationError(
            f"checkpoint names unknown optimizer {name!r}"
        ) from None
    return factory.from_state(state)
