"""End-to-end defense pipeline — the library's main entry point.

Composes the whole §IV-C architecture: cross-device synchronization →
sensitive-phoneme segmentation on the VA recording → segment extraction
from both recordings → cross-domain sensing on the wearable → vibration
feature extraction → 2-D-correlation attack detection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import CorrelationDetector, DetectorConfig
from repro.core.features import FeatureConfig, VibrationFeatureExtractor
from repro.core.segmentation import (
    PhonemeSegmenter,
    concatenate_segments,
)
from repro.core.sync import SyncConfig, synchronize_recordings
from repro.errors import ConfigurationError, SignalError
from repro.phonemes.corpus import Utterance
from repro.sensing.cross_domain import CrossDomainSensor
from repro.utils.rng import SeedLike, as_generator, child_rng


@dataclass
class DefenseConfig:
    """Pipeline-level configuration.

    Attributes
    ----------
    audio_rate:
        Audio sampling rate of the device recordings.
    detector:
        Detector (threshold) configuration.
    features:
        Vibration feature configuration.
    sync:
        Synchronization configuration.
    min_audio_s:
        Minimum concatenated-segment duration required for a reliable
        verdict; shorter material falls back to the full recording.
    wearer_moving:
        Simulate the user wearing (and moving) the watch during the
        replay: body-motion interference (0.3-3.5 Hz) is added to the
        accelerometer readings, which the feature extractor's high-pass
        and artifact crop must absorb.
    """

    audio_rate: float = 16_000.0
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    features: FeatureConfig = field(default_factory=FeatureConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    min_audio_s: float = 0.25
    wearer_moving: bool = False

    def __post_init__(self) -> None:
        if self.audio_rate <= 0:
            raise ConfigurationError("audio_rate must be > 0")
        if self.min_audio_s < 0:
            raise ConfigurationError("min_audio_s must be >= 0")


@dataclass(frozen=True)
class DefenseVerdict:
    """Outcome of analyzing one voice command.

    Attributes
    ----------
    score:
        2-D correlation between the devices' vibration features (higher
        = more likely legitimate).
    is_attack:
        Thresholded decision, or ``None`` when no threshold configured.
    n_segments:
        Number of sensitive-phoneme segments used.
    analyzed_duration_s:
        Total duration of audio material fed to cross-domain sensing.
    sync_delay_s:
        Estimated cross-device recording offset that was corrected.
    """

    score: float
    is_attack: Optional[bool]
    n_segments: int
    analyzed_duration_s: float
    sync_delay_s: float


#: Stage keys reported by :meth:`DefensePipeline.analyze_timed`, in
#: execution order.  The serving layer aggregates latency percentiles
#: per stage under these names.
PIPELINE_STAGES: Tuple[str, ...] = (
    "sync",
    "segment",
    "sense",
    "features",
    "detect",
)


@dataclass
class BatchAnalysisItem:
    """One request of a :meth:`DefensePipeline.analyze_batch` call.

    Mirrors the keyword arguments of :meth:`DefensePipeline.analyze`
    so a micro-batch is simply a list of what would otherwise be N
    sequential calls.
    """

    va_audio: np.ndarray
    wearable_audio: np.ndarray
    rng: SeedLike = None
    oracle_utterance: Optional[Utterance] = None
    skip_segmentation: bool = False


@dataclass
class BatchAnalysisOutcome:
    """Per-request result of :meth:`DefensePipeline.analyze_batch`.

    Exactly one of ``verdict`` / ``error`` is set: a failing request
    records its exception here instead of raising, so one bad request
    never aborts its batch-mates (error isolation).
    """

    verdict: Optional[DefenseVerdict] = None
    timings: Dict[str, float] = field(default_factory=dict)
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        """Whether this request produced a verdict."""
        return self.error is None and self.verdict is not None


class DefensePipeline:
    """Training-free thru-barrier attack detection system.

    Parameters
    ----------
    segmenter:
        A (trained) sensitive-phoneme segmenter, or ``None`` to analyze
        full recordings (equivalent to the no-selection baseline).
    sensor:
        Cross-domain sensor of the user's wearable.
    config:
        Pipeline configuration.

    Examples
    --------
    >>> pipeline = DefensePipeline(segmenter=None)
    >>> # verdict = pipeline.analyze(va_rec, wearable_rec, rng=0)
    """

    def __init__(
        self,
        segmenter: Optional[PhonemeSegmenter] = None,
        sensor: Optional[CrossDomainSensor] = None,
        config: Optional[DefenseConfig] = None,
    ) -> None:
        self.segmenter = segmenter
        self.sensor = sensor or CrossDomainSensor()
        self.config = config or DefenseConfig()
        self.detector = CorrelationDetector(self.config.detector)
        self._extractor = VibrationFeatureExtractor(
            self.config.features, sample_rate=self.sensor.vibration_rate
        )

    @classmethod
    def warm(
        cls,
        seed: Optional[int] = None,
        sensor: Optional[CrossDomainSensor] = None,
        config: Optional[DefenseConfig] = None,
        n_speakers: int = 8,
        n_per_phoneme: int = 12,
        epochs: int = 12,
        store=None,
    ) -> "DefensePipeline":
        """Pipeline backed by a cached (memoized) trained segmenter.

        Repeated calls with the same training recipe share one trained
        bidirectional-LSTM instance instead of retraining per pipeline
        — the construction path for serving workers and repeated CLI
        invocations.  Scores are bitwise identical to a pipeline built
        around a fresh ``train_default_segmenter(seed)`` because
        training is deterministic in the seed.

        ``store`` (an :class:`repro.store.ArtifactStore` or a store
        directory) additionally persists the trained weights across
        processes: in-process memo misses load from the store instead
        of retraining, and a cold store is populated exactly once even
        under concurrent starts.
        """
        from repro.core.segmentation import default_segmenter

        return cls(
            segmenter=default_segmenter(
                seed=seed,
                n_speakers=n_speakers,
                n_per_phoneme=n_per_phoneme,
                epochs=epochs,
                store=store,
            ),
            sensor=sensor,
            config=config,
        )

    def analyze(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        rng: SeedLike = None,
        oracle_utterance: Optional[Utterance] = None,
        skip_segmentation: bool = False,
    ) -> DefenseVerdict:
        """Analyze one voice command captured by both devices.

        Parameters
        ----------
        va_audio / wearable_audio:
            The two devices' recordings at ``config.audio_rate``.
        rng:
            Randomness for the cross-domain sensing replays.
        oracle_utterance:
            When given (ablation/testing), segments come from the
            utterance's ground-truth alignment instead of the BRNN.
        skip_segmentation:
            Bypass phoneme segmentation and analyze the full recordings
            (the fallback path short material already takes).  The
            serving layer uses this to degrade gracefully when a
            request's deadline has expired.

        Returns
        -------
        DefenseVerdict
        """
        verdict, _ = self.analyze_timed(
            va_audio,
            wearable_audio,
            rng=rng,
            oracle_utterance=oracle_utterance,
            skip_segmentation=skip_segmentation,
        )
        return verdict

    # ``verify`` is the serving layer's vocabulary for the same
    # operation: one request in, one verdict out.
    verify = analyze

    def analyze_timed(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        rng: SeedLike = None,
        oracle_utterance: Optional[Utterance] = None,
        skip_segmentation: bool = False,
    ) -> Tuple[DefenseVerdict, Dict[str, float]]:
        """:meth:`analyze`, plus per-stage wall-clock seconds.

        The returned dict has one entry per :data:`PIPELINE_STAGES`
        key.  Timing instrumentation never affects the verdict: the
        stages consume the same RNG streams in the same order as
        :meth:`analyze`.
        """
        timings: Dict[str, float] = {}
        generator = as_generator(rng)
        config = self.config

        start = time.perf_counter()
        va_aligned, wearable_aligned, delay_s = synchronize_recordings(
            va_audio, wearable_audio, config.audio_rate, config.sync
        )
        timings["sync"] = time.perf_counter() - start

        start = time.perf_counter()
        if skip_segmentation:
            segments: List[Tuple[float, float]] = []
        else:
            segments = self._find_segments(va_aligned, oracle_utterance)
        verdict = self._finish_analysis(
            va_aligned,
            wearable_aligned,
            delay_s,
            segments,
            generator,
            timings,
            segment_start=start,
        )
        return verdict, timings

    def analyze_batch(
        self,
        items: Sequence[BatchAnalysisItem],
        dtype=None,
    ) -> List[BatchAnalysisOutcome]:
        """Analyze a micro-batch with one vectorized segmentation pass.

        The BLSTM segmentation stage — the pipeline's hottest — is
        hoisted out of the per-request loop: every batch member that
        needs model-based segmentation contributes its (synced) VA
        recording to a single
        :meth:`~repro.core.segmentation.PhonemeSegmenter.segments_batch`
        call.  Everything request-specific (synchronization, oracle
        segmentation, material extraction, cross-domain sensing,
        feature extraction, detection) still runs per request with the
        request's own RNG stream, so each verdict is bitwise identical
        to a sequential :meth:`analyze` call with the same arguments
        (``dtype=None``; the opt-in float32 compute path trades that
        bitwise guarantee for speed).

        Per-request semantics preserved:

        * **stage timings** — per-request dicts with the usual
          :data:`PIPELINE_STAGES` keys; the shared batched
          segmentation cost is amortized equally across the requests
          that used it;
        * **deadline checks** — callers mark expired requests with
          ``skip_segmentation=True`` exactly as on the sequential
          path;
        * **error isolation** — a failing request records its
          exception in its own :class:`BatchAnalysisOutcome` and
          never disturbs batch-mates; if the *batched* segmentation
          call itself fails, segmentation falls back to per-request
          :meth:`~repro.core.segmentation.PhonemeSegmenter.segments`
          calls so healthy requests still complete.
        """
        items = list(items)
        outcomes = [BatchAnalysisOutcome() for _ in items]
        synced: List[Optional[Tuple[np.ndarray, np.ndarray, float]]] = []

        for index, item in enumerate(items):
            start = time.perf_counter()
            try:
                aligned = synchronize_recordings(
                    item.va_audio,
                    item.wearable_audio,
                    self.config.audio_rate,
                    self.config.sync,
                )
            except Exception as error:  # noqa: BLE001 — isolated per item
                outcomes[index].error = error
                synced.append(None)
                continue
            outcomes[index].timings["sync"] = time.perf_counter() - start
            synced.append(aligned)

        # One vectorized BLSTM forward for every request that needs
        # model-based segmentation.
        batched_indices = [
            index
            for index, item in enumerate(items)
            if synced[index] is not None
            and not item.skip_segmentation
            and item.oracle_utterance is None
            and self.segmenter is not None
        ]
        segment_lists: Dict[int, List[Tuple[float, float]]] = {}
        shared_segment_s = 0.0
        if batched_indices:
            start = time.perf_counter()
            try:
                found = self.segmenter.segments_batch(
                    [synced[index][0] for index in batched_indices],
                    dtype=dtype,
                )
                segment_lists.update(zip(batched_indices, found))
            except Exception:  # noqa: BLE001 — isolate per request
                for index in batched_indices:
                    try:
                        segment_lists[index] = self.segmenter.segments(
                            synced[index][0]
                        )
                    except Exception as error:  # noqa: BLE001
                        outcomes[index].error = error
            shared_segment_s = (
                time.perf_counter() - start
            ) / len(batched_indices)

        for index, item in enumerate(items):
            outcome = outcomes[index]
            if outcome.error is not None or synced[index] is None:
                continue
            va_aligned, wearable_aligned, delay_s = synced[index]
            start = time.perf_counter()
            try:
                if index in segment_lists:
                    segments = segment_lists[index]
                    shared_s = shared_segment_s
                else:
                    shared_s = 0.0
                    if item.skip_segmentation:
                        segments = []
                    else:
                        segments = self._find_segments(
                            va_aligned, item.oracle_utterance
                        )
                outcome.verdict = self._finish_analysis(
                    va_aligned,
                    wearable_aligned,
                    delay_s,
                    segments,
                    as_generator(item.rng),
                    outcome.timings,
                    segment_start=start,
                    segment_shared_s=shared_s,
                )
            except Exception as error:  # noqa: BLE001 — isolated
                outcome.error = error
        return outcomes

    def score(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        rng: SeedLike = None,
        oracle_utterance: Optional[Utterance] = None,
    ) -> float:
        """Correlation score only (used by the evaluation harness)."""
        return self.analyze(
            va_audio, wearable_audio, rng=rng,
            oracle_utterance=oracle_utterance,
        ).score

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _finish_analysis(
        self,
        va_aligned: np.ndarray,
        wearable_aligned: np.ndarray,
        delay_s: float,
        segments: Sequence[Tuple[float, float]],
        generator,
        timings: Dict[str, float],
        segment_start: float,
        segment_shared_s: float = 0.0,
    ) -> DefenseVerdict:
        """Material extraction through detection, shared by the
        sequential and batched paths.

        ``segment_start`` is when this request's segmentation stage
        began (the ``segment`` timing covers segment finding plus
        material extraction, as it always has); ``segment_shared_s``
        adds this request's amortized share of a batched segmentation
        forward.  The stages consume the same RNG streams in the same
        order as :meth:`analyze`, so timing attribution never affects
        the verdict.
        """
        config = self.config
        va_material, wearable_material, n_segments = self._extract_material(
            va_aligned, wearable_aligned, segments
        )
        timings["segment"] = segment_shared_s + (
            time.perf_counter() - segment_start
        )

        start = time.perf_counter()
        vibration_va = self.sensor.convert(
            va_material, config.audio_rate,
            rng=child_rng(generator, "replay-va"),
            include_body_motion=config.wearer_moving,
        )
        vibration_wearable = self.sensor.convert(
            wearable_material, config.audio_rate,
            rng=child_rng(generator, "replay-wearable"),
            include_body_motion=config.wearer_moving,
        )
        timings["sense"] = time.perf_counter() - start

        start = time.perf_counter()
        features_va = self._extractor.extract(vibration_va)
        features_wearable = self._extractor.extract(vibration_wearable)
        timings["features"] = time.perf_counter() - start

        start = time.perf_counter()
        score = self.detector.score(features_va, features_wearable)
        is_attack: Optional[bool] = None
        if config.detector.threshold is not None:
            is_attack = self.detector.decide(score)
        timings["detect"] = time.perf_counter() - start

        return DefenseVerdict(
            score=score,
            is_attack=is_attack,
            n_segments=n_segments,
            analyzed_duration_s=va_material.size / config.audio_rate,
            sync_delay_s=delay_s,
        )

    def _find_segments(
        self,
        va_audio: np.ndarray,
        oracle_utterance: Optional[Utterance],
    ) -> List[Tuple[float, float]]:
        if self.segmenter is None:
            return []
        if oracle_utterance is not None:
            # Oracle segments are timed relative to the utterance start;
            # locate that start inside the (synced) VA recording first.
            offset_s = self._locate_utterance(va_audio, oracle_utterance)
            return [
                (start + offset_s, end + offset_s)
                for start, end in self.segmenter.oracle_segments(
                    oracle_utterance
                )
            ]
        return self.segmenter.segments(va_audio)

    def _locate_utterance(
        self,
        va_audio: np.ndarray,
        utterance: Utterance,
    ) -> float:
        """Offset (s) of the utterance onset within the VA recording."""
        from repro.dsp.correlate import cross_correlation_delay

        max_lag = min(
            va_audio.size - 1,
            int(round(1.5 * self.config.audio_rate)),
        )
        delay = cross_correlation_delay(
            va_audio, utterance.waveform, max_lag
        )
        return max(0.0, -delay / self.config.audio_rate)

    def _extract_material(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        segments: Sequence[Tuple[float, float]],
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Cut sensitive segments from both recordings (VA's timeline).

        Falls back to the full recordings when segmentation yields too
        little material for a stable correlation.
        """
        config = self.config
        if segments:
            va_material = concatenate_segments(
                va_audio, segments, config.audio_rate
            )
            wearable_material = concatenate_segments(
                wearable_audio, segments, config.audio_rate
            )
            if va_material.size >= config.min_audio_s * config.audio_rate:
                return va_material, wearable_material, len(segments)
        if va_audio.size == 0 or wearable_audio.size == 0:
            raise SignalError("cannot analyze empty recordings")
        return np.asarray(va_audio), np.asarray(wearable_audio), 0
