"""End-to-end defense pipeline — the library's main entry point.

Composes the whole §IV-C architecture: cross-device synchronization →
sensitive-phoneme segmentation on the VA recording → segment extraction
from both recordings → cross-domain sensing on the wearable → vibration
feature extraction → 2-D-correlation attack detection.

The architecture is realized as a line of composable stage objects
(:mod:`repro.core.stages`); this module drives them through one loop
that owns wall-clock timing, fallback annotation, and
:class:`~repro.runtime.events.StageEvent` emission.  Events reach both
the pipeline's own ``sink`` (when wired) and any ambient sink installed
with :func:`repro.runtime.capture_stage_events`, so shared pipeline
instances stay observable without mutable per-call state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import CorrelationDetector, DetectorConfig
from repro.core.features import FeatureConfig, VibrationFeatureExtractor
from repro.core.hardening import HardeningConfig
from repro.core.segmentation import concatenate_segments
from repro.core.segmenter import Segmenter
from repro.core.stages import (
    Stage,
    StageContext,
    default_stages,
    min_material_samples,
    stages_after_sync,
)
from repro.core.sync import SyncConfig
from repro.errors import ConfigurationError, SignalError
from repro.phonemes.corpus import Utterance
from repro.runtime.events import StageEvent, StageEventSink, emit_event
from repro.sensing.cross_domain import CrossDomainSensor
from repro.utils.rng import SeedLike, as_generator, child_rng


@dataclass
class DefenseConfig:
    """Pipeline-level configuration.

    Attributes
    ----------
    audio_rate:
        Audio sampling rate of the device recordings.
    detector:
        Detector (threshold) configuration.
    features:
        Vibration feature configuration.
    sync:
        Synchronization configuration.
    min_audio_s:
        Minimum concatenated-segment duration required for a reliable
        verdict; shorter material falls back to the full recording.
    wearer_moving:
        Simulate the user wearing (and moving) the watch during the
        replay: body-motion interference (0.3-3.5 Hz) is added to the
        accelerometer readings, which the feature extractor's high-pass
        and artifact crop must absorb.
    hardening:
        Optional randomized defenses against adaptive attackers
        (per-session threshold jitter and phoneme-subset selection;
        see :class:`~repro.core.hardening.HardeningConfig`).  ``None``
        — the default — runs the deterministic paper detector and
        consumes no extra RNG draws, so existing determinism contracts
        are unchanged.
    """

    audio_rate: float = 16_000.0
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    features: FeatureConfig = field(default_factory=FeatureConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    min_audio_s: float = 0.25
    wearer_moving: bool = False
    hardening: Optional[HardeningConfig] = None

    def __post_init__(self) -> None:
        if self.audio_rate <= 0:
            raise ConfigurationError("audio_rate must be > 0")
        if self.min_audio_s < 0:
            raise ConfigurationError("min_audio_s must be >= 0")
        if (
            self.hardening is not None
            and self.hardening.randomizes_threshold
            and self.detector.threshold is None
        ):
            raise ConfigurationError(
                "hardening.threshold_jitter requires a calibrated "
                "detector threshold (DetectorConfig.threshold)"
            )


@dataclass(frozen=True)
class DefenseVerdict:
    """Outcome of analyzing one voice command.

    Attributes
    ----------
    score:
        2-D correlation between the devices' vibration features (higher
        = more likely legitimate).
    is_attack:
        Thresholded decision, or ``None`` when no threshold configured.
    n_segments:
        Number of sensitive-phoneme segments used.
    analyzed_duration_s:
        Total duration of audio material fed to cross-domain sensing.
    sync_delay_s:
        Estimated cross-device recording offset that was corrected.
    """

    score: float
    is_attack: Optional[bool]
    n_segments: int
    analyzed_duration_s: float
    sync_delay_s: float


#: Stage keys reported by :meth:`DefensePipeline.analyze_timed`, in
#: execution order.  The serving layer aggregates latency percentiles
#: per stage under these names.
PIPELINE_STAGES: Tuple[str, ...] = (
    "sync",
    "segment",
    "sense",
    "features",
    "detect",
)


@dataclass
class BatchAnalysisItem:
    """One request of a :meth:`DefensePipeline.analyze_batch` call.

    Mirrors the keyword arguments of :meth:`DefensePipeline.analyze`
    so a micro-batch is simply a list of what would otherwise be N
    sequential calls.
    """

    va_audio: np.ndarray
    wearable_audio: np.ndarray
    rng: SeedLike = None
    oracle_utterance: Optional[Utterance] = None
    skip_segmentation: bool = False


@dataclass
class BatchAnalysisOutcome:
    """Per-request result of :meth:`DefensePipeline.analyze_batch`.

    Exactly one of ``verdict`` / ``error`` is set: a failing request
    records its exception here instead of raising, so one bad request
    never aborts its batch-mates (error isolation).  ``events`` carries
    the request's :class:`StageEvent` stream (timings, fallbacks, and
    — for a failed request — the error class of the stage that raised).
    """

    verdict: Optional[DefenseVerdict] = None
    timings: Dict[str, float] = field(default_factory=dict)
    error: Optional[Exception] = None
    events: List[StageEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether this request produced a verdict."""
        return self.error is None and self.verdict is not None


class DefensePipeline:
    """Training-free thru-barrier attack detection system.

    Parameters
    ----------
    segmenter:
        Any :class:`~repro.core.segmenter.Segmenter` backend — the
        paper's trained BLSTM
        (:class:`~repro.core.segmentation.PhonemeSegmenter`), the
        training-free rate-distortion backend
        (:class:`~repro.core.rate_distortion.RateDistortionSegmenter`),
        or ``None`` to analyze full recordings (equivalent to the
        no-selection baseline).
    sensor:
        Cross-domain sensor of the user's wearable.
    config:
        Pipeline configuration.
    sink:
        Optional :class:`StageEventSink` receiving every stage event
        this instance emits (in addition to any ambient sink).

    Examples
    --------
    >>> pipeline = DefensePipeline(segmenter=None)
    >>> # verdict = pipeline.analyze(va_rec, wearable_rec, rng=0)
    """

    def __init__(
        self,
        segmenter: Optional[Segmenter] = None,
        sensor: Optional[CrossDomainSensor] = None,
        config: Optional[DefenseConfig] = None,
        sink: Optional[StageEventSink] = None,
    ) -> None:
        self.segmenter = segmenter
        self.sensor = sensor or CrossDomainSensor()
        self.config = config or DefenseConfig()
        self.sink = sink
        self.detector = CorrelationDetector(self.config.detector)
        self._extractor = VibrationFeatureExtractor(
            self.config.features, sample_rate=self.sensor.vibration_rate
        )

    @classmethod
    def warm(
        cls,
        seed: Optional[int] = None,
        sensor: Optional[CrossDomainSensor] = None,
        config: Optional[DefenseConfig] = None,
        n_speakers: int = 8,
        n_per_phoneme: int = 12,
        epochs: int = 12,
        store=None,
    ) -> "DefensePipeline":
        """Pipeline backed by a cached (memoized) trained segmenter.

        Repeated calls with the same training recipe share one trained
        bidirectional-LSTM instance instead of retraining per pipeline
        — the construction path for serving workers and repeated CLI
        invocations.  Scores are bitwise identical to a pipeline built
        around a fresh ``train_default_segmenter(seed)`` because
        training is deterministic in the seed.

        ``store`` (an :class:`repro.store.ArtifactStore` or a store
        directory) additionally persists the trained weights across
        processes: in-process memo misses load from the store instead
        of retraining, and a cold store is populated exactly once even
        under concurrent starts.
        """
        from repro.core.segmentation import default_segmenter

        return cls(
            segmenter=default_segmenter(
                seed=seed,
                n_speakers=n_speakers,
                n_per_phoneme=n_per_phoneme,
                epochs=epochs,
                store=store,
            ),
            sensor=sensor,
            config=config,
        )

    def analyze(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        rng: SeedLike = None,
        oracle_utterance: Optional[Utterance] = None,
        skip_segmentation: bool = False,
    ) -> DefenseVerdict:
        """Analyze one voice command captured by both devices.

        Parameters
        ----------
        va_audio / wearable_audio:
            The two devices' recordings at ``config.audio_rate``.
        rng:
            Randomness for the cross-domain sensing replays.
        oracle_utterance:
            When given (ablation/testing), segments come from the
            utterance's ground-truth alignment instead of the BRNN.
        skip_segmentation:
            Bypass phoneme segmentation and analyze the full recordings
            (the fallback path short material already takes).  The
            serving layer uses this to degrade gracefully when a
            request's deadline has expired.

        Returns
        -------
        DefenseVerdict
        """
        verdict, _ = self.analyze_timed(
            va_audio,
            wearable_audio,
            rng=rng,
            oracle_utterance=oracle_utterance,
            skip_segmentation=skip_segmentation,
        )
        return verdict

    # ``verify`` is the serving layer's vocabulary for the same
    # operation: one request in, one verdict out.
    verify = analyze

    def analyze_timed(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        rng: SeedLike = None,
        oracle_utterance: Optional[Utterance] = None,
        skip_segmentation: bool = False,
    ) -> Tuple[DefenseVerdict, Dict[str, float]]:
        """:meth:`analyze`, plus per-stage wall-clock seconds.

        The returned dict has one entry per :data:`PIPELINE_STAGES`
        key.  Timing instrumentation never affects the verdict: the
        stages consume the same RNG streams in the same order as
        :meth:`analyze`.
        """
        ctx = StageContext(
            pipeline=self,
            va_audio=va_audio,
            wearable_audio=wearable_audio,
            generator=as_generator(rng),
            oracle_utterance=oracle_utterance,
            skip_segmentation=skip_segmentation,
        )
        timings: Dict[str, float] = {}
        self._run_stages(ctx, default_stages(), timings, [])
        return self._verdict_from(ctx), timings

    def analyze_batch(
        self,
        items: Sequence[BatchAnalysisItem],
        dtype=None,
    ) -> List[BatchAnalysisOutcome]:
        """Analyze a micro-batch with vectorized segmentation and sensing.

        The two hottest stages are hoisted out of the per-request loop:

        * **segmentation** — every batch member that needs model-based
          segmentation contributes its (synced) VA recording to a
          single
          :meth:`~repro.core.segmentation.PhonemeSegmenter.segments_batch`
          call;
        * **cross-domain sensing** — after material extraction, the
          whole batch's ``replay-va`` conversions become one
          :meth:`~repro.sensing.cross_domain.CrossDomainSensor.convert_batch`
          call, and likewise the ``replay-wearable`` conversions.  Each
          request's child RNG streams are derived in the sequential
          order first, so every vibration signal is bitwise identical
          to the sequential path.

        Everything request-specific (synchronization, oracle
        segmentation, material extraction, feature extraction,
        detection) still runs per request — through the same stage
        objects as :meth:`analyze` — with the request's own RNG stream,
        so each verdict is bitwise identical to a sequential
        :meth:`analyze` call with the same arguments (``dtype=None``;
        the opt-in float32 compute path trades that bitwise guarantee
        for speed).

        Per-request semantics preserved:

        * **stage timings** — per-request dicts with the usual
          :data:`PIPELINE_STAGES` keys; the shared batched
          segmentation and sensing costs are amortized equally across
          the requests that used them;
        * **deadline checks** — callers mark expired requests with
          ``skip_segmentation=True`` exactly as on the sequential
          path;
        * **error isolation** — a failing request records its
          exception in its own :class:`BatchAnalysisOutcome` and
          never disturbs batch-mates; if a *batched* call itself
          fails, that stage falls back to per-request execution
          (sequential ``segments`` / ``convert`` with the
          already-derived streams) so healthy requests still complete.
        """
        items = list(items)
        outcomes = [BatchAnalysisOutcome() for _ in items]
        contexts: List[Optional[StageContext]] = []
        sync_stage = tuple(
            s for s in default_stages() if s.name == "sync"
        )

        for index, item in enumerate(items):
            ctx = StageContext(
                pipeline=self,
                va_audio=item.va_audio,
                wearable_audio=item.wearable_audio,
                generator=as_generator(item.rng),
                oracle_utterance=item.oracle_utterance,
                skip_segmentation=item.skip_segmentation,
            )
            outcome = outcomes[index]
            try:
                self._run_stages(
                    ctx, sync_stage, outcome.timings, outcome.events
                )
            except Exception as error:  # noqa: BLE001 — isolated per item
                outcome.error = error
                contexts.append(None)
                continue
            contexts.append(ctx)

        # One vectorized BLSTM forward for every request that needs
        # model-based segmentation.
        batched_indices = [
            index
            for index, item in enumerate(items)
            if contexts[index] is not None
            and not item.skip_segmentation
            and item.oracle_utterance is None
            and self.segmenter is not None
        ]
        segment_lists: Dict[int, List[Tuple[float, float]]] = {}
        shared_segment_s = 0.0
        if batched_indices:
            batch_fallback: Optional[str] = None
            start = time.perf_counter()
            try:
                found = self.segmenter.segments_batch(
                    [
                        contexts[index].va_aligned
                        for index in batched_indices
                    ],
                    dtype=dtype,
                )
                segment_lists.update(zip(batched_indices, found))
            except Exception:  # noqa: BLE001 — isolate per request
                batch_fallback = "per-request"
                for index in batched_indices:
                    try:
                        segment_lists[index] = self.segmenter.segments(
                            contexts[index].va_aligned
                        )
                    except Exception as error:  # noqa: BLE001
                        outcomes[index].error = error
            batch_wall = time.perf_counter() - start
            shared_segment_s = batch_wall / len(batched_indices)
            self._emit(
                StageEvent(
                    stage="segment_batch",
                    wall_s=batch_wall,
                    batch_size=len(batched_indices),
                    fallback=batch_fallback,
                    scope="batch",
                )
            )

        # Per-request segmentation / material extraction (respecting the
        # pre-seeded segment lists), so the sensing hoist below sees the
        # final audio material of every healthy request.
        segment_stages = tuple(
            s for s in stages_after_sync() if s.name == "segment"
        )
        post_segment_stages = tuple(
            s for s in stages_after_sync() if s.name != "segment"
        )
        for index in range(len(items)):
            outcome = outcomes[index]
            ctx = contexts[index]
            if outcome.error is not None or ctx is None:
                continue
            if index in segment_lists:
                ctx.segments = segment_lists[index]
                ctx.extra_stage_s["segment"] = shared_segment_s
            try:
                self._run_stages(
                    ctx, segment_stages, outcome.timings, outcome.events
                )
            except Exception as error:  # noqa: BLE001 — isolated
                outcome.error = error

        # One vectorized cross-domain sensing pass per replay direction
        # for every request still healthy.  The child streams are
        # derived per request in the sequential order (``replay-va``
        # then ``replay-wearable``) *before* the batched calls, so a
        # batch-level failure can fall back to per-request conversion
        # inside SenseStage without perturbing any stream.
        self._sense_batch(items, contexts, outcomes)

        for index in range(len(items)):
            outcome = outcomes[index]
            ctx = contexts[index]
            if outcome.error is not None or ctx is None:
                continue
            try:
                self._run_stages(
                    ctx,
                    post_segment_stages,
                    outcome.timings,
                    outcome.events,
                )
                outcome.verdict = self._verdict_from(ctx)
            except Exception as error:  # noqa: BLE001 — isolated
                outcome.error = error
        return outcomes

    def _sense_batch(
        self,
        items: Sequence[BatchAnalysisItem],
        contexts: Sequence[Optional[StageContext]],
        outcomes: Sequence[BatchAnalysisOutcome],
    ) -> None:
        """Vectorized sensing across a batch's healthy requests.

        Pre-seeds ``vibration_va`` / ``vibration_wearable`` (and the
        amortized ``sense`` timing share) on each surviving context.  On
        failure of a batched conversion nothing is pre-seeded beyond the
        derived RNG streams, and :class:`~repro.core.stages.SenseStage`
        converts per request with those exact streams — bitwise the same
        result, minus the speedup.
        """
        config = self.config
        sense_indices = [
            index
            for index in range(len(items))
            if contexts[index] is not None
            and outcomes[index].error is None
        ]
        if not sense_indices:
            return
        for index in sense_indices:
            ctx = contexts[index]
            ctx.sense_rng_va = child_rng(ctx.generator, "replay-va")
            ctx.sense_rng_wearable = child_rng(
                ctx.generator, "replay-wearable"
            )
        fallback: Optional[str] = None
        start = time.perf_counter()
        try:
            vibrations_va = self.sensor.convert_batch(
                [contexts[index].va_material for index in sense_indices],
                config.audio_rate,
                rngs=[
                    contexts[index].sense_rng_va
                    for index in sense_indices
                ],
                include_body_motion=config.wearer_moving,
            )
            vibrations_wearable = self.sensor.convert_batch(
                [
                    contexts[index].wearable_material
                    for index in sense_indices
                ],
                config.audio_rate,
                rngs=[
                    contexts[index].sense_rng_wearable
                    for index in sense_indices
                ],
                include_body_motion=config.wearer_moving,
            )
        except Exception:  # noqa: BLE001 — SenseStage falls back
            fallback = "per-request"
        batch_wall = time.perf_counter() - start
        if fallback is None:
            shared_sense_s = batch_wall / len(sense_indices)
            for row, index in enumerate(sense_indices):
                ctx = contexts[index]
                ctx.vibration_va = vibrations_va[row]
                ctx.vibration_wearable = vibrations_wearable[row]
                ctx.extra_stage_s["sense"] = shared_sense_s
        self._emit(
            StageEvent(
                stage="sense_batch",
                wall_s=batch_wall,
                batch_size=len(sense_indices),
                fallback=fallback,
                scope="batch",
            )
        )

    def score(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        rng: SeedLike = None,
        oracle_utterance: Optional[Utterance] = None,
    ) -> float:
        """Correlation score only (used by the evaluation harness)."""
        return self.analyze(
            va_audio, wearable_audio, rng=rng,
            oracle_utterance=oracle_utterance,
        ).score

    # ------------------------------------------------------------------
    # Stage driver
    # ------------------------------------------------------------------

    def _emit(self, event: StageEvent) -> None:
        emit_event(event, sink=self.sink)

    def _run_stages(
        self,
        ctx: StageContext,
        stages: Sequence[Stage],
        timings: Dict[str, float],
        events: List[StageEvent],
    ) -> None:
        """Run ``stages`` over ``ctx``, timing and emitting each one.

        A stage's wall time includes any amortized share recorded for
        it in ``ctx.extra_stage_s`` (the batched segmentation forward).
        On stage failure an ``error`` event is emitted (and recorded in
        ``events``) before the exception propagates.
        """
        for stage in stages:
            start = time.perf_counter()
            try:
                stage.run(ctx)
            except Exception as error:
                wall = time.perf_counter() - start
                wall += ctx.extra_stage_s.pop(stage.name, 0.0)
                event = StageEvent(
                    stage=stage.name,
                    wall_s=wall,
                    fallback=ctx.fallbacks.get(stage.name),
                    error=type(error).__name__,
                )
                events.append(event)
                self._emit(event)
                raise
            wall = time.perf_counter() - start
            wall += ctx.extra_stage_s.pop(stage.name, 0.0)
            event = StageEvent(
                stage=stage.name,
                wall_s=wall,
                fallback=ctx.fallbacks.get(stage.name),
            )
            timings[stage.name] = wall
            events.append(event)
            self._emit(event)

    def _verdict_from(self, ctx: StageContext) -> DefenseVerdict:
        return DefenseVerdict(
            score=ctx.score,
            is_attack=ctx.is_attack,
            n_segments=ctx.n_segments,
            analyzed_duration_s=(
                ctx.va_material.size / self.config.audio_rate
            ),
            sync_delay_s=ctx.delay_s,
        )

    # ------------------------------------------------------------------
    # Component helpers used by the stage objects
    # ------------------------------------------------------------------

    def _find_segments(
        self,
        va_audio: np.ndarray,
        oracle_utterance: Optional[Utterance],
        segmenter: Optional[Segmenter] = None,
    ) -> List[Tuple[float, float]]:
        """Locate sensitive segments with ``segmenter`` (default: own).

        The hardened segment stage passes a per-session subset clone
        (:meth:`~repro.core.segmentation.PhonemeSegmenter.with_sensitive_subset`)
        here; every other caller uses the pipeline's own segmenter.
        """
        if segmenter is None:
            segmenter = self.segmenter
        if segmenter is None:
            return []
        if oracle_utterance is not None:
            # Oracle segments are timed relative to the utterance start;
            # locate that start inside the (synced) VA recording first.
            offset_s = self._locate_utterance(va_audio, oracle_utterance)
            return [
                (start + offset_s, end + offset_s)
                for start, end in segmenter.oracle_segments(
                    oracle_utterance
                )
            ]
        return segmenter.segments(va_audio)

    def _locate_utterance(
        self,
        va_audio: np.ndarray,
        utterance: Utterance,
    ) -> float:
        """Offset (s) of the utterance onset within the VA recording."""
        from repro.dsp.correlate import cross_correlation_delay

        max_lag = min(
            va_audio.size - 1,
            int(round(1.5 * self.config.audio_rate)),
        )
        delay = cross_correlation_delay(
            va_audio, utterance.waveform, max_lag
        )
        return max(0.0, -delay / self.config.audio_rate)

    def _extract_material(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        segments: Sequence[Tuple[float, float]],
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Cut sensitive segments from both recordings (VA's timeline).

        Falls back to the full recordings when segmentation yields too
        little material for a stable correlation.  Retained as the
        reference implementation of the extraction contract; the stage
        line (:class:`~repro.core.stages.SegmentStage`) implements the
        same policy with fallback annotation.
        """
        config = self.config
        if segments:
            va_material = concatenate_segments(
                va_audio, segments, config.audio_rate
            )
            wearable_material = concatenate_segments(
                wearable_audio, segments, config.audio_rate
            )
            if va_material.size >= min_material_samples(self):
                return va_material, wearable_material, len(segments)
        if va_audio.size == 0 or wearable_audio.size == 0:
            raise SignalError("cannot analyze empty recordings")
        return np.asarray(va_audio), np.asarray(wearable_audio), 0
