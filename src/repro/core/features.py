"""Vibration-domain feature extraction (paper § VI-B).

Features are STFT power spectrograms of the vibration signal (64-point
window and FFT, per the paper), with three corrections:

* **Accelerometer artifact mitigation** — rows at 5 Hz and below are
  cropped: the sensor's DC sensitivity (Fig. 7) and body motion
  (0.3–3.5 Hz) dominate there regardless of the sound.
* **Vibration-domain normalization** — the spectrogram is divided by its
  maximum so user-to-VA distance (hence signal scale) cancels before the
  2-D correlation.
* **Log compression** (this implementation's addition to the paper's
  Eq. (6) features) — the normalized power map is expressed in dB with a
  floor, so the correlation weighs the full spectro-temporal pattern
  rather than the few strongest bins; the plain linear features remain
  available via ``log_compress=False`` (used by the vibration baseline
  and the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.filters import butter_highpass
from repro.dsp.stft import crop_low_frequency_bins, power_spectrogram
from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_1d


@dataclass
class FeatureConfig:
    """Vibration-feature parameters (defaults follow the paper).

    Attributes
    ----------
    n_fft:
        STFT window length and FFT size (64 in the paper).
    hop_length:
        Frame hop in samples.
    artifact_cutoff_hz:
        Spectrogram rows at or below this frequency are removed (5 Hz).
    highpass_hz:
        Optional time-domain high-pass applied before the STFT to remove
        body-movement interference; ``0`` disables.
    normalize:
        Divide the spectrogram by its maximum (distance compensation).
    """

    n_fft: int = 64
    hop_length: int = 16
    artifact_cutoff_hz: float = 5.0
    highpass_hz: float = 5.0
    normalize: bool = True
    log_compress: bool = True
    log_floor_db: float = -35.0

    def __post_init__(self) -> None:
        if self.n_fft <= 0 or self.hop_length <= 0:
            raise ConfigurationError("n_fft and hop_length must be > 0")
        if self.artifact_cutoff_hz < 0 or self.highpass_hz < 0:
            raise ConfigurationError("cutoffs must be >= 0")
        if self.log_floor_db >= 0:
            raise ConfigurationError("log_floor_db must be negative")


class VibrationFeatureExtractor:
    """Turns a vibration signal into normalized spectrogram features."""

    def __init__(
        self,
        config: Optional[FeatureConfig] = None,
        sample_rate: float = 200.0,
    ) -> None:
        self.config = config or FeatureConfig()
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be > 0")
        self.sample_rate = float(sample_rate)

    def extract(self, vibration: np.ndarray) -> np.ndarray:
        """Compute the cropped, normalized power spectrogram.

        Returns an array of shape ``(n_retained_bins, n_frames)``.
        """
        samples = ensure_1d(vibration, "vibration")
        config = self.config
        if samples.size < config.n_fft:
            raise SignalError(
                f"vibration signal of {samples.size} samples is shorter "
                f"than one STFT window ({config.n_fft})"
            )
        if config.highpass_hz > 0:
            samples = butter_highpass(
                samples, self.sample_rate, config.highpass_hz, order=4
            )
        spectrogram = power_spectrogram(
            samples, n_fft=config.n_fft, hop_length=config.hop_length
        )
        if config.artifact_cutoff_hz > 0:
            spectrogram, _ = crop_low_frequency_bins(
                spectrogram,
                config.n_fft,
                self.sample_rate,
                config.artifact_cutoff_hz,
            )
        peak = float(np.max(spectrogram))
        if config.normalize and peak > 0:
            spectrogram = spectrogram / peak
        if config.log_compress:
            # The floor is always relative to the spectrogram peak: after
            # normalization the peak is 1 (0 dB) so the floor is
            # ``log_floor_db`` itself; without normalization the floor
            # shifts with the peak so it never becomes an absolute,
            # scale-dependent cutoff.
            floor_db = config.log_floor_db
            if not config.normalize and peak > 0:
                floor_db += 10.0 * np.log10(peak)
            spectrogram = np.maximum(
                10.0 * np.log10(spectrogram + 1e-12),
                floor_db,
            )
        return spectrogram
