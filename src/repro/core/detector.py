"""Thru-barrier attack detector based on 2-D correlation (paper § VI-C).

The detector computes the 2-D Pearson correlation (Eq. (6)) between the
normalized vibration-domain features of the VA's and the wearable's
recordings.  Legitimate voices produce strong, repeatable vibration
signatures → high correlation; thru-barrier attack sounds are dominated
by low frequencies, so the accelerometer injects random noise into each
replay → low correlation.  A threshold on the score decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.correlate import correlation_2d
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


@dataclass
class DetectorConfig:
    """Detector parameters.

    Attributes
    ----------
    threshold:
        Correlation score below which a voice command is declared a
        thru-barrier attack.  ``None`` leaves the detector in scoring
        mode (thresholds are usually calibrated by the evaluation
        harness at the EER operating point).
    """

    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.threshold is not None and not -1.0 <= self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must lie in [-1, 1], got {self.threshold}"
            )


class CorrelationDetector:
    """Scores and classifies feature pairs by 2-D correlation."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    def score(
        self,
        features_va: np.ndarray,
        features_wearable: np.ndarray,
    ) -> float:
        """2-D correlation between the two devices' vibration features.

        Higher means more consistent (more likely legitimate).
        """
        return correlation_2d(features_va, features_wearable)

    def is_attack(
        self,
        features_va: np.ndarray,
        features_wearable: np.ndarray,
    ) -> bool:
        """Thresholded decision; requires a configured threshold."""
        return self.decide(self.score(features_va, features_wearable))

    def decide(self, score: float) -> bool:
        """Apply the threshold rule to an already-computed score.

        The single place the boundary semantics live (attack iff
        ``score < threshold``); :meth:`is_attack` and
        :meth:`repro.core.pipeline.DefensePipeline.analyze` both
        delegate here so the two can never drift.
        """
        if self.config.threshold is None:
            raise ConfigurationError(
                "detector has no threshold; set DetectorConfig.threshold "
                "or calibrate one with repro.eval"
            )
        return score < self.config.threshold

    def with_threshold(self, threshold: float) -> "CorrelationDetector":
        """A copy of this detector with ``threshold`` set."""
        return CorrelationDetector(DetectorConfig(threshold=threshold))

    def with_randomized_threshold(
        self, rng: SeedLike, jitter: float
    ) -> "CorrelationDetector":
        """A copy deciding at ``threshold + U(-jitter, +jitter)``.

        The randomized sibling of :meth:`with_threshold`, used by the
        hardened pipeline (:class:`repro.core.HardeningConfig`) to
        perturb the operating point per session: attacks optimized to
        sit just above the calibrated threshold are caught on the
        sessions whose draw lands above their score, while legitimate
        commands (and static attacks far below threshold) are decided
        as before on average.

        Raises :class:`ConfigurationError` when no base threshold is
        configured, when ``jitter`` is negative, or when the jitter
        band ``threshold ± jitter`` leaves the detector's ``[-1, 1]``
        score bounds — a misconfiguration that would otherwise be
        masked by clipping only the unlucky draws.
        """
        base = self.config.threshold
        if base is None:
            raise ConfigurationError(
                "with_randomized_threshold requires a calibrated base "
                "threshold; set DetectorConfig.threshold first"
            )
        if jitter < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {jitter}"
            )
        if base - jitter < -1.0 or base + jitter > 1.0:
            raise ConfigurationError(
                f"threshold {base} ± jitter {jitter} leaves the "
                f"detector's [-1, 1] score bounds"
            )
        draw = float(as_generator(rng).uniform(-jitter, jitter))
        return self.with_threshold(base + draw)
