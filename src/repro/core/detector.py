"""Thru-barrier attack detector based on 2-D correlation (paper § VI-C).

The detector computes the 2-D Pearson correlation (Eq. (6)) between the
normalized vibration-domain features of the VA's and the wearable's
recordings.  Legitimate voices produce strong, repeatable vibration
signatures → high correlation; thru-barrier attack sounds are dominated
by low frequencies, so the accelerometer injects random noise into each
replay → low correlation.  A threshold on the score decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.correlate import correlation_2d
from repro.errors import ConfigurationError


@dataclass
class DetectorConfig:
    """Detector parameters.

    Attributes
    ----------
    threshold:
        Correlation score below which a voice command is declared a
        thru-barrier attack.  ``None`` leaves the detector in scoring
        mode (thresholds are usually calibrated by the evaluation
        harness at the EER operating point).
    """

    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.threshold is not None and not -1.0 <= self.threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must lie in [-1, 1], got {self.threshold}"
            )


class CorrelationDetector:
    """Scores and classifies feature pairs by 2-D correlation."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    def score(
        self,
        features_va: np.ndarray,
        features_wearable: np.ndarray,
    ) -> float:
        """2-D correlation between the two devices' vibration features.

        Higher means more consistent (more likely legitimate).
        """
        return correlation_2d(features_va, features_wearable)

    def is_attack(
        self,
        features_va: np.ndarray,
        features_wearable: np.ndarray,
    ) -> bool:
        """Thresholded decision; requires a configured threshold."""
        return self.decide(self.score(features_va, features_wearable))

    def decide(self, score: float) -> bool:
        """Apply the threshold rule to an already-computed score.

        The single place the boundary semantics live (attack iff
        ``score < threshold``); :meth:`is_attack` and
        :meth:`repro.core.pipeline.DefensePipeline.analyze` both
        delegate here so the two can never drift.
        """
        if self.config.threshold is None:
            raise ConfigurationError(
                "detector has no threshold; set DetectorConfig.threshold "
                "or calibrate one with repro.eval"
            )
        return score < self.config.threshold

    def with_threshold(self, threshold: float) -> "CorrelationDetector":
        """A copy of this detector with ``threshold`` set."""
        return CorrelationDetector(DetectorConfig(threshold=threshold))
