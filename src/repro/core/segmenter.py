"""The ``Segmenter`` protocol — the interface the pipeline consumes.

:class:`~repro.core.pipeline.DefensePipeline`, the serving layer, and
the evaluation harness never depend on *how* sensitive-phoneme segments
are found; they call exactly four methods: per-recording and batched
frame probabilities, and per-recording and batched segment extraction.
This module names that contract so segmentation backends are pluggable:

``paper`` / ``fast``
    :class:`~repro.core.segmentation.PhonemeSegmenter` — the paper's
    trained bidirectional-LSTM frame classifier (§ V-B).  The only
    trained component of the defense; the reason the artifact store's
    cold-start machinery exists.
``rd``
    :class:`~repro.core.rate_distortion.RateDistortionSegmenter` — a
    training-free agglomerative segmenter (Qiao et al. 2008) followed
    by a spectral sensitive/non-sensitive rule.  Zero training runs,
    instant worker spin-up.

Persistence (``save`` / ``load_weights``) is deliberately *not* part of
the core protocol: it only makes sense for backends with trained state,
and the artifact store talks to those through the narrower
:class:`PersistentSegmenter` extension.

The module also hosts :func:`mask_to_segments`, the one shared
implementation of the frame-mask → time-segment conversion (merge
gaps, drop spurious runs, clamp to the recording duration) so every
backend emits identically-shaped, in-range segments.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class Segmenter(Protocol):
    """What the defense pipeline requires of a segmentation backend.

    Implementations must guarantee two invariants the pipeline and its
    tests rely on:

    * every emitted ``(start_s, end_s)`` pair satisfies
      ``0 <= start_s < end_s <= duration`` of the analyzed recording;
    * ``segments_batch`` / ``frame_probabilities_batch`` return, per
      element, the same result as the sequential method on that element
      (with ``dtype=None``; reduced-precision opt-ins may relax this to
      a documented tolerance).
    """

    def frame_probabilities(
        self, audio: np.ndarray, dtype=None
    ) -> np.ndarray:
        """Per-frame probability that the frame is an effective phoneme."""
        ...

    def frame_probabilities_batch(
        self, audios: Sequence[np.ndarray], dtype=None
    ) -> List[np.ndarray]:
        """Per-frame probabilities for many recordings, in order."""
        ...

    def segments(self, audio: np.ndarray) -> List[Tuple[float, float]]:
        """Sensitive-phoneme segments as ``(start_s, end_s)`` pairs."""
        ...

    def segments_batch(
        self, audios: Sequence[np.ndarray], dtype=None
    ) -> List[List[Tuple[float, float]]]:
        """Detected segments for many recordings, in order."""
        ...


@runtime_checkable
class PersistentSegmenter(Segmenter, Protocol):
    """A segmenter whose (trained) state round-trips through bytes.

    The artifact store and model registry persist backends through this
    extension; training-free backends need not implement it — their
    recipe *is* their state.
    """

    def save(self, path) -> None:
        """Serialize state to ``path`` (filesystem path or file object)."""
        ...

    def load_weights(self, path) -> None:
        """Restore state saved by :meth:`save`."""
        ...


def mask_to_segments(
    mask: np.ndarray,
    hop_s: float,
    frame_length_s: float,
    duration_s: float,
    merge_gap_s: float = 0.0,
    min_segment_s: float = 0.0,
) -> List[Tuple[float, float]]:
    """Convert a per-frame boolean mask into merged time segments.

    A run of positive frames ``[first, last]`` spans
    ``first * hop_s`` … ``last * hop_s + frame_length_s`` — the window
    of the *last positive frame*, not of the first negative one (which
    would overshoot every end by one hop), clamped to ``duration_s`` so
    a run reaching the final (possibly zero-padded) analysis frame can
    never extend past the recording.  Runs separated by gaps shorter
    than ``merge_gap_s`` are merged; merged segments shorter than
    ``min_segment_s`` are discarded as spurious.
    """
    mask = np.asarray(mask, dtype=bool).ravel()
    if mask.size == 0 or duration_s <= 0.0:
        return []
    edges = np.diff(np.concatenate(([False], mask, [False])).astype(np.int8))
    run_starts = np.flatnonzero(edges == 1)
    run_lasts = np.flatnonzero(edges == -1) - 1  # last positive index
    merged: List[Tuple[float, float]] = []
    for first, last in zip(run_starts, run_lasts):
        begin = float(first * hop_s)
        end = float(min(last * hop_s + frame_length_s, duration_s))
        if end <= begin:
            continue
        if merged and begin - merged[-1][1] <= merge_gap_s:
            merged[-1] = (merged[-1][0], end)
        else:
            merged.append((begin, end))
    return [
        (begin, end)
        for begin, end in merged
        if end - begin >= min_segment_s
    ]
