"""Barrier-effect-sensitive phoneme segmentation (paper § V-B).

A bidirectional-LSTM detector runs over 14th-order MFCC frames (25 ms
window, 10 ms hop, 40 mel channels limited to 0–900 Hz so thru-barrier
sounds remain featurizable) and labels each frame as *effective*
(barrier-effect-sensitive phoneme) or not.  Consecutive positive frames
are merged into segments, which are then cut out of the recording and
concatenated for cross-domain sensing.

The segmenter trains on the synthetic corpus: utterances with
time-aligned transcriptions provide per-frame binary labels (1 when the
frame lies inside a sensitive phoneme).  An *oracle* mode that segments
straight from alignments is provided for ablations.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.segmenter import mask_to_segments
from repro.dsp.mel import mfcc
from repro.errors import ConfigurationError, ModelError
from repro.nn.model import (
    SequenceClassifier,
    pack_param_arrays,
    restore_param_arrays,
)
from repro.phonemes.corpus import SyntheticCorpus, Utterance
from repro.phonemes.inventory import PAPER_SELECTED_PHONEMES, get_phoneme
from repro.utils.rng import SeedLike, as_generator, child_rng
from repro.utils.validation import ensure_1d

# Process-wide count of segmenter training runs.  The artifact-store
# tests and ``make store-smoke`` assert warm starts perform *zero*
# training by reading this counter before and after service startup.
_TRAINING_RUNS = 0
_TRAINING_RUNS_LOCK = threading.Lock()


def training_run_count() -> int:
    """Segmenter training runs performed by this process so far."""
    with _TRAINING_RUNS_LOCK:
        return _TRAINING_RUNS


def _note_training_run() -> None:
    global _TRAINING_RUNS
    with _TRAINING_RUNS_LOCK:
        _TRAINING_RUNS += 1


@dataclass
class SegmenterConfig:
    """Segmentation parameters (defaults follow the paper).

    Attributes
    ----------
    n_mfcc:
        Cepstral coefficients per frame (14).
    n_filters:
        Mel filterbank channels (40).
    frame_length_s / hop_length_s:
        Analysis window and hop (25 ms / 10 ms).
    mfcc_high_hz:
        Upper filterbank edge (900 Hz — informative even thru barriers).
    hidden_dim:
        LSTM units per direction (64).
    decision_threshold:
        Frame probability above which a frame counts as effective.
    min_segment_s:
        Segments shorter than this are discarded as spurious.
    merge_gap_s:
        Positive runs separated by gaps shorter than this are merged.
    """

    n_mfcc: int = 14
    n_filters: int = 40
    frame_length_s: float = 0.025
    hop_length_s: float = 0.010
    mfcc_high_hz: float = 900.0
    hidden_dim: int = 64
    decision_threshold: float = 0.5
    min_segment_s: float = 0.03
    merge_gap_s: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.decision_threshold < 1.0:
            raise ConfigurationError(
                "decision_threshold must lie in (0, 1)"
            )
        if self.min_segment_s < 0 or self.merge_gap_s < 0:
            raise ConfigurationError("durations must be >= 0")


class PhonemeSegmenter:
    """Detects and extracts barrier-effect-sensitive phoneme segments.

    Parameters
    ----------
    sensitive_phonemes:
        The phoneme set to detect (defaults to the paper's 31).
    config:
        Feature/model/decision parameters.
    sample_rate:
        Audio sampling rate.
    rng:
        Seed for model initialization.
    """

    def __init__(
        self,
        sensitive_phonemes: Iterable[str] = PAPER_SELECTED_PHONEMES,
        config: Optional[SegmenterConfig] = None,
        sample_rate: float = 16_000.0,
        rng: SeedLike = None,
    ) -> None:
        self.sensitive_phonemes: FrozenSet[str] = frozenset(
            sensitive_phonemes
        )
        if not self.sensitive_phonemes:
            raise ConfigurationError("sensitive phoneme set is empty")
        for symbol in self.sensitive_phonemes:
            get_phoneme(symbol)  # Validate symbols early.
        self.config = config or SegmenterConfig()
        self.sample_rate = float(sample_rate)
        self._rng = as_generator(rng)
        self.model = SequenceClassifier(
            input_dim=self.config.n_mfcc,
            hidden_dim=self.config.hidden_dim,
            n_classes=2,
            rng=child_rng(self._rng, "model"),
        )
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None
        self._trained = False

    # ------------------------------------------------------------------
    # Features and labels
    # ------------------------------------------------------------------

    def features(self, audio: np.ndarray) -> np.ndarray:
        """MFCC frame features for an audio recording."""
        samples = ensure_1d(audio, "audio")
        config = self.config
        coefficients = mfcc(
            samples,
            self.sample_rate,
            n_mfcc=config.n_mfcc,
            n_filters=config.n_filters,
            frame_length_s=config.frame_length_s,
            hop_length_s=config.hop_length_s,
            high_hz=config.mfcc_high_hz,
        )
        if self._feature_mean is not None:
            coefficients = (
                coefficients - self._feature_mean
            ) / self._feature_std
        return coefficients

    def frame_times(self, n_frames: int) -> np.ndarray:
        """Center time (s) of each analysis frame."""
        config = self.config
        return (
            np.arange(n_frames) * config.hop_length_s
            + config.frame_length_s / 2.0
        )

    def frame_labels(self, utterance: Utterance) -> np.ndarray:
        """Ground-truth binary labels per frame from the alignment."""
        n_frames = self.features(utterance.waveform).shape[0]
        times = self.frame_times(n_frames)
        symbols = utterance.labels_at(times)
        return np.array(
            [
                1 if symbol in self.sensitive_phonemes else 0
                for symbol in symbols
            ],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train(
        self,
        utterances: Sequence[Utterance],
        epochs: int = 10,
        batch_size: int = 8,
        learning_rate: float = 1e-2,
        rng: SeedLike = None,
    ) -> List[float]:
        """Train the BRNN on clean aligned utterances.

        See :meth:`train_on_recordings` for channel-matched training
        (clean plus recorded/thru-barrier renditions), which the full
        pipeline uses.
        """
        pairs = [
            (utterance, utterance.waveform) for utterance in utterances
        ]
        return self.train_on_recordings(
            pairs,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            rng=rng,
        )

    def train_on_recordings(
        self,
        pairs: Sequence[Tuple[Utterance, np.ndarray]],
        epochs: int = 10,
        batch_size: int = 8,
        learning_rate: float = 1e-2,
        rng: SeedLike = None,
    ) -> List[float]:
        """Train on (utterance, recorded-waveform) pairs.

        The recorded waveform must preserve the utterance's timing (the
        library's propagation/microphone/barrier models do), so the
        alignment's frame labels remain valid.  Mixing clean, in-room
        recorded, and thru-barrier renditions gives the detector the
        channel robustness the paper reports (94 % / 91 % frame
        accuracy without / with barrier).

        Feature statistics (mean/std) are computed on the training set
        and stored for inference-time standardization.
        """
        if not pairs:
            raise ModelError("need at least one training pair")
        _note_training_run()
        raw_features = [
            mfcc(
                np.asarray(waveform, dtype=np.float64),
                self.sample_rate,
                n_mfcc=self.config.n_mfcc,
                n_filters=self.config.n_filters,
                frame_length_s=self.config.frame_length_s,
                hop_length_s=self.config.hop_length_s,
                high_hz=self.config.mfcc_high_hz,
            )
            for _, waveform in pairs
        ]
        stacked = np.vstack(raw_features)
        self._feature_mean = stacked.mean(axis=0)
        self._feature_std = stacked.std(axis=0) + 1e-8
        features = [
            (matrix - self._feature_mean) / self._feature_std
            for matrix in raw_features
        ]
        labels = []
        for (utterance, _), matrix in zip(pairs, raw_features):
            times = self.frame_times(matrix.shape[0])
            symbols = utterance.labels_at(times)
            labels.append(
                np.array(
                    [
                        1 if symbol in self.sensitive_phonemes else 0
                        for symbol in symbols
                    ],
                    dtype=np.int64,
                )
            )
        history = self.model.fit(
            features,
            labels,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            rng=rng,
        )
        self._trained = True
        return history

    def train_on_phoneme_segments(
        self,
        corpus: SyntheticCorpus,
        n_per_phoneme: int = 12,
        symbols: Optional[Sequence[str]] = None,
        epochs: int = 12,
        learning_rate: float = 1e-2,
        rng: SeedLike = None,
    ) -> List[float]:
        """Train on labelled phoneme sound segments (the paper's recipe).

        § V-B trains the BRNN on TIMIT phoneme segments: each training
        example is the MFCC frame sequence of one phoneme sound, with
        every frame labelled 1 when the phoneme is barrier-effect
        sensitive and 0 otherwise.  Each segment contributes a clean,
        an in-room recorded, and a thru-barrier rendition (channel
        matching), plus silence examples so pauses classify as 0.
        """
        from repro.acoustics.barrier import Barrier
        from repro.acoustics.materials import GLASS_WINDOW
        from repro.acoustics.microphone import (
            Microphone,
            SMART_SPEAKER_MIC,
        )
        from repro.acoustics.propagation import propagate
        from repro.acoustics.spl import db_to_gain
        from repro.phonemes.inventory import COMMON_PHONEMES

        _note_training_run()
        generator = as_generator(rng)
        if symbols is None:
            symbols = list(COMMON_PHONEMES) + ["sp", "sil", "pau"]
        microphone = Microphone(SMART_SPEAKER_MIC)
        barrier = Barrier(GLASS_WINDOW)

        waveforms: List[np.ndarray] = []
        segment_labels: List[int] = []
        for symbol in symbols:
            label = 1 if symbol in self.sensitive_phonemes else 0
            population = corpus.phoneme_population(
                symbol, n_per_phoneme,
                rng=child_rng(generator, f"pop-{symbol}"),
            )
            for index, segment in enumerate(population):
                # Natural playback levels around 70-85 dB speech.
                gain = db_to_gain(float(generator.uniform(5.0, 20.0)))
                source = segment.waveform * gain
                variant = index % 3
                if variant == 0:
                    rendered = source
                elif variant == 1:
                    rendered = microphone.capture(
                        propagate(source, self.sample_rate, 2.0),
                        self.sample_rate,
                        rng=child_rng(generator, f"m-{symbol}-{index}"),
                    )
                else:
                    rendered = microphone.capture(
                        propagate(
                            barrier.transmit(
                                source, self.sample_rate,
                                rng=child_rng(
                                    generator, f"b-{symbol}-{index}"
                                ),
                            ),
                            self.sample_rate,
                            2.0,
                        ),
                        self.sample_rate,
                        rng=child_rng(generator, f"mb-{symbol}-{index}"),
                    )
                waveforms.append(rendered)
                segment_labels.append(label)

        raw_features = [
            mfcc(
                waveform,
                self.sample_rate,
                n_mfcc=self.config.n_mfcc,
                n_filters=self.config.n_filters,
                frame_length_s=self.config.frame_length_s,
                hop_length_s=self.config.hop_length_s,
                high_hz=self.config.mfcc_high_hz,
            )
            for waveform in waveforms
        ]
        stacked = np.vstack(raw_features)
        self._feature_mean = stacked.mean(axis=0)
        self._feature_std = stacked.std(axis=0) + 1e-8
        features = [
            (matrix - self._feature_mean) / self._feature_std
            for matrix in raw_features
        ]
        labels = [
            np.full(matrix.shape[0], label, dtype=np.int64)
            for matrix, label in zip(features, segment_labels)
        ]
        history = self.model.fit(
            features,
            labels,
            epochs=epochs,
            batch_size=16,
            learning_rate=learning_rate,
            rng=child_rng(generator, "fit"),
        )
        self._trained = True
        return history

    def train_from_corpus(
        self,
        corpus: SyntheticCorpus,
        phoneme_sequences: Sequence[Sequence[str]],
        epochs: int = 10,
        rng: SeedLike = None,
        channel_matched: bool = True,
    ) -> List[float]:
        """Convenience: synthesize utterances from a corpus, then train.

        With ``channel_matched`` (the default), each utterance also
        contributes an in-room recorded rendition and a thru-barrier
        rendition, matching the channels the detector sees online.
        """
        generator = as_generator(rng)
        utterances = [
            corpus.utterance(
                sequence, rng=child_rng(generator, f"train-{index}")
            )
            for index, sequence in enumerate(phoneme_sequences)
        ]
        if not channel_matched:
            return self.train(
                utterances, epochs=epochs, rng=child_rng(generator, "fit")
            )
        pairs = build_training_pairs(
            utterances, rng=child_rng(generator, "channels")
        )
        return self.train_on_recordings(
            pairs, epochs=epochs, rng=child_rng(generator, "fit")
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def classify_segment(self, audio: np.ndarray) -> bool:
        """Classify one phoneme sound segment as effective or not.

        This is the paper's § V-B evaluation protocol: a whole phoneme
        segment is replayed and classified (94 % accuracy without a
        barrier, 91 % with).  The decision pools frame probabilities
        over the segment.
        """
        probabilities = self.frame_probabilities(audio)
        return bool(
            float(np.mean(probabilities)) >= self.config.decision_threshold
        )

    def frame_probabilities(
        self, audio: np.ndarray, dtype=None
    ) -> np.ndarray:
        """Per-frame probability that the frame is an effective phoneme.

        Delegates to :meth:`frame_probabilities_batch` with a
        single-element batch, so the per-utterance and batched paths
        are one implementation — the parity contract between them is
        structural, not coincidental.
        """
        return self.frame_probabilities_batch([audio], dtype=dtype)[0]

    def frame_probabilities_batch(
        self, audios: Sequence[np.ndarray], dtype=None
    ) -> List[np.ndarray]:
        """Per-frame effective-phoneme probabilities for many recordings.

        Variable-length MFCC sequences are right-padded into one
        ``(batch, time, features)`` tensor with a frame-validity mask
        and scored by a **single** masked BLSTM forward pass — the
        vectorized fast path the serving layer's micro-batches ride.

        Parity contract: element ``i`` of the result is bitwise equal
        to ``frame_probabilities(audios[i])`` in the default float64
        path, for any batch size and any mix of lengths (the masked
        recurrence freezes state across padding, and every matmul runs
        on the same BLAS kernel family regardless of batch size — see
        :meth:`repro.nn.model.SequenceClassifier.forward`).  With
        ``dtype=np.float32`` (the opt-in reduced-precision compute
        path) probabilities match float64 within ~1e-3.

        Returns one 1-D probability array per input, in order.
        """
        if not self._trained:
            raise ModelError(
                "segmenter is untrained; call train() or use "
                "oracle_segments() for alignment-based segmentation"
            )
        audios = list(audios)
        if not audios:
            return []
        features = [self.features(audio) for audio in audios]
        lengths = [matrix.shape[0] for matrix in features]
        max_time = max(lengths)
        batch = len(features)
        x = np.zeros((batch, max_time, self.config.n_mfcc))
        mask = np.zeros((batch, max_time), dtype=bool)
        for index, matrix in enumerate(features):
            x[index, : matrix.shape[0]] = matrix
            mask[index, : matrix.shape[0]] = True
        probabilities = self.model.predict_proba(
            x, mask=mask, dtype=dtype
        )
        return [
            probabilities[index, :length, 1]
            for index, length in enumerate(lengths)
        ]

    def segments(self, audio: np.ndarray) -> List[Tuple[float, float]]:
        """Detected sensitive-phoneme segments as (start_s, end_s) pairs."""
        samples = ensure_1d(audio, "audio")
        probabilities = self.frame_probabilities(samples)
        mask = probabilities >= self.config.decision_threshold
        return self._mask_to_segments(
            mask, samples.size / self.sample_rate
        )

    def segments_batch(
        self, audios: Sequence[np.ndarray], dtype=None
    ) -> List[List[Tuple[float, float]]]:
        """Detected segments for many recordings via one BLSTM forward.

        The batched counterpart of :meth:`segments`: one list of
        ``(start_s, end_s)`` pairs per input, in order, with the same
        parity contract as :meth:`frame_probabilities_batch`.
        """
        audios = [ensure_1d(audio, "audio") for audio in audios]
        return [
            self._mask_to_segments(
                probabilities >= self.config.decision_threshold,
                samples.size / self.sample_rate,
            )
            for samples, probabilities in zip(
                audios,
                self.frame_probabilities_batch(audios, dtype=dtype),
            )
        ]

    def with_sensitive_subset(
        self, symbols: Iterable[str]
    ) -> "PhonemeSegmenter":
        """A shallow clone restricted to a subset of the sensitive set.

        Used by the hardened pipeline
        (:class:`~repro.core.hardening.HardeningConfig`) to analyze a
        per-session random subset of the sensitive phonemes.  The clone
        shares this segmenter's trained model and feature statistics —
        inference is read-only, so sharing is safe and the clone costs
        O(1) — but filters alignments (:meth:`oracle_segments`,
        :meth:`frame_labels`) through the subset.  The subset must be a
        non-empty subset of the current sensitive set; anything else
        raises :class:`ConfigurationError`.
        """
        subset = frozenset(symbols)
        if not subset:
            raise ConfigurationError("sensitive subset is empty")
        unknown = subset - self.sensitive_phonemes
        if unknown:
            raise ConfigurationError(
                "subset contains phonemes outside the sensitive set: "
                f"{sorted(unknown)}"
            )
        clone = copy.copy(self)
        clone.sensitive_phonemes = subset
        return clone

    def oracle_segments(
        self, utterance: Utterance
    ) -> List[Tuple[float, float]]:
        """Ground-truth segments straight from the alignment (ablation)."""
        merged: List[Tuple[float, float]] = []
        for interval in utterance.alignment:
            if interval.symbol not in self.sensitive_phonemes:
                continue
            if merged and interval.start_s - merged[-1][1] <= (
                self.config.merge_gap_s
            ):
                merged[-1] = (merged[-1][0], interval.end_s)
            else:
                merged.append((interval.start_s, interval.end_s))
        return [
            (start, end)
            for start, end in merged
            if end - start >= self.config.min_segment_s
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Serialize model weights + feature statistics to ``.npz``.

        ``path`` may be a filesystem path or a binary file object (the
        artifact store serializes into memory buffers).
        """
        if not self._trained:
            raise ModelError("cannot save an untrained segmenter")
        np.savez(
            path,
            **pack_param_arrays(
                self.model.params,
                self.model.input_dim,
                self.model.hidden_dim,
                self.model.n_classes,
                extras={
                    "_feature_mean": self._feature_mean,
                    "_feature_std": self._feature_std,
                },
            ),
        )

    def load_weights(self, path) -> None:
        """Restore weights + feature statistics saved by :meth:`save`.

        The archived (input_dim, hidden_dim, n_classes) triple is
        validated against this segmenter's live model; a mismatch
        raises :class:`ModelError` instead of silently loading weights
        trained for a different architecture.
        """
        with np.load(path) as archive:
            restore_param_arrays(
                archive,
                self.model.params,
                path,
                expected_meta=(
                    self.model.input_dim,
                    self.model.hidden_dim,
                    self.model.n_classes,
                ),
            )
            for name in ("_feature_mean", "_feature_std"):
                if name not in archive:
                    raise ModelError(
                        f"missing feature statistics {name!r} in {path}"
                    )
            self._feature_mean = archive["_feature_mean"]
            self._feature_std = archive["_feature_std"]
        self.model._trained = True
        self._trained = True

    def _mask_to_segments(
        self, mask: np.ndarray, duration_s: float
    ) -> List[Tuple[float, float]]:
        config = self.config
        return mask_to_segments(
            mask,
            hop_s=config.hop_length_s,
            frame_length_s=config.frame_length_s,
            duration_s=duration_s,
            merge_gap_s=config.merge_gap_s,
            min_segment_s=config.min_segment_s,
        )


def train_default_segmenter(
    seed: SeedLike = None,
    n_speakers: int = 8,
    n_per_phoneme: int = 12,
    epochs: int = 12,
) -> PhonemeSegmenter:
    """Train a ready-to-use segmenter with the paper's recipe.

    Takes a few seconds on a laptop; used by examples and benchmarks
    that need the full online pipeline rather than oracle segmentation.
    Callers that construct many pipelines from the same seed should use
    :func:`default_segmenter`, which memoizes the trained model.
    """
    generator = as_generator(seed)
    corpus = SyntheticCorpus(
        n_speakers=n_speakers, seed=child_rng(generator, "corpus")
    )
    segmenter = PhonemeSegmenter(rng=child_rng(generator, "model"))
    segmenter.train_on_phoneme_segments(
        corpus,
        n_per_phoneme=n_per_phoneme,
        epochs=epochs,
        rng=child_rng(generator, "train"),
    )
    return segmenter


# Trained segmenters keyed by their full training recipe.  Training is
# deterministic in the integer seed, so a cached model is bitwise
# identical to a freshly trained one — the warm path changes cost, not
# scores (pinned by tests/test_serve_warm.py).
_WARM_SEGMENTERS: dict = {}
_WARM_LOCK = threading.Lock()
# Per-recipe training locks.  Concurrent misses on the *same* recipe
# must not each train a full BLSTM (and double-count _TRAINING_RUNS);
# concurrent misses on *different* recipes must not serialize behind
# one global lock while a slow training runs.
_RECIPE_LOCKS: dict = {}


def default_segmenter(
    seed: Optional[int] = None,
    n_speakers: int = 8,
    n_per_phoneme: int = 12,
    epochs: int = 12,
    store=None,
) -> PhonemeSegmenter:
    """Memoized :func:`train_default_segmenter`.

    Repeated calls with the same recipe return the *same* trained
    instance, so warm worker pools, examples, and CLI commands stop
    retraining the bidirectional LSTM per invocation.  Inference is
    read-only (the forward pass never consumes model state), so sharing
    one instance across threads is safe.  Only integer (or ``None``)
    seeds are cacheable; pass a ``Generator`` to
    :func:`train_default_segmenter` directly when a one-off model is
    wanted.

    ``store`` (an :class:`repro.store.ArtifactStore` or a store
    directory path) makes misses in the in-process memo consult the
    persistent artifact store before training: a published entry turns
    cold start into a weight load, and a miss trains then publishes for
    the next process.  Training is deterministic in the integer seed,
    so a store-loaded segmenter is bitwise identical to a freshly
    trained one — the store changes cost, never scores.
    """
    if seed is not None:
        seed = int(seed)
    key = (seed, int(n_speakers), int(n_per_phoneme), int(epochs))
    with _WARM_LOCK:
        cached = _WARM_SEGMENTERS.get(key)
        if cached is not None:
            return cached
        recipe_lock = _RECIPE_LOCKS.setdefault(key, threading.Lock())
    # Serialize per recipe: exactly one thread trains (or store-loads)
    # a given recipe; the losers of the race block here and then hit
    # the memo instead of redundantly training a full BLSTM each.
    with recipe_lock:
        with _WARM_LOCK:
            cached = _WARM_SEGMENTERS.get(key)
        if cached is not None:
            return cached
        if store is not None:
            # Imported lazily: repro.store.registry imports this module.
            from repro.store.registry import ModelRegistry

            segmenter, _ = ModelRegistry(store).segmenter(
                seed=seed,
                n_speakers=n_speakers,
                n_per_phoneme=n_per_phoneme,
                epochs=epochs,
            )
        else:
            segmenter = train_default_segmenter(
                seed=seed,
                n_speakers=n_speakers,
                n_per_phoneme=n_per_phoneme,
                epochs=epochs,
            )
        with _WARM_LOCK:
            _WARM_SEGMENTERS[key] = segmenter
        return segmenter


def build_training_pairs(
    utterances: Sequence[Utterance],
    rng: SeedLike = None,
    distance_m: float = 2.0,
    user_spl_db: float = 70.0,
    attack_spl_db: float = 75.0,
) -> List[Tuple[Utterance, np.ndarray]]:
    """Channel-matched training set: clean + recorded + thru-barrier.

    For each utterance, three renditions: the clean waveform, an in-room
    microphone recording, and a thru-barrier recording — the channels
    the segmenter encounters in deployment.  All renditions preserve
    the utterance's timing so the alignment labels stay valid.
    """
    from repro.acoustics.barrier import Barrier
    from repro.acoustics.materials import GLASS_WINDOW
    from repro.acoustics.microphone import Microphone, SMART_SPEAKER_MIC
    from repro.acoustics.propagation import propagate
    from repro.acoustics.spl import scale_to_spl

    generator = as_generator(rng)
    microphone = Microphone(SMART_SPEAKER_MIC)
    barrier = Barrier(GLASS_WINDOW)
    pairs: List[Tuple[Utterance, np.ndarray]] = []
    for index, utterance in enumerate(utterances):
        sample_rate = utterance.sample_rate
        pairs.append((utterance, utterance.waveform))
        in_room = microphone.capture(
            propagate(
                scale_to_spl(utterance.waveform, user_spl_db),
                sample_rate,
                distance_m,
            ),
            sample_rate,
            rng=child_rng(generator, f"room-{index}"),
        )
        pairs.append((utterance, in_room))
        thru = microphone.capture(
            propagate(
                barrier.transmit(
                    scale_to_spl(utterance.waveform, attack_spl_db),
                    sample_rate,
                    rng=child_rng(generator, f"bar-{index}"),
                ),
                sample_rate,
                distance_m,
            ),
            sample_rate,
            rng=child_rng(generator, f"mic-{index}"),
        )
        pairs.append((utterance, thru))
    return pairs


def concatenate_segments(
    audio: np.ndarray,
    segments: Sequence[Tuple[float, float]],
    sample_rate: float,
    fade_s: float = 0.008,
) -> np.ndarray:
    """Cut ``segments`` out of ``audio`` and concatenate them.

    Each segment gets a short raised-cosine fade-in/out so the
    concatenation boundaries do not inject broadband clicks into the
    replay.  Returns an empty array when no segments are given (the
    caller treats that as "nothing to analyze").
    """
    samples = ensure_1d(audio, "audio")
    fade = max(int(round(fade_s * sample_rate)), 0)
    pieces = []
    for start_s, end_s in segments:
        begin = max(int(round(start_s * sample_rate)), 0)
        end = min(int(round(end_s * sample_rate)), samples.size)
        if end <= begin:
            continue
        piece = samples[begin:end].copy()
        ramp_length = min(fade, piece.size // 2)
        if ramp_length > 0:
            ramp = 0.5 * (
                1.0 - np.cos(np.pi * np.arange(ramp_length) / ramp_length)
            )
            piece[:ramp_length] *= ramp
            piece[-ramp_length:] *= ramp[::-1]
        pieces.append(piece)
    if not pieces:
        return np.zeros(0)
    return np.concatenate(pieces)
