"""Baseline detectors the paper's evaluation compares against.

* :class:`AudioDomainBaseline` — 2-D correlation computed directly on
  audio-domain spectrograms of the two recordings (no cross-domain
  sensing).  The barrier effect is weak in the audio domain, so this
  baseline performs poorly (AUC ≈ 0.66–0.74 in the paper).
* :class:`VibrationBaselineNoSelection` — the full cross-domain pipeline
  but replaying the *entire* voice command, without sensitive-phoneme
  selection (AUC ≈ 0.83–0.88 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.detector import CorrelationDetector
from repro.core.features import FeatureConfig, VibrationFeatureExtractor
from repro.dsp.correlate import correlation_2d
from repro.dsp.stft import power_spectrogram
from repro.sensing.cross_domain import CrossDomainSensor
from repro.utils.rng import SeedLike, as_generator, child_rng
from repro.utils.validation import ensure_1d


@dataclass
class AudioDomainBaseline:
    """Correlates audio-domain spectrograms of the two recordings.

    Attributes
    ----------
    n_fft / hop_length:
        Audio STFT parameters.
    sample_rate:
        Audio sampling rate.
    """

    n_fft: int = 512
    hop_length: int = 256
    sample_rate: float = 16_000.0
    log_floor_db: float = -45.0

    def score(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
    ) -> float:
        """2-D correlation of normalized audio power spectrograms.

        Recordings are cross-correlation-synchronized first, exactly as
        in the full system, so the baseline differs only in the domain
        the correlation is computed in.
        """
        from repro.core.sync import synchronize_recordings

        va_aligned, wearable_aligned, _ = synchronize_recordings(
            va_audio, wearable_audio, self.sample_rate
        )
        features_va = self._features(va_aligned)
        features_wearable = self._features(wearable_aligned)
        return correlation_2d(features_va, features_wearable)

    def _features(self, audio: np.ndarray) -> np.ndarray:
        """Max-normalized log-power spectrogram, floored at the noise bed.

        Log compression keeps the correlation from being dominated by
        the handful of strongest low-frequency bins (which thru-barrier
        sounds share between devices).
        """
        samples = ensure_1d(audio, "audio")
        spectrogram = power_spectrogram(
            samples, n_fft=self.n_fft, hop_length=self.hop_length
        )
        peak = float(np.max(spectrogram))
        if peak > 0:
            spectrogram = spectrogram / peak
        log_spectrogram = 10.0 * np.log10(spectrogram + 1e-12)
        return np.maximum(log_spectrogram, self.log_floor_db)


@dataclass
class VibrationBaselineNoSelection:
    """Cross-domain detector without sensitive-phoneme selection.

    Synchronizes the recordings, then replays the *whole* voice command
    (weak and over-loud phonemes included) through the wearable and
    correlates the vibration features — the paper's "vibration-domain
    baseline" ablation.
    """

    sensor: CrossDomainSensor = field(default_factory=CrossDomainSensor)
    # The baseline uses the paper's plain Eq. (6) features (linear
    # max-normalized power spectrogram); the full system additionally
    # log-compresses as part of its vibration-domain normalization.
    feature_config: FeatureConfig = field(
        default_factory=lambda: FeatureConfig(
            log_compress=False, hop_length=32
        )
    )
    audio_rate: float = 16_000.0

    def __post_init__(self) -> None:
        from repro.core.sync import SyncConfig, synchronize_recordings

        self._extractor = VibrationFeatureExtractor(
            self.feature_config, sample_rate=self.sensor.vibration_rate
        )
        self._detector = CorrelationDetector()
        self._sync = synchronize_recordings
        self._sync_config = SyncConfig()

    def score(
        self,
        va_audio: np.ndarray,
        wearable_audio: np.ndarray,
        audio_rate: Optional[float] = None,
        rng: SeedLike = None,
    ) -> float:
        """Cross-domain correlation score on the full recordings."""
        generator = as_generator(rng)
        rate = audio_rate or self.audio_rate
        va_aligned, wearable_aligned, _ = self._sync(
            va_audio, wearable_audio, rate, self._sync_config
        )
        vibration_va = self.sensor.convert(
            va_aligned, rate, rng=child_rng(generator, "va")
        )
        vibration_wearable = self.sensor.convert(
            wearable_aligned, rate, rng=child_rng(generator, "wear")
        )
        features_va = self._extractor.extract(vibration_va)
        features_wearable = self._extractor.extract(vibration_wearable)
        return self._detector.score(features_va, features_wearable)
