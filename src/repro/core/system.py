"""Top-level defense system façade.

:class:`ThruBarrierDefense` packages the whole deployment story into one
object: train the segmenter, calibrate an operating threshold from
simulated traffic, and judge incoming voice commands — enforcing the
threat model's wearable-presence policy (commands are rejected outright
when the user's wearable is absent, as § II specifies).

This is the interface an integrator would use; the lower-level pieces
(:class:`~repro.core.pipeline.DefensePipeline` and friends) stay
available for research use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.calibration import (
    CalibrationReport,
    calibrate_eer,
    calibrate_max_fdr,
)
from repro.core.pipeline import DefensePipeline
from repro.core.segmentation import (
    PhonemeSegmenter,
    train_default_segmenter,
)
from repro.errors import CalibrationError, ConfigurationError
from repro.sensing.wearables import FOSSIL_GEN_5, WearableProfile
from repro.utils.rng import SeedLike, as_generator, child_rng


@dataclass(frozen=True)
class CommandJudgement:
    """The system's decision on one voice command.

    Attributes
    ----------
    accepted:
        Whether the command should be executed.
    reason:
        Human-readable explanation.
    score:
        Correlation score, when one was computed.
    """

    accepted: bool
    reason: str
    score: Optional[float] = None


class ThruBarrierDefense:
    """Deployable thru-barrier attack defense for one household.

    Parameters
    ----------
    wearable:
        The user's wearable hardware profile.
    seed:
        Master seed for segmenter training and internal draws.
    segmenter:
        Pre-trained segmenter; trained on construction when omitted.

    Examples
    --------
    >>> defense = ThruBarrierDefense(seed=3)       # doctest: +SKIP
    >>> defense.calibrate(legit_scores, attack_scores)  # doctest: +SKIP
    >>> defense.judge(va_rec, wearable_rec)        # doctest: +SKIP
    """

    def __init__(
        self,
        wearable: WearableProfile = FOSSIL_GEN_5,
        seed: SeedLike = None,
        segmenter: Optional[PhonemeSegmenter] = None,
    ) -> None:
        self._rng = as_generator(seed)
        self.wearable = wearable
        self.segmenter = segmenter or train_default_segmenter(
            seed=child_rng(self._rng, "segmenter")
        )
        self.pipeline = DefensePipeline(
            segmenter=self.segmenter,
            sensor=wearable.make_sensor(),
        )
        self._calibration: Optional[CalibrationReport] = None

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    @property
    def is_calibrated(self) -> bool:
        """Whether an operating threshold has been set."""
        return self._calibration is not None

    @property
    def calibration(self) -> CalibrationReport:
        """The active calibration (raises if not yet calibrated)."""
        if self._calibration is None:
            raise CalibrationError(
                "system is not calibrated; call calibrate() first"
            )
        return self._calibration

    def calibrate(
        self,
        legit_scores: Sequence[float],
        attack_scores: Sequence[float],
        max_fdr: Optional[float] = None,
    ) -> CalibrationReport:
        """Set the operating threshold from calibration scores.

        Uses the EER point by default, or a usability-first maximum
        false-detection rate when ``max_fdr`` is given.
        """
        if max_fdr is None:
            report = calibrate_eer(legit_scores, attack_scores)
        else:
            report = calibrate_max_fdr(
                legit_scores, attack_scores, max_fdr=max_fdr
            )
        self._calibration = report
        return report

    def set_threshold(self, threshold: float) -> None:
        """Install an externally chosen threshold."""
        if not -1.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must lie in [-1, 1], got {threshold}"
            )
        self._calibration = CalibrationReport(
            threshold=float(threshold),
            expected_fdr=float("nan"),
            expected_tdr=float("nan"),
            strategy="manual",
        )

    # ------------------------------------------------------------------
    # Judging commands
    # ------------------------------------------------------------------

    def score(
        self,
        va_recording: np.ndarray,
        wearable_recording: np.ndarray,
        rng: SeedLike = None,
    ) -> float:
        """Correlation score for one recording pair."""
        return self.pipeline.score(
            va_recording, wearable_recording, rng=rng
        )

    def judge(
        self,
        va_recording: Optional[np.ndarray],
        wearable_recording: Optional[np.ndarray],
        rng: SeedLike = None,
    ) -> CommandJudgement:
        """Decide whether a voice command should be executed.

        Implements the threat-model policy: a missing wearable (or
        missing wearable recording) rejects the command outright; an
        uncalibrated system refuses to accept anything.
        """
        if wearable_recording is None or (
            getattr(wearable_recording, "size", 0) == 0
        ):
            return CommandJudgement(
                accepted=False,
                reason="wearable absent: commands are rejected by "
                       "policy",
            )
        if va_recording is None or va_recording.size == 0:
            return CommandJudgement(
                accepted=False,
                reason="no VA recording available",
            )
        if not self.is_calibrated:
            return CommandJudgement(
                accepted=False,
                reason="system not calibrated; refusing open-loop "
                       "acceptance",
            )
        score = self.score(va_recording, wearable_recording, rng=rng)
        threshold = self.calibration.threshold
        if score < threshold:
            return CommandJudgement(
                accepted=False,
                reason=(
                    f"thru-barrier attack detected (score {score:.3f} "
                    f"< threshold {threshold:.3f})"
                ),
                score=score,
            )
        return CommandJudgement(
            accepted=True,
            reason=(
                f"vibration signatures consistent (score {score:.3f} "
                f">= threshold {threshold:.3f})"
            ),
            score=score,
        )

    def judge_repeated(
        self,
        recording_pairs: Sequence[tuple],
        rng: SeedLike = None,
    ) -> CommandJudgement:
        """Judge a command the user was asked to repeat.

        Averaging the correlation score over repeated utterances of the
        same command shrinks the score variance by ~1/sqrt(k) — a cheap
        robustness extension for borderline cases (e.g., quiet speech at
        5 m, Fig. 11(c)'s failure mode).
        """
        if not recording_pairs:
            raise ConfigurationError(
                "need at least one recording pair"
            )
        generator = as_generator(rng)
        scores = []
        for index, (va_recording, wearable_recording) in enumerate(
            recording_pairs
        ):
            single = self.judge(
                va_recording,
                wearable_recording,
                rng=child_rng(generator, f"rep-{index}"),
            )
            if single.score is None:
                return single  # Policy rejection propagates.
            scores.append(single.score)
        mean_score = float(np.mean(scores))
        threshold = self.calibration.threshold
        accepted = mean_score >= threshold
        return CommandJudgement(
            accepted=accepted,
            reason=(
                f"mean score over {len(scores)} repetitions "
                f"{mean_score:.3f} "
                f"{'>=' if accepted else '<'} threshold "
                f"{threshold:.3f}"
            ),
            score=mean_score,
        )
