"""Composable stage objects behind :class:`~repro.core.pipeline.DefensePipeline`.

The §IV-C architecture is a straight line — synchronize → segment →
sense → extract features → detect — and each arrow is one small object
here with a ``name`` and a ``run(context)`` method.  The pipeline
drives them through a single loop that owns timing, fallback
annotation, and :class:`~repro.runtime.events.StageEvent` emission, so
per-stage observability and degradation are uniform policies instead of
hand-rolled ``try/except`` blocks inside one long method.

A :class:`StageContext` carries the request through the line: the
immutable inputs, the pipeline's components, and the products each
stage leaves for the next.  Stages communicate *only* through the
context, which is what makes the batched path able to pre-seed
``segments`` from a shared vectorized forward and then run the very
same stage objects per request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.segmentation import concatenate_segments
from repro.core.sync import synchronize_recordings
from repro.errors import SignalError
from repro.phonemes.corpus import Utterance
from repro.utils.rng import child_rng

#: Fallback annotation when a request skipped segmentation because its
#: deadline had already expired (serving degradation).
FALLBACK_DEADLINE_SKIP = "deadline-skip"
#: Fallback annotation when segmentation yielded too little material
#: and the analysis used the full recordings instead.
FALLBACK_FULL_RECORDING = "full-recording"


@dataclass
class StageContext:
    """Mutable state threaded through the stage line for one request.

    ``pipeline`` exposes the components (segmenter, sensor, feature
    extractor, detector, config); everything else is either request
    input or a product written by an earlier stage.
    """

    pipeline: "object"
    va_audio: np.ndarray
    wearable_audio: np.ndarray
    generator: "object"
    oracle_utterance: Optional[Utterance] = None
    skip_segmentation: bool = False

    # -- products --------------------------------------------------------
    va_aligned: Optional[np.ndarray] = None
    wearable_aligned: Optional[np.ndarray] = None
    delay_s: float = 0.0
    #: ``None`` until segmentation ran; the batched path pre-seeds this
    #: from the shared vectorized forward.
    segments: Optional[List[Tuple[float, float]]] = None
    va_material: Optional[np.ndarray] = None
    wearable_material: Optional[np.ndarray] = None
    n_segments: int = 0
    #: Child RNG streams for the two sensing replays, pre-derived by the
    #: batched path (in the sequential order: ``replay-va`` then
    #: ``replay-wearable``) so a failed batched sensing pass can fall
    #: back to per-request conversion without perturbing the stream.
    sense_rng_va: Optional["object"] = None
    sense_rng_wearable: Optional["object"] = None
    #: ``None`` until sensing ran; the batched path pre-seeds these from
    #: the shared vectorized conversion.
    vibration_va: Optional[np.ndarray] = None
    vibration_wearable: Optional[np.ndarray] = None
    features_va: Optional[np.ndarray] = None
    features_wearable: Optional[np.ndarray] = None
    score: float = 0.0
    is_attack: Optional[bool] = None

    # -- bookkeeping the driver folds into StageEvents -------------------
    #: Extra seconds to attribute to a stage beyond its own wall time
    #: (this request's amortized share of a batched forward).
    extra_stage_s: Dict[str, float] = field(default_factory=dict)
    #: ``{stage: fallback-name}`` annotations recorded by stages.
    fallbacks: Dict[str, str] = field(default_factory=dict)


class Stage:
    """One named step of the defense line."""

    name: str = "stage"

    def run(self, ctx: StageContext) -> None:  # pragma: no cover
        raise NotImplementedError


def min_material_samples(pipeline) -> float:
    """Fewest VA-timeline audio samples worth sending downstream.

    Segment material must satisfy ``min_audio_s`` *and* survive
    cross-domain conversion with at least one full STFT window
    (``n_fft`` at the sensor's vibration rate); anything shorter raises
    in feature extraction, so the full-recording fallback is the right
    degradation for it.
    """
    config = pipeline.config
    return max(
        config.min_audio_s * config.audio_rate,
        config.features.n_fft
        * config.audio_rate
        / pipeline.sensor.vibration_rate,
    )


class SyncStage(Stage):
    """Cross-device synchronization of the two recordings."""

    name = "sync"

    def run(self, ctx: StageContext) -> None:
        config = ctx.pipeline.config
        ctx.va_aligned, ctx.wearable_aligned, ctx.delay_s = (
            synchronize_recordings(
                ctx.va_audio,
                ctx.wearable_audio,
                config.audio_rate,
                config.sync,
            )
        )


class SegmentStage(Stage):
    """Sensitive-phoneme segmentation plus material extraction.

    The ``segment`` timing has always covered finding the segments *and*
    cutting the material, so both live in one stage.  Respects segments
    pre-seeded by the batched path, annotates the deadline-skip and
    full-recording fallbacks, and raises :class:`SignalError` on empty
    recordings.
    """

    name = "segment"

    def run(self, ctx: StageContext) -> None:
        pipeline = ctx.pipeline
        if ctx.segments is None:
            if ctx.skip_segmentation:
                ctx.segments = []
                ctx.fallbacks[self.name] = FALLBACK_DEADLINE_SKIP
            else:
                ctx.segments = pipeline._find_segments(
                    ctx.va_aligned,
                    ctx.oracle_utterance,
                    segmenter=self._session_segmenter(ctx),
                )
        config = pipeline.config
        segments = ctx.segments
        if segments:
            va_material = concatenate_segments(
                ctx.va_aligned, segments, config.audio_rate
            )
            wearable_material = concatenate_segments(
                ctx.wearable_aligned, segments, config.audio_rate
            )
            if va_material.size >= min_material_samples(pipeline):
                ctx.va_material = va_material
                ctx.wearable_material = wearable_material
                ctx.n_segments = len(segments)
                return
            ctx.fallbacks[self.name] = FALLBACK_FULL_RECORDING
        if ctx.va_aligned.size == 0 or ctx.wearable_aligned.size == 0:
            raise SignalError("cannot analyze empty recordings")
        ctx.va_material = np.asarray(ctx.va_aligned)
        ctx.wearable_material = np.asarray(ctx.wearable_aligned)
        ctx.n_segments = 0

    @staticmethod
    def _session_segmenter(ctx: StageContext):
        """The segmenter this session's request should use.

        With subset hardening enabled and a subset-capable segmenter,
        a per-session random phoneme subset is drawn from the request's
        RNG stream (label ``harden-subset``) and applied through an
        O(1) clone.  Subset hardening acts on the alignment/selection
        layer, so it applies only where the sensitive set is consulted
        at inference time — the oracle-alignment path; the BLSTM's
        online frame classifier bakes the training-time set into its
        weights, and the rate-distortion backend has no phoneme notion
        at all.  Everywhere else the pipeline's own segmenter is
        returned and **no draw is consumed**, which also keeps
        sequential and batched analysis bitwise identical (batched
        pre-seeded segments never reach this hook).
        """
        pipeline = ctx.pipeline
        hardening = pipeline.config.hardening
        segmenter = pipeline.segmenter
        if (
            hardening is None
            or not hardening.randomizes_subset
            or segmenter is None
            or ctx.oracle_utterance is None
            or not hasattr(segmenter, "with_sensitive_subset")
        ):
            return segmenter
        subset = hardening.session_subset(
            segmenter.sensitive_phonemes,
            child_rng(ctx.generator, "harden-subset"),
        )
        return segmenter.with_sensitive_subset(subset)


class SenseStage(Stage):
    """Cross-domain sensing: audio material → wearable vibrations.

    Consumes the request's RNG streams in the library-wide order
    (``replay-va`` then ``replay-wearable``) — the determinism contract
    every caller relies on.
    """

    name = "sense"

    def run(self, ctx: StageContext) -> None:
        if (
            ctx.vibration_va is not None
            and ctx.vibration_wearable is not None
        ):
            # Pre-seeded by the batched sensing pass; the replay draws
            # were already consumed when its streams were derived.
            return
        pipeline = ctx.pipeline
        config = pipeline.config
        rng_va = ctx.sense_rng_va
        rng_wearable = ctx.sense_rng_wearable
        if rng_va is None or rng_wearable is None:
            rng_va = child_rng(ctx.generator, "replay-va")
            rng_wearable = child_rng(ctx.generator, "replay-wearable")
        ctx.vibration_va = pipeline.sensor.convert(
            ctx.va_material,
            config.audio_rate,
            rng=rng_va,
            include_body_motion=config.wearer_moving,
        )
        ctx.vibration_wearable = pipeline.sensor.convert(
            ctx.wearable_material,
            config.audio_rate,
            rng=rng_wearable,
            include_body_motion=config.wearer_moving,
        )


class FeatureStage(Stage):
    """Vibration feature extraction for both devices."""

    name = "features"

    def run(self, ctx: StageContext) -> None:
        extractor = ctx.pipeline._extractor
        ctx.features_va = extractor.extract(ctx.vibration_va)
        ctx.features_wearable = extractor.extract(ctx.vibration_wearable)


class DetectStage(Stage):
    """2-D correlation scoring and (when calibrated) the decision."""

    name = "detect"

    def run(self, ctx: StageContext) -> None:
        pipeline = ctx.pipeline
        ctx.score = pipeline.detector.score(
            ctx.features_va, ctx.features_wearable
        )
        if pipeline.config.detector.threshold is not None:
            detector = pipeline.detector
            hardening = pipeline.config.hardening
            if hardening is not None and hardening.randomizes_threshold:
                # Per-session jittered operating point; the draw comes
                # from the request's RNG stream (after the sense-stage
                # draws) so hardened runs stay seed-reproducible.
                detector = detector.with_randomized_threshold(
                    child_rng(ctx.generator, "harden-threshold"),
                    hardening.threshold_jitter,
                )
            ctx.is_attack = detector.decide(ctx.score)


def default_stages() -> Tuple[Stage, ...]:
    """The canonical stage line, in execution order."""
    return (
        SyncStage(),
        SegmentStage(),
        SenseStage(),
        FeatureStage(),
        DetectStage(),
    )


def stages_after_sync() -> Tuple[Stage, ...]:
    """The line minus synchronization (the batched path runs sync
    per request before the shared segmentation forward)."""
    return tuple(s for s in default_stages() if s.name != "sync")
