"""Training-free rate-distortion phoneme segmentation.

The defense is "training-free" everywhere except the BLSTM phoneme
segmenter — the sole reason the artifact store's cold-start machinery
exists.  This module removes that exception: a rate-distortion
agglomerative segmenter after Qiao et al. 2008 ("Unsupervised optimal
phoneme segmentation") finds phoneme-like boundaries with no model at
all, and a spectral rule then classifies each found segment as
barrier-effect sensitive or not using the same 0–900 Hz observation
that drives the paper's offline phoneme selection (§ V-A): sensitive
phonemes concentrate their energy in the low band that survives
barriers and excites the accelerometer, while the rejected fricatives
(/s/, /z/, /sh/, /th/) live above it.

Algorithm
---------
1. **Front end** — the same 14th-order MFCC frames as the BLSTM backend
   (25 ms window, 10 ms hop, 40 mel channels limited to 0–900 Hz).
2. **Agglomerative merging** — start from one segment per frame and
   repeatedly merge the adjacent pair with the smallest rate-distortion
   increase until the duration-derived segment budget is met.  The
   distortion of a segment ``[s, e)`` is ``(e - s) · log det(I + Σ)``
   with ``Σ`` the segment's feature covariance.  First and second
   cumulative moments (prefix sums of ``x`` and ``x xᵀ``) make any
   segment's mean/covariance an O(1) array expression, so each merge
   step is a constant number of vectorized NumPy ops — batched
   ``slogdet`` over the touched candidates, no per-boundary Python
   loops over frames.
3. **Sensitivity rule** — per frame, the fraction of (full-band)
   spectral power below ``low_band_hz`` gated by a soft speech-activity
   weight; per segment, the mean frame score.  Frames inherit their
   segment's pooled score, which is what
   :meth:`RateDistortionSegmenter.frame_probabilities` reports, so the
   probability → mask → segments path is shared with the BLSTM backend
   (:func:`repro.core.segmenter.mask_to_segments`).

Zero training runs: constructing and using this backend never touches
:func:`repro.core.segmentation.training_run_count`, which is how the
serving layer's instant spin-up contract is pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.segmenter import mask_to_segments
from repro.dsp.mel import mfcc
from repro.dsp.windows import frame_signal, get_window
from repro.errors import ConfigurationError
from repro.utils.validation import ensure_1d


@dataclass
class RateDistortionConfig:
    """Parameters of the rate-distortion backend.

    Attributes
    ----------
    n_mfcc / n_filters / frame_length_s / hop_length_s / mfcc_high_hz:
        MFCC front end — identical defaults to
        :class:`~repro.core.segmentation.SegmenterConfig` so the two
        backends see the same frames.
    target_segment_s:
        Expected phoneme duration; the agglomerative merge stops at
        ``round(duration / target_segment_s)`` segments.
    covariance_ridge:
        Diagonal regularizer added to segment covariances before the
        log-determinant (numerical stability for near-degenerate
        segments).
    low_band_hz:
        Band edge of the sensitivity rule: the fraction of spectral
        power at or below this frequency is the frame's raw score.
    activity_range_db:
        Frames quieter than the recording's loudest frame by more than
        this are soft-gated toward zero (silence must not classify as
        sensitive).
    activity_softness_db:
        Width of the soft activity gate (a logistic in dB).
    decision_threshold:
        Pooled segment score at or above which a segment counts as
        sensitive.
    min_segment_s / merge_gap_s:
        Post-processing, as in the BLSTM backend: merge nearby runs,
        drop spurious short ones.
    """

    n_mfcc: int = 14
    n_filters: int = 40
    frame_length_s: float = 0.025
    hop_length_s: float = 0.010
    mfcc_high_hz: float = 900.0
    target_segment_s: float = 0.08
    covariance_ridge: float = 1e-6
    low_band_hz: float = 900.0
    activity_range_db: float = 25.0
    activity_softness_db: float = 3.0
    decision_threshold: float = 0.5
    min_segment_s: float = 0.03
    merge_gap_s: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.decision_threshold < 1.0:
            raise ConfigurationError(
                "decision_threshold must lie in (0, 1)"
            )
        if self.target_segment_s <= 0:
            raise ConfigurationError("target_segment_s must be > 0")
        if self.covariance_ridge < 0:
            raise ConfigurationError("covariance_ridge must be >= 0")
        if self.min_segment_s < 0 or self.merge_gap_s < 0:
            raise ConfigurationError("durations must be >= 0")
        if self.activity_range_db <= 0 or self.activity_softness_db <= 0:
            raise ConfigurationError("activity gate widths must be > 0")


class RateDistortionSegmenter:
    """Training-free sensitive-phoneme segmenter (Qiao et al. 2008).

    Satisfies the :class:`~repro.core.segmenter.Segmenter` protocol.
    Construction is O(1): there is nothing to train, nothing to load,
    and nothing for the artifact store to persist — the configuration
    *is* the model, which is why store fingerprints for this backend
    are config-only.

    Parameters
    ----------
    config:
        Algorithm parameters.
    sample_rate:
        Audio sampling rate.
    """

    def __init__(
        self,
        config: Optional[RateDistortionConfig] = None,
        sample_rate: float = 16_000.0,
    ) -> None:
        self.config = config or RateDistortionConfig()
        if sample_rate <= 0:
            raise ConfigurationError("sample_rate must be > 0")
        self.sample_rate = float(sample_rate)

    # ------------------------------------------------------------------
    # Front end
    # ------------------------------------------------------------------

    def features(self, audio: np.ndarray) -> np.ndarray:
        """MFCC frame features (same framing as the BLSTM backend)."""
        samples = ensure_1d(audio, "audio")
        config = self.config
        return mfcc(
            samples,
            self.sample_rate,
            n_mfcc=config.n_mfcc,
            n_filters=config.n_filters,
            frame_length_s=config.frame_length_s,
            hop_length_s=config.hop_length_s,
            high_hz=config.mfcc_high_hz,
        )

    def frame_times(self, n_frames: int) -> np.ndarray:
        """Center time (s) of each analysis frame."""
        config = self.config
        return (
            np.arange(n_frames) * config.hop_length_s
            + config.frame_length_s / 2.0
        )

    def _frame_power(self, audio: np.ndarray) -> np.ndarray:
        """Full-band power spectra, one row per MFCC frame.

        Mirrors the framing of :func:`repro.dsp.mel.mfcc` exactly
        (same frame/hop/padding/window/FFT length) so the sensitivity
        rule is aligned frame-for-frame with the RD features.
        """
        samples = ensure_1d(audio, "audio")
        config = self.config
        frame_length = max(
            int(round(config.frame_length_s * self.sample_rate)), 1
        )
        hop_length = max(
            int(round(config.hop_length_s * self.sample_rate)), 1
        )
        frames = frame_signal(
            samples, frame_length, hop_length, pad_final=True
        )
        tapered = frames * get_window("hamming", frame_length)[np.newaxis, :]
        n_fft = 1
        while n_fft < frame_length:
            n_fft *= 2
        spectrum = np.fft.rfft(tapered, n=n_fft, axis=1)
        return spectrum.real**2 + spectrum.imag**2

    # ------------------------------------------------------------------
    # Rate-distortion agglomerative merging
    # ------------------------------------------------------------------

    @staticmethod
    def _cumulative_moments(
        features: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Prefix sums of first and second feature moments.

        ``g1[i]`` is the sum of the first ``i`` feature vectors and
        ``g2[i]`` the sum of their outer products, so any segment's
        mean and covariance are O(1) differences of two prefix rows.
        """
        n_frames, dim = features.shape
        g1 = np.zeros((n_frames + 1, dim))
        np.cumsum(features, axis=0, out=g1[1:])
        outer = features[:, :, np.newaxis] * features[:, np.newaxis, :]
        g2 = np.zeros((n_frames + 1, dim, dim))
        np.cumsum(outer, axis=0, out=g2[1:])
        return g1, g2

    def _segment_distortions(
        self,
        g1: np.ndarray,
        g2: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
    ) -> np.ndarray:
        """Rate-distortion ``len · log det(I + Σ)`` of many segments.

        ``starts``/``ends`` are parallel arrays of frame boundaries
        (``start < end``); the whole batch is one stacked ``slogdet``.
        """
        starts = np.asarray(starts, dtype=np.intp)
        ends = np.asarray(ends, dtype=np.intp)
        lengths = (ends - starts).astype(np.float64)
        mean = (g1[ends] - g1[starts]) / lengths[:, np.newaxis]
        cov = (
            (g2[ends] - g2[starts]) / lengths[:, np.newaxis, np.newaxis]
            - mean[:, :, np.newaxis] * mean[:, np.newaxis, :]
        )
        dim = g1.shape[1]
        eye = np.eye(dim) * (1.0 + self.config.covariance_ridge)
        _, logdet = np.linalg.slogdet(eye + cov)
        # I + Σ has determinant >= 1 for PSD Σ; numerical noise can dip
        # a hair below, never below zero distortion.
        return lengths * np.maximum(logdet, 0.0)

    def boundaries(self, features: np.ndarray) -> np.ndarray:
        """Frame indices of the merged segment boundaries.

        Returns a sorted array ``[0, b_1, ..., n_frames]`` delimiting
        ``k = max(1, round(duration / target_segment_s))`` segments
        (fewer when the recording has fewer frames).
        """
        n_frames = features.shape[0]
        if n_frames == 0:
            return np.array([0], dtype=np.intp)
        duration_s = n_frames * self.config.hop_length_s
        k = int(round(duration_s / self.config.target_segment_s))
        k = max(1, min(k, n_frames))
        g1, g2 = self._cumulative_moments(features)
        bounds = np.arange(n_frames + 1, dtype=np.intp)
        # Distortion of each current segment, and of each candidate
        # merge of two adjacent segments.  After a merge only the two
        # candidates touching the merged segment change, so the loop
        # does O(1) slogdets per iteration.
        seg_rd = self._segment_distortions(g1, g2, bounds[:-1], bounds[1:])
        pair_rd = self._segment_distortions(g1, g2, bounds[:-2], bounds[2:])
        while bounds.size - 1 > k:
            costs = pair_rd - seg_rd[:-1] - seg_rd[1:]
            index = int(np.argmin(costs))
            merged_rd = pair_rd[index]
            bounds = np.delete(bounds, index + 1)
            seg_rd = np.delete(seg_rd, index + 1)
            seg_rd[index] = merged_rd
            pair_rd = np.delete(pair_rd, index)
            touched = [
                j for j in (index - 1, index) if 0 <= j <= bounds.size - 3
            ]
            if touched:
                touched = np.asarray(touched, dtype=np.intp)
                pair_rd[touched] = self._segment_distortions(
                    g1, g2, bounds[touched], bounds[touched + 2]
                )
        return bounds

    # ------------------------------------------------------------------
    # Sensitivity scoring
    # ------------------------------------------------------------------

    def _frame_scores(self, audio: np.ndarray) -> np.ndarray:
        """Per-frame sensitivity score in ``[0, 1]``.

        Low-band power fraction (the barrier-surviving band) weighted
        by a soft speech-activity gate relative to the recording's
        loudest frame.
        """
        config = self.config
        power = self._frame_power(audio)
        n_fft = 2 * (power.shape[1] - 1)
        frequencies = np.fft.rfftfreq(n_fft, d=1.0 / self.sample_rate)
        total = power.sum(axis=1)
        low = power[:, frequencies <= config.low_band_hz].sum(axis=1)
        low_ratio = low / np.maximum(total, 1e-30)
        energy_db = 10.0 * np.log10(np.maximum(total, 1e-30))
        gate_db = energy_db.max() - config.activity_range_db
        activity = 1.0 / (
            1.0
            + np.exp(
                -(energy_db - gate_db) / config.activity_softness_db
            )
        )
        return low_ratio * activity

    # ------------------------------------------------------------------
    # Segmenter protocol
    # ------------------------------------------------------------------

    def frame_probabilities(
        self, audio: np.ndarray, dtype=None
    ) -> np.ndarray:
        """Per-frame probability that the frame is an effective phoneme.

        Each frame inherits the pooled score of its rate-distortion
        segment, so thresholding these probabilities reproduces the
        per-segment sensitive/non-sensitive decision.  ``dtype`` is
        accepted for protocol compatibility; the computation is always
        float64 (there is no reduced-precision model to opt into).
        """
        features = self.features(audio)
        scores = self._frame_scores(audio)
        bounds = self.boundaries(features)
        probabilities = np.empty(features.shape[0], dtype=np.float64)
        for start, end in zip(bounds[:-1], bounds[1:]):
            probabilities[start:end] = float(
                np.mean(scores[start:end])
            )
        return probabilities

    def frame_probabilities_batch(
        self, audios: Sequence[np.ndarray], dtype=None
    ) -> List[np.ndarray]:
        """Batched :meth:`frame_probabilities`; exact per-element parity.

        The agglomerative merge has no cross-recording state to share,
        so the batched path is the sequential path — parity is
        definitional, not a tolerance.
        """
        return [
            self.frame_probabilities(audio, dtype=dtype)
            for audio in audios
        ]

    def classify_segment(self, audio: np.ndarray) -> bool:
        """Classify one phoneme sound segment as effective or not."""
        scores = self._frame_scores(audio)
        return bool(
            float(np.mean(scores)) >= self.config.decision_threshold
        )

    def segments(self, audio: np.ndarray) -> List[Tuple[float, float]]:
        """Detected sensitive-phoneme segments as (start_s, end_s) pairs."""
        config = self.config
        duration_s = ensure_1d(audio, "audio").size / self.sample_rate
        mask = (
            self.frame_probabilities(audio) >= config.decision_threshold
        )
        return mask_to_segments(
            mask,
            hop_s=config.hop_length_s,
            frame_length_s=config.frame_length_s,
            duration_s=duration_s,
            merge_gap_s=config.merge_gap_s,
            min_segment_s=config.min_segment_s,
        )

    def segments_batch(
        self, audios: Sequence[np.ndarray], dtype=None
    ) -> List[List[Tuple[float, float]]]:
        """Batched :meth:`segments`; exact per-element parity."""
        return [self.segments(audio) for audio in audios]
