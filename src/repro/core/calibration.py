"""Detection-threshold calibration.

The detector is training-free, but deployments still need an operating
threshold.  This module calibrates one from score samples: at the EER
point (balanced errors), at a target false-detection rate (usability
first), or at a target true-detection rate (security first) — and can
produce a thresholded pipeline directly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.eval.metrics import eer_from_scores


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of a threshold calibration.

    Attributes
    ----------
    threshold:
        The chosen detection threshold (scores below ⇒ attack).
    expected_fdr:
        False-detection rate on the calibration legitimate scores.
    expected_tdr:
        True-detection rate on the calibration attack scores.
    strategy:
        Which calibration rule produced it.
    """

    threshold: float
    expected_fdr: float
    expected_tdr: float
    strategy: str

    def __str__(self) -> str:
        return (
            f"threshold {self.threshold:.3f} ({self.strategy}): "
            f"FDR {self.expected_fdr * 100:.1f}%, "
            f"TDR {self.expected_tdr * 100:.1f}%"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict; exact, because Python's JSON round-trips
        float64 values losslessly via shortest-repr."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CalibrationReport":
        """Inverse of :meth:`to_dict` (artifact-store load path)."""
        try:
            return cls(
                threshold=float(payload["threshold"]),
                expected_fdr=float(payload["expected_fdr"]),
                expected_tdr=float(payload["expected_tdr"]),
                strategy=str(payload["strategy"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CalibrationError(
                f"malformed calibration payload: {error}"
            ) from None


def _rates(
    legit: np.ndarray, attack: np.ndarray, threshold: float
) -> tuple:
    fdr = float((legit < threshold).mean())
    tdr = float((attack < threshold).mean())
    return fdr, tdr


def _validate(scores: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(scores, dtype=np.float64).ravel()
    if array.size == 0:
        raise CalibrationError(f"{name} scores must be non-empty")
    if not np.all(np.isfinite(array)):
        raise CalibrationError(f"{name} scores must be finite")
    return array


def calibrate_eer(
    legit_scores: Sequence[float],
    attack_scores: Sequence[float],
) -> CalibrationReport:
    """Threshold at the equal-error-rate operating point."""
    legit = _validate(legit_scores, "legit")
    attack = _validate(attack_scores, "attack")
    _, threshold = eer_from_scores(legit, attack)
    fdr, tdr = _rates(legit, attack, threshold)
    return CalibrationReport(
        threshold=threshold,
        expected_fdr=fdr,
        expected_tdr=tdr,
        strategy="equal error rate",
    )


def calibrate_max_fdr(
    legit_scores: Sequence[float],
    attack_scores: Sequence[float],
    max_fdr: float = 0.05,
) -> CalibrationReport:
    """Largest threshold keeping the false-detection rate ≤ ``max_fdr``.

    Usability-first: legitimate commands are rejected at most
    ``max_fdr`` of the time; detection power follows from the scores.
    """
    if not 0.0 <= max_fdr <= 1.0:
        raise CalibrationError(
            f"max_fdr must be in [0, 1], got {max_fdr}"
        )
    legit = _validate(legit_scores, "legit")
    attack = _validate(attack_scores, "attack")
    # The largest threshold rejecting at most max_fdr legit samples.
    ordered = np.sort(legit)
    allowed = int(np.floor(max_fdr * ordered.size))
    threshold = float(ordered[allowed]) if allowed < ordered.size else (
        float(ordered[-1]) + 1e-6
    )
    fdr, tdr = _rates(legit, attack, threshold)
    if fdr > max_fdr + 1e-12:
        # Step just below the offending sample.
        threshold = np.nextafter(threshold, -np.inf)
        fdr, tdr = _rates(legit, attack, threshold)
    return CalibrationReport(
        threshold=threshold,
        expected_fdr=fdr,
        expected_tdr=tdr,
        strategy=f"max FDR {max_fdr:.2%}",
    )


def calibrate_min_tdr(
    legit_scores: Sequence[float],
    attack_scores: Sequence[float],
    min_tdr: float = 0.95,
) -> CalibrationReport:
    """Smallest threshold catching at least ``min_tdr`` of attacks.

    Security-first: at least ``min_tdr`` of calibration attacks fall
    below the threshold; false alarms follow from the scores.
    """
    if not 0.0 <= min_tdr <= 1.0:
        raise CalibrationError(
            f"min_tdr must be in [0, 1], got {min_tdr}"
        )
    legit = _validate(legit_scores, "legit")
    attack = _validate(attack_scores, "attack")
    ordered = np.sort(attack)
    needed = int(np.ceil(min_tdr * ordered.size))
    if needed == 0:
        threshold = float(ordered[0]) - 1e-6
    else:
        # Threshold just above the needed-th lowest attack score, so at
        # least `needed` attacks fall below it.
        threshold = float(
            np.nextafter(ordered[needed - 1], np.inf)
        )
    fdr, tdr = _rates(legit, attack, threshold)
    return CalibrationReport(
        threshold=threshold,
        expected_fdr=fdr,
        expected_tdr=tdr,
        strategy=f"min TDR {min_tdr:.2%}",
    )
