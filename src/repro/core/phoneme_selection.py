"""Offline barrier-effect-sensitive phoneme selection (paper § V-A).

The selector replays each common phoneme through the attack chain (with a
barrier) and the legitimate chain (without), converts the recordings to
the vibration domain, and computes the third-quartile FFT magnitude
profile ``Q3(p, f)`` per phoneme over the population of renditions.  Two
criteria then pick the sensitive set:

* **Criterion I** — thru-barrier: ``max_f Q3_adv(p, f) < alpha``; the
  phoneme must *not* trigger the accelerometer after passing a barrier.
* **Criterion II** — direct: ``min_f Q3_user(p, f) > alpha``; the phoneme
  must reliably trigger the accelerometer when not blocked.

The sensitive set is the intersection.  With the default simulation
parameters the selector reproduces the paper's outcome: 31 of the 37
common phonemes survive; /s/, /z/, /sh/, /th/ fail Criterion II and
/aa/, /ao/ fail Criterion I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acoustics.loudspeaker import SOUND_BAR
from repro.acoustics.materials import BarrierMaterial, GLASS_WINDOW
from repro.acoustics.microphone import Microphone, SMART_SPEAKER_MIC
from repro.acoustics.spl import db_to_gain
from repro.channels import (
    AirPropagationStage,
    BarrierStage,
    LoudspeakerStage,
    PropagationChannel,
)
from repro.core.hardening import sample_subset
from repro.dsp.quantiles import spectral_quartile_profile
from repro.errors import ConfigurationError
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.inventory import COMMON_PHONEMES
from repro.sensing.cross_domain import CrossDomainSensor
from repro.utils.rng import SeedLike, as_generator, child_rng, derive_seed


@dataclass
class PhonemeSelectionConfig:
    """Parameters of the offline selection study.

    Attributes
    ----------
    alpha:
        FFT-magnitude threshold separating "triggers the accelerometer"
        from ambient noise (the paper empirically uses 0.015 in its
        measurement units; the default here is calibrated to the
        simulated sensing chain's units the same way).
    playback_spl_db:
        Speech level at which phoneme populations are played (paper: 75
        and 85 dB; profiles are pooled over these levels).
    playback_spl_db_high:
        Second, louder playback level pooled into the study.
    n_segments:
        Renditions per phoneme (paper: 100 from ten speakers).
    barrier_to_mic_m:
        Distance from barrier/source to the recording device (paper: 2 m).
    band_low_hz / band_high_hz:
        Vibration-domain band over which the criteria are evaluated; the
        lowest bins are excluded because the DC-sensitivity artifact
        lives there (the paper's Fig. 6 plots 20–80 Hz).
    n_fft:
        FFT length for the vibration spectra.
    """

    alpha: float = 0.009
    playback_spl_db: float = 75.0
    playback_spl_db_high: float = 85.0
    n_segments: int = 40
    segment_duration_s: float = 0.35
    barrier_to_mic_m: float = 2.0
    band_low_hz: float = 20.0
    band_high_hz: float = 80.0
    n_fft: int = 128

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be > 0")
        if self.n_segments <= 0:
            raise ConfigurationError("n_segments must be > 0")
        if not 0 <= self.band_low_hz < self.band_high_hz:
            raise ConfigurationError("need 0 <= band_low_hz < band_high_hz")


@dataclass(frozen=True)
class PhonemeProfile:
    """Q3 vibration profiles of one phoneme, with and without barrier."""

    symbol: str
    frequencies: np.ndarray
    q3_thru_barrier: np.ndarray
    q3_direct: np.ndarray

    def max_thru_barrier(self) -> float:
        """``max_f Q3_adv`` — the Criterion I statistic."""
        return float(np.max(self.q3_thru_barrier))

    def min_direct(self) -> float:
        """``min_f Q3_user`` — the Criterion II statistic."""
        return float(np.min(self.q3_direct))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (float lists round-trip float64 exactly)."""
        return {
            "symbol": self.symbol,
            "frequencies": self.frequencies.tolist(),
            "q3_thru_barrier": self.q3_thru_barrier.tolist(),
            "q3_direct": self.q3_direct.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PhonemeProfile":
        """Inverse of :meth:`to_dict` (artifact-store load path)."""
        return cls(
            symbol=str(payload["symbol"]),
            frequencies=np.asarray(payload["frequencies"], dtype=np.float64),
            q3_thru_barrier=np.asarray(
                payload["q3_thru_barrier"], dtype=np.float64
            ),
            q3_direct=np.asarray(payload["q3_direct"], dtype=np.float64),
        )


@dataclass(frozen=True)
class PhonemeSelectionResult:
    """Outcome of the offline selection study."""

    selected: Tuple[str, ...]
    satisfies_criterion_1: Tuple[str, ...]
    satisfies_criterion_2: Tuple[str, ...]
    profiles: Dict[str, PhonemeProfile]
    alpha: float

    @property
    def rejected(self) -> Tuple[str, ...]:
        """Common phonemes that failed at least one criterion."""
        return tuple(
            symbol for symbol in self.profiles
            if symbol not in self.selected
        )

    def session_subset(
        self,
        nonce: SeedLike,
        fraction: float = 0.6,
        min_size: int = 4,
    ) -> Tuple[str, ...]:
        """A per-session random subset of the sensitive set.

        The randomized-defense entry point
        (:class:`~repro.core.hardening.HardeningConfig`): each
        verification session derives its analyzed phoneme subset from a
        session ``nonce``, so an attacker optimizing its waveform
        against one session's subset faces a different subset — and a
        shifted score surface — on the next.  The draw is keyed on the
        nonce through :func:`~repro.utils.rng.derive_seed`, so the same
        nonce always selects the same subset on every process.
        """
        if not self.selected:
            raise ConfigurationError(
                "selection result has no sensitive phonemes to sample"
            )
        rng = np.random.default_rng(
            derive_seed(nonce, "phoneme-session-subset")
        )
        subset = sample_subset(self.selected, fraction, min_size, rng)
        return tuple(
            symbol for symbol in self.selected if symbol in subset
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of the full study outcome."""
        return {
            "selected": list(self.selected),
            "satisfies_criterion_1": list(self.satisfies_criterion_1),
            "satisfies_criterion_2": list(self.satisfies_criterion_2),
            "profiles": {
                symbol: profile.to_dict()
                for symbol, profile in self.profiles.items()
            },
            "alpha": self.alpha,
        }

    @classmethod
    def from_dict(
        cls, payload: Dict[str, object]
    ) -> "PhonemeSelectionResult":
        """Inverse of :meth:`to_dict` (artifact-store load path)."""
        profiles = {
            symbol: PhonemeProfile.from_dict(profile)
            for symbol, profile in dict(payload["profiles"]).items()
        }
        return cls(
            selected=tuple(payload["selected"]),
            satisfies_criterion_1=tuple(payload["satisfies_criterion_1"]),
            satisfies_criterion_2=tuple(payload["satisfies_criterion_2"]),
            profiles=profiles,
            alpha=float(payload["alpha"]),
        )


class PhonemeSelector:
    """Runs the offline barrier-effect-sensitive phoneme selection.

    Parameters
    ----------
    corpus:
        Source of phoneme renditions (defaults to a ten-speaker synthetic
        corpus, mirroring the paper's five-male/five-female study).
    sensor:
        Cross-domain sensor used to produce vibration signals.
    barrier_material:
        Barrier used for the Criterion I (thru-barrier) condition.
    config:
        Study parameters.

    Examples
    --------
    >>> selector = PhonemeSelector(seed=3)
    >>> result = selector.run(["ae", "s"])  # doctest: +SKIP
    """

    def __init__(
        self,
        corpus: Optional[SyntheticCorpus] = None,
        sensor: Optional[CrossDomainSensor] = None,
        barrier_material: BarrierMaterial = GLASS_WINDOW,
        config: Optional[PhonemeSelectionConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        self._rng = as_generator(seed)
        self.corpus = corpus or SyntheticCorpus(
            n_speakers=10, seed=child_rng(self._rng, "corpus")
        )
        self.sensor = sensor or CrossDomainSensor()
        self.barrier_material = barrier_material
        self.config = config or PhonemeSelectionConfig()
        air = AirPropagationStage(self.config.barrier_to_mic_m)
        self._thru_channel = PropagationChannel(
            (
                LoudspeakerStage(SOUND_BAR),
                BarrierStage(material=barrier_material),
                air,
            ),
            name="selection-thru",
        )
        self._direct_channel = PropagationChannel(
            (LoudspeakerStage(SOUND_BAR), air),
            name="selection-direct",
        )
        self._microphone = Microphone(SMART_SPEAKER_MIC)

    def run(
        self,
        symbols: Optional[Sequence[str]] = None,
    ) -> PhonemeSelectionResult:
        """Execute the study over ``symbols`` (default: the 37 common).

        Returns the sensitive set (Criterion I ∩ Criterion II) along with
        per-phoneme Q3 profiles for inspection (Fig. 6).
        """
        if symbols is None:
            symbols = list(COMMON_PHONEMES)
        config = self.config
        profiles: Dict[str, PhonemeProfile] = {}
        criterion_1: List[str] = []
        criterion_2: List[str] = []
        for symbol in symbols:
            profile = self._profile_phoneme(symbol)
            profiles[symbol] = profile
            if profile.max_thru_barrier() < config.alpha:
                criterion_1.append(symbol)
            if profile.min_direct() > config.alpha:
                criterion_2.append(symbol)
        selected = tuple(
            symbol for symbol in symbols
            if symbol in set(criterion_1) and symbol in set(criterion_2)
        )
        return PhonemeSelectionResult(
            selected=selected,
            satisfies_criterion_1=tuple(criterion_1),
            satisfies_criterion_2=tuple(criterion_2),
            profiles=profiles,
            alpha=config.alpha,
        )

    def profile(self, symbol: str) -> PhonemeProfile:
        """Q3 vibration profiles of one phoneme (used for Fig. 6)."""
        return self._profile_phoneme(symbol)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _profile_phoneme(self, symbol: str) -> PhonemeProfile:
        config = self.config
        segments = self.corpus.phoneme_population(
            symbol, config.n_segments,
            rng=child_rng(self._rng, f"select-{symbol}"),
            duration_s=config.segment_duration_s,
        )
        rng = child_rng(self._rng, f"chain-{symbol}")
        vib_thru: List[np.ndarray] = []
        vib_direct: List[np.ndarray] = []
        levels = (config.playback_spl_db, config.playback_spl_db_high)
        for index, segment in enumerate(segments):
            level = levels[index % len(levels)]
            gain = db_to_gain(level - 65.0)
            source = segment.waveform * gain
            sample_rate = segment.sample_rate

            # The barrier stage is PASSTHROUGH, so the channel hands it
            # this exact generator — the pre-refactor ``bar{index}``
            # resonance stream.  The direct channel draws nothing.
            thru_at_mic = self._thru_channel.apply(
                source, sample_rate, rng=child_rng(rng, f"bar{index}")
            )
            direct_at_mic = self._direct_channel.apply(
                source, sample_rate, rng=None
            )
            recorded_thru = self._microphone.capture(
                thru_at_mic, sample_rate, rng=child_rng(rng, f"mt{index}")
            )
            recorded_direct = self._microphone.capture(
                direct_at_mic, sample_rate, rng=child_rng(rng, f"md{index}")
            )
            vib_thru.append(
                self.sensor.convert(
                    recorded_thru, sample_rate,
                    rng=child_rng(rng, f"vt{index}"),
                )
            )
            vib_direct.append(
                self.sensor.convert(
                    recorded_direct, sample_rate,
                    rng=child_rng(rng, f"vd{index}"),
                )
            )

        vibration_rate = self.sensor.vibration_rate
        frequencies, q3_thru = spectral_quartile_profile(
            vib_thru, vibration_rate, config.n_fft
        )
        _, q3_direct = spectral_quartile_profile(
            vib_direct, vibration_rate, config.n_fft
        )
        band = (frequencies >= config.band_low_hz) & (
            frequencies <= config.band_high_hz
        )
        return PhonemeProfile(
            symbol=symbol,
            frequencies=frequencies[band],
            q3_thru_barrier=q3_thru[band],
            q3_direct=q3_direct[band],
        )
