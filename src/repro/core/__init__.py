"""Core defense system — the paper's primary contribution.

Contains the training-free thru-barrier attack detector: cross-device
synchronization, offline barrier-effect-sensitive phoneme selection,
BRNN-based phoneme segmentation, vibration-domain feature extraction, and
the 2-D-correlation detector, plus the audio-domain and
vibration-without-selection baselines used in the paper's evaluation.
"""

from repro.core.phoneme_selection import (
    PhonemeSelectionConfig,
    PhonemeSelectionResult,
    PhonemeSelector,
)
from repro.core.features import (
    FeatureConfig,
    VibrationFeatureExtractor,
)
from repro.core.detector import (
    CorrelationDetector,
    DetectorConfig,
)
from repro.core.hardening import HardeningConfig, sample_subset
from repro.core.sync import SyncConfig, synchronize_recordings
from repro.core.segmenter import (
    PersistentSegmenter,
    Segmenter,
    mask_to_segments,
)
from repro.core.segmentation import (
    PhonemeSegmenter,
    SegmenterConfig,
    concatenate_segments,
)
from repro.core.rate_distortion import (
    RateDistortionConfig,
    RateDistortionSegmenter,
)
from repro.core.baselines import (
    AudioDomainBaseline,
    VibrationBaselineNoSelection,
)
from repro.core.pipeline import DefenseConfig, DefensePipeline, DefenseVerdict
from repro.core.stages import (
    DetectStage,
    FeatureStage,
    SegmentStage,
    SenseStage,
    Stage,
    StageContext,
    SyncStage,
    default_stages,
)
from repro.core.calibration import (
    CalibrationReport,
    calibrate_eer,
    calibrate_max_fdr,
    calibrate_min_tdr,
)
from repro.core.system import CommandJudgement, ThruBarrierDefense

__all__ = [
    "PhonemeSelectionConfig",
    "PhonemeSelectionResult",
    "PhonemeSelector",
    "FeatureConfig",
    "VibrationFeatureExtractor",
    "CorrelationDetector",
    "DetectorConfig",
    "HardeningConfig",
    "sample_subset",
    "SyncConfig",
    "synchronize_recordings",
    "PersistentSegmenter",
    "Segmenter",
    "mask_to_segments",
    "PhonemeSegmenter",
    "SegmenterConfig",
    "concatenate_segments",
    "RateDistortionConfig",
    "RateDistortionSegmenter",
    "AudioDomainBaseline",
    "VibrationBaselineNoSelection",
    "DefenseConfig",
    "DefensePipeline",
    "DefenseVerdict",
    "Stage",
    "StageContext",
    "SyncStage",
    "SegmentStage",
    "SenseStage",
    "FeatureStage",
    "DetectStage",
    "default_stages",
    "CalibrationReport",
    "calibrate_eer",
    "calibrate_max_fdr",
    "calibrate_min_tdr",
    "CommandJudgement",
    "ThruBarrierDefense",
]
