"""Detector hardening against adaptive (optimizing) attackers.

The paper's detector is deterministic: a fixed threshold on the 2-D
correlation score over a fixed sensitive-phoneme set.  An attacker who
can query the deployed system (`repro.redteam`) will happily exploit
that determinism — shaping its waveform until the score sits just above
the threshold, then replaying the shaped attack forever.  This module
adds the two randomized counter-measures evaluated by the red-team
suite:

* **Threshold randomization** — each session decides against
  ``threshold + U(-jitter, +jitter)`` instead of the fixed calibration
  point.  A static attack far below the threshold stays detected; an
  optimized attack hugging the boundary is caught on a fraction of
  sessions proportional to how thin its margin is.
* **Per-session phoneme-subset selection** — each session analyzes a
  random subset of the sensitive phoneme set (derived from the session
  nonce through :meth:`repro.core.PhonemeSelectionResult.session_subset`
  or directly from the request RNG stream).  An attack optimized
  against one subset transfers poorly to the next session's subset,
  and the attacker's queries see a noisier objective.

Both knobs are carried by :class:`HardeningConfig`, attached to
:class:`~repro.core.pipeline.DefenseConfig` and surfaced through the
serving spec so hardened and unhardened detectors can be A/B'd.  When
``hardening`` is ``None`` (the default) the pipeline consumes **zero**
extra RNG draws — existing determinism contracts are untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable

import numpy as np

from repro.errors import ConfigurationError


def sample_subset(
    symbols: Iterable[str],
    fraction: float,
    min_size: int,
    rng: np.random.Generator,
) -> FrozenSet[str]:
    """Draw a random subset of ``symbols`` of relative size ``fraction``.

    The candidate pool is sorted before sampling so the draw depends
    only on the *set* of symbols and the generator state — never on
    iteration order — which keeps per-session subsets reproducible
    across processes.  The subset size is ``ceil(fraction * n)``
    floored at ``min(min_size, n)``; a fraction of 1.0 returns the full
    set (and consumes no draw).
    """
    pool = sorted(set(symbols))
    if not pool:
        raise ConfigurationError("cannot sample a subset of an empty set")
    size = max(
        min(int(min_size), len(pool)),
        math.ceil(float(fraction) * len(pool)),
    )
    if size >= len(pool):
        return frozenset(pool)
    chosen = rng.choice(len(pool), size=size, replace=False)
    return frozenset(pool[index] for index in chosen)


@dataclass(frozen=True)
class HardeningConfig:
    """Randomized-defense knobs for the correlation detector.

    Attributes
    ----------
    threshold_jitter:
        Half-width of the per-session uniform threshold perturbation;
        sessions decide against ``threshold + U(-j, +j)``.  ``0``
        disables threshold randomization.  The calibrated threshold
        must keep ``threshold ± jitter`` inside the detector's
        ``[-1, 1]`` score bounds —
        :meth:`~repro.core.CorrelationDetector.with_randomized_threshold`
        validates this per draw.
    subset_fraction:
        Fraction of the sensitive phoneme set analyzed per session
        (``1.0`` disables subset randomization).
    min_subset:
        Floor on the per-session subset size, so tiny fractions can
        never starve segmentation of material.
    """

    threshold_jitter: float = 0.0
    subset_fraction: float = 1.0
    min_subset: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold_jitter <= 1.0:
            raise ConfigurationError(
                f"threshold_jitter must lie in [0, 1], "
                f"got {self.threshold_jitter}"
            )
        if not 0.0 < self.subset_fraction <= 1.0:
            raise ConfigurationError(
                f"subset_fraction must lie in (0, 1], "
                f"got {self.subset_fraction}"
            )
        if self.min_subset < 1:
            raise ConfigurationError(
                f"min_subset must be >= 1, got {self.min_subset}"
            )

    @property
    def randomizes_threshold(self) -> bool:
        """Whether sessions perturb the decision threshold."""
        return self.threshold_jitter > 0.0

    @property
    def randomizes_subset(self) -> bool:
        """Whether sessions analyze a random phoneme subset."""
        return self.subset_fraction < 1.0

    @property
    def active(self) -> bool:
        """Whether any randomized defense is enabled."""
        return self.randomizes_threshold or self.randomizes_subset

    def session_subset(
        self,
        symbols: Iterable[str],
        rng: np.random.Generator,
    ) -> FrozenSet[str]:
        """The phoneme subset one session analyzes."""
        return sample_subset(
            symbols, self.subset_fraction, self.min_subset, rng
        )
