"""Cross-device synchronization (paper § VI-A).

The wearable starts recording when the VA's wake-word trigger message
arrives over WiFi, so its recording lags by the network delay (~100 ms).
The residual offset is estimated with normalized cross-correlation
(Eq. (5)) and trimmed so both recordings start at the same command onset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dsp.correlate import align_by_cross_correlation
from repro.errors import ConfigurationError


@dataclass
class SyncConfig:
    """Synchronization parameters.

    Attributes
    ----------
    max_delay_s:
        Largest WiFi/network delay the estimator searches over; local
        networks stay well under 0.5 s.
    min_overlap_s:
        Shortest aligned overlap the estimate is trusted to leave.  A
        correlation peak that would trim the recordings below this is
        treated as a misestimate (narrowband or periodic content can
        fool Eq. (5)) and the recordings pass through untrimmed; ``0``
        disables the guard.
    """

    max_delay_s: float = 0.5
    min_overlap_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_delay_s <= 0:
            raise ConfigurationError("max_delay_s must be > 0")
        if self.min_overlap_s < 0:
            raise ConfigurationError("min_overlap_s must be >= 0")


def synchronize_recordings(
    va_audio: np.ndarray,
    wearable_audio: np.ndarray,
    sample_rate: float,
    config: Optional[SyncConfig] = None,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Align the two devices' recordings of the same voice command.

    Returns ``(va_aligned, wearable_aligned, estimated_delay_s)`` with
    equal-length outputs.  Positive delay means the wearable recording
    led the VA's (its extra head samples were trimmed); negative means
    the wearable started late and the VA recording was trimmed instead.
    """
    config = config or SyncConfig()
    if sample_rate <= 0:
        raise ConfigurationError("sample_rate must be > 0")
    max_lag = int(round(config.max_delay_s * sample_rate))
    va_aligned, wearable_aligned, delay = align_by_cross_correlation(
        va_audio, wearable_audio, max_lag
    )
    min_overlap = int(round(config.min_overlap_s * sample_rate))
    if 0 < va_aligned.size < min_overlap:
        va = np.atleast_1d(np.asarray(va_audio))
        wearable = np.atleast_1d(np.asarray(wearable_audio))
        common = min(va.size, wearable.size)
        if common > va_aligned.size:
            return va[:common].copy(), wearable[:common].copy(), 0.0
    return va_aligned, wearable_aligned, delay / sample_rate
