"""Cross-process advisory file locking for the artifact store.

POSIX ``flock`` gives the one-trainer-many-loaders protocol its mutual
exclusion: N workers starting on an empty store all try to acquire the
artifact's lock file; exactly one wins and trains, the rest block and
then load the published entry.  ``flock`` locks are attached to the
open file description, so two *threads* opening the lock file
independently exclude each other just like two processes do.

On platforms without ``fcntl`` the lock degrades to a per-process
``threading.Lock`` registry — correctness within one process is kept,
and concurrent processes merely risk duplicate (identical, because
training is seed-deterministic) work, never corruption: publication
stays atomic via the store's write-to-temp-then-rename protocol.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, Optional

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

# Fallback registry: one process-wide lock per lock-file path.
_FALLBACK_LOCKS: Dict[str, threading.Lock] = {}
_FALLBACK_REGISTRY_LOCK = threading.Lock()


class FileLock:
    """Exclusive, blocking advisory lock on ``path``.

    Use as a context manager::

        with FileLock(store_root / "locks" / "segmenter-abc123.lock"):
            ...  # train-or-load critical section

    Not reentrant; one instance per acquisition.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._fallback: Optional[threading.Lock] = None

    def acquire(self) -> None:
        if self._fd is not None or self._fallback is not None:
            raise RuntimeError("FileLock is not reentrant")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - off-POSIX degradation
            with _FALLBACK_REGISTRY_LOCK:
                lock = _FALLBACK_LOCKS.setdefault(
                    str(self.path), threading.Lock()
                )
            lock.acquire()
            self._fallback = lock
            return
        fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd

    def release(self) -> None:
        if self._fallback is not None:  # pragma: no cover - off-POSIX
            self._fallback.release()
            self._fallback = None
            return
        if self._fd is None:
            return
        try:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
