"""``python -m repro store {ls,info,gc,export,import,verify}``.

Management commands for the on-disk artifact store.  The store
directory comes from ``--dir`` or the ``REPRO_STORE_DIR`` environment
variable — the same default the ``serve``/``loadgen`` commands use for
``--store-dir``.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional

from repro.errors import StoreError
from repro.store.artifact import ArtifactInfo, ArtifactKey, ArtifactStore


def add_store_parser(subparsers) -> None:
    """Attach the ``store`` command tree to the root CLI parser."""
    store = subparsers.add_parser(
        "store", help="manage the trained-artifact store"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--dir",
        dest="store_dir",
        default=None,
        help=(
            "store root directory (default: $REPRO_STORE_DIR)"
        ),
    )
    actions = store.add_subparsers(dest="store_command", required=True)

    actions.add_parser(
        "ls", help="list stored artifacts", parents=[common]
    )

    info = actions.add_parser(
        "info", help="show one artifact's metadata", parents=[common]
    )
    info.add_argument("key", help="artifact address as <kind>/<fingerprint>")

    gc = actions.add_parser(
        "gc", help="evict least-recently-used artifacts", parents=[common]
    )
    gc.add_argument(
        "--max-bytes", type=int, default=None,
        help="total payload bytes to keep",
    )
    gc.add_argument(
        "--max-entries", type=int, default=None,
        help="entry count to keep",
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help=(
            "delete nothing; report what would be evicted and the "
            "reclaimable bytes per artifact kind"
        ),
    )

    export = actions.add_parser(
        "export", help="pack artifacts into a portable tar.gz",
        parents=[common],
    )
    export.add_argument("archive", help="output archive path")
    export.add_argument(
        "--kind", action="append", default=None,
        help="restrict to a kind (repeatable)",
    )

    imp = actions.add_parser(
        "import", help="unpack artifacts from an exported archive",
        parents=[common],
    )
    imp.add_argument("archive", help="archive produced by 'store export'")
    imp.add_argument(
        "--overwrite", action="store_true",
        help="replace entries that already exist",
    )

    actions.add_parser(
        "verify", help="checksum every entry; exit 1 on any corruption",
        parents=[common],
    )


def resolve_store_dir(explicit: Optional[str]) -> Optional[str]:
    """``--dir``/``--store-dir`` value, falling back to the env var."""
    if explicit:
        return explicit
    return os.environ.get("REPRO_STORE_DIR") or None


def _format_entry(info: ArtifactInfo) -> str:
    return (
        f"{str(info.key):50} {info.n_bytes:>10} B  "
        f"sha256:{info.sha256[:12]}"
    )


def cmd_store(args: argparse.Namespace) -> int:
    """Dispatch one ``store`` subcommand; returns the exit code."""
    store_dir = resolve_store_dir(args.store_dir)
    if store_dir is None:
        raise SystemExit(
            "error: no store directory; pass --dir or set REPRO_STORE_DIR"
        )
    store = ArtifactStore(store_dir)
    handler = {
        "ls": _cmd_ls,
        "info": _cmd_info,
        "gc": _cmd_gc,
        "export": _cmd_export,
        "import": _cmd_import,
        "verify": _cmd_verify,
    }[args.store_command]
    try:
        return handler(store, args)
    except StoreError as error:
        raise SystemExit(f"error: {error}") from None


def _cmd_ls(store: ArtifactStore, args: argparse.Namespace) -> int:
    entries = store.entries()
    for info in entries:
        print(_format_entry(info))
    total = sum(info.n_bytes for info in entries)
    quarantined = len(store.quarantined())
    suffix = f", {quarantined} quarantined" if quarantined else ""
    print(
        f"{len(entries)} artifact(s), {total} payload bytes "
        f"in {store.root}{suffix}"
    )
    return 0


def _parse_key(raw: str) -> ArtifactKey:
    kind, _, fingerprint = raw.partition("/")
    if not kind or not fingerprint:
        raise SystemExit(
            f"error: key must look like <kind>/<fingerprint>, got {raw!r}"
        )
    return ArtifactKey(kind, fingerprint)


def _cmd_info(store: ArtifactStore, args: argparse.Namespace) -> int:
    info = store.info(_parse_key(args.key))
    if info is None:
        print(f"no such artifact: {args.key}")
        return 1
    print(f"key        : {info.key}")
    print(f"path       : {info.path}")
    print(f"payload    : {info.n_bytes} bytes")
    print(f"sha256     : {info.sha256}")
    print(f"created_at : {info.created_at:.0f}")
    print(f"last_used  : {info.last_used_at:.0f}")
    for name in sorted(info.meta):
        print(f"meta.{name:<6}: {info.meta[name]}")
    return 0


def _cmd_gc(store: ArtifactStore, args: argparse.Namespace) -> int:
    if args.max_bytes is None and args.max_entries is None:
        raise SystemExit(
            "error: gc needs --max-bytes and/or --max-entries"
        )
    dry_run = bool(getattr(args, "dry_run", False))
    evicted = store.gc(
        max_bytes=args.max_bytes,
        max_entries=args.max_entries,
        dry_run=dry_run,
    )
    verb = "would evict" if dry_run else "evicted"
    per_kind: dict = {}
    for info in evicted:
        print(f"{verb} {_format_entry(info)}")
        count, total = per_kind.get(info.key.kind, (0, 0))
        per_kind[info.key.kind] = (count + 1, total + info.n_bytes)
    for kind in sorted(per_kind):
        count, total = per_kind[kind]
        noun = "entry" if count == 1 else "entries"
        print(
            f"{verb} {kind:20} {count:>6} {noun}, "
            f"{total} reclaimable bytes"
        )
    total_bytes = sum(info.n_bytes for info in evicted)
    print(
        f"{verb} {len(evicted)} artifact(s), "
        f"{total_bytes} reclaimable bytes"
    )
    return 0


def _cmd_export(store: ArtifactStore, args: argparse.Namespace) -> int:
    keys = store.export_archive(args.archive, kinds=args.kind)
    print(f"exported {len(keys)} artifact(s) to {args.archive}")
    return 0


def _cmd_import(store: ArtifactStore, args: argparse.Namespace) -> int:
    keys = store.import_archive(args.archive, overwrite=args.overwrite)
    for key in keys:
        print(f"imported {key}")
    print(f"imported {len(keys)} artifact(s) into {store.root}")
    return 0


def _cmd_verify(store: ArtifactStore, args: argparse.Namespace) -> int:
    report = store.verify()
    bad = 0
    for key, problem in report:
        if problem is None:
            print(f"ok      {key}")
        else:
            bad += 1
            print(f"CORRUPT {key}: {problem}")
    print(f"verified {len(report)} artifact(s), {bad} corrupt")
    return 1 if bad else 0
