"""Deterministic artifact fingerprints.

An artifact's identity is the SHA-256 digest of a *canonical token*
built from (artifact kind, configuration, training seed, store schema
version).  The token is a printable string with a stable rendering for
every value kind the library's configs use — dataclasses, numpy arrays
and scalars, sets, floats — so the same recipe maps to the same entry
across processes, machines, and Python hash seeds.

Bump :data:`SCHEMA_VERSION` whenever the *meaning* of stored payloads
changes (serialization format, training recipe semantics, feature
definitions): old entries then simply stop being addressable and the
next load falls back to retraining under the new version.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Mapping, Sequence

import numpy as np

from repro.errors import StoreError

#: Version of the on-disk artifact schema.  Part of every fingerprint
#: and of the store's directory layout (``<root>/v<SCHEMA_VERSION>/``).
SCHEMA_VERSION = 1

#: Hex digest length used for entry directory names.  32 hex chars of
#: SHA-256 (128 bits) keeps paths short while making collisions
#: practically impossible.
_DIGEST_CHARS = 32


def canonical_token(value: object) -> str:
    """Render ``value`` into a stable, unambiguous string.

    Floats use ``repr`` (shortest round-trip), mappings sort by key,
    sets sort by token, dataclasses render as ``ClassName{field=...}``
    in field order, and numpy values render via their Python
    equivalents.  Raises :class:`StoreError` for types with no stable
    rendering (arbitrary objects whose ``repr`` embeds addresses).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, bytes):
        return f"bytes:{value.hex()}"
    if isinstance(value, np.generic):
        return canonical_token(value.item())
    if isinstance(value, np.ndarray):
        return f"ndarray{value.shape}:{canonical_token(value.tolist())}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}="
            f"{canonical_token(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
        )
        return f"{type(value).__name__}{{{fields}}}"
    if isinstance(value, Mapping):
        items = ",".join(
            f"{canonical_token(key)}:{canonical_token(value[key])}"
            for key in sorted(value, key=str)
        )
        return f"{{{items}}}"
    if isinstance(value, (frozenset, set)):
        return f"{{{','.join(sorted(canonical_token(v) for v in value))}}}"
    if isinstance(value, Sequence):
        return f"[{','.join(canonical_token(item) for item in value)}]"
    raise StoreError(
        f"cannot fingerprint a value of type {type(value).__name__}; "
        "pass primitives, dataclasses, mappings, sequences, or arrays"
    )


def artifact_fingerprint(
    kind: str,
    schema_version: int = SCHEMA_VERSION,
    **parts: object,
) -> str:
    """Hex fingerprint of an artifact recipe.

    ``parts`` carries the recipe (config dataclass, seed, sizes, ...);
    keys are sorted so call-site keyword order is irrelevant.
    """
    if not kind or any(c in kind for c in "/\\. "):
        raise StoreError(
            f"artifact kind must be a path-safe name, got {kind!r}"
        )
    token = "|".join(
        [f"kind={kind}", f"schema={int(schema_version)}"]
        + [
            f"{name}={canonical_token(parts[name])}"
            for name in sorted(parts)
        ]
    )
    digest = hashlib.sha256(token.encode("utf-8")).hexdigest()
    return digest[:_DIGEST_CHARS]


def payload_checksum(payload: bytes) -> str:
    """Full SHA-256 hex digest of an artifact payload."""
    return hashlib.sha256(payload).hexdigest()
