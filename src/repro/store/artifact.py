"""Content-addressed on-disk artifact store.

Layout (all under one root directory)::

    <root>/
      v<schema>/<kind>/<fingerprint>/
        payload.bin   artifact bytes
        meta.json     checksum + provenance (see below)
        last_used     empty touch file; its mtime is the LRU clock
      locks/<kind>-<fingerprint>.lock
      quarantine/<kind>-<fingerprint>-<n>/

Guarantees:

* **Atomic publication** — entries are staged in a temp directory and
  renamed into place, so readers never observe a half-written entry.
* **Integrity on read** — ``payload.bin`` is checked against the
  SHA-256 recorded in ``meta.json`` on every :meth:`get`; a mismatch
  (or unreadable/schema-mismatched metadata) quarantines the entry and
  reports a miss, so callers fall back to recomputing.  Corruption
  never crashes the load path.
* **One producer under contention** — :meth:`get_or_create` holds the
  entry's advisory file lock around the produce-and-publish critical
  section; concurrent processes racing on an empty store perform the
  expensive computation exactly once.
"""

from __future__ import annotations

import json
import os
import shutil
import tarfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ArtifactIntegrityError, StoreError
from repro.store.fingerprint import (
    SCHEMA_VERSION,
    payload_checksum,
)
from repro.store.locks import FileLock

_PAYLOAD_NAME = "payload.bin"
_META_NAME = "meta.json"
_LAST_USED_NAME = "last_used"

#: meta.json keys every valid entry must carry.
_REQUIRED_META_KEYS = (
    "schema_version",
    "kind",
    "fingerprint",
    "sha256",
    "n_bytes",
)


@dataclass(frozen=True)
class ArtifactKey:
    """Address of one artifact: its kind plus recipe fingerprint."""

    kind: str
    fingerprint: str

    def __post_init__(self) -> None:
        for part, name in ((self.kind, "kind"), (self.fingerprint, "fingerprint")):
            if not part or any(c in part for c in "/\\. "):
                raise StoreError(
                    f"artifact {name} must be path-safe, got {part!r}"
                )

    def __str__(self) -> str:
        return f"{self.kind}/{self.fingerprint}"


@dataclass(frozen=True)
class ArtifactInfo:
    """Metadata snapshot of one stored entry (no payload)."""

    key: ArtifactKey
    n_bytes: int
    sha256: str
    created_at: float
    last_used_at: float
    path: Path
    meta: Dict[str, object] = field(default_factory=dict)


class ArtifactStore:
    """Content-addressed artifact store rooted at a directory.

    Parameters
    ----------
    root:
        Store directory (created on first use).
    schema_version:
        On-disk schema generation; entries written under other versions
        are invisible (and removable via :meth:`gc`-less manual cleanup
        or a fresh root).
    """

    def __init__(
        self,
        root,
        schema_version: int = SCHEMA_VERSION,
    ) -> None:
        self.root = Path(root)
        self.schema_version = int(schema_version)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def _data_dir(self) -> Path:
        return self.root / f"v{self.schema_version}"

    def entry_dir(self, key: ArtifactKey) -> Path:
        """Directory that holds (or would hold) ``key``'s entry."""
        return self._data_dir / key.kind / key.fingerprint

    def _lock_path(self, key: ArtifactKey) -> Path:
        return self.root / "locks" / f"{key.kind}-{key.fingerprint}.lock"

    def lock(self, key: ArtifactKey) -> FileLock:
        """Advisory cross-process lock guarding ``key``'s entry."""
        return FileLock(self._lock_path(key))

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def contains(self, key: ArtifactKey) -> bool:
        """Whether an entry directory exists (no integrity check)."""
        return self.entry_dir(key).is_dir()

    def get(self, key: ArtifactKey) -> Optional[bytes]:
        """Payload bytes, or ``None`` on miss.

        A present-but-invalid entry (checksum mismatch, truncated or
        unparseable metadata, wrong schema version) is moved to the
        quarantine area and reported as a miss — the caller's fallback
        is to recompute and re-publish.
        """
        entry = self.entry_dir(key)
        if not entry.is_dir():
            return None
        payload, problem = self._read_validated(key, entry)
        if problem is not None:
            self._quarantine(key, entry)
            return None
        self._touch_last_used(entry)
        return payload

    def info(self, key: ArtifactKey) -> Optional[ArtifactInfo]:
        """Metadata for one entry, or ``None`` when absent."""
        entry = self.entry_dir(key)
        if not entry.is_dir():
            return None
        return self._info_from_dir(key, entry)

    def entries(self) -> List[ArtifactInfo]:
        """All readable entries, sorted by (kind, fingerprint)."""
        found: List[ArtifactInfo] = []
        if not self._data_dir.is_dir():
            return found
        for kind_dir in sorted(self._data_dir.iterdir()):
            if not kind_dir.is_dir():
                continue
            for entry in sorted(kind_dir.iterdir()):
                if not entry.is_dir():
                    continue
                key = ArtifactKey(kind_dir.name, entry.name)
                info = self._info_from_dir(key, entry)
                if info is not None:
                    found.append(info)
        return found

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put(
        self,
        key: ArtifactKey,
        payload: bytes,
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Publish ``payload`` under ``key`` atomically.

        The entry is staged in a temp directory next to its final
        location and renamed into place; a concurrent reader sees
        either no entry or the complete one.  Replaces any existing
        entry for the same key.
        """
        if not isinstance(payload, bytes):
            raise StoreError(
                f"payload must be bytes, got {type(payload).__name__}"
            )
        entry = self.entry_dir(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        staging = entry.parent / f".tmp-{key.fingerprint}-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()
        try:
            (staging / _PAYLOAD_NAME).write_bytes(payload)
            record = {
                "schema_version": self.schema_version,
                "kind": key.kind,
                "fingerprint": key.fingerprint,
                "sha256": payload_checksum(payload),
                "n_bytes": len(payload),
                "created_at": time.time(),
                "meta": dict(meta or {}),
            }
            (staging / _META_NAME).write_text(
                json.dumps(record, indent=2, sort_keys=True)
            )
            (staging / _LAST_USED_NAME).touch()
            if entry.exists():
                shutil.rmtree(entry)
            os.rename(staging, entry)
        except OSError:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return entry

    def get_or_create(
        self,
        key: ArtifactKey,
        producer: Callable[[], bytes],
        meta: Optional[Dict[str, object]] = None,
    ) -> Tuple[bytes, bool]:
        """Load ``key``, or run ``producer`` exactly once and publish.

        Returns ``(payload, created)`` where ``created`` is ``True``
        only for the caller that actually ran ``producer``.  Among N
        concurrent callers (threads or processes) racing on a missing
        entry, exactly one produces; the rest block on the entry lock
        and then load the published payload.
        """
        payload = self.get(key)
        if payload is not None:
            return payload, False
        with self.lock(key):
            # Double-check under the lock: a concurrent producer may
            # have published while this caller waited.
            payload = self.get(key)
            if payload is not None:
                return payload, False
            payload = producer()
            self.put(key, payload, meta=meta)
            return payload, True

    def quarantine_entry(self, key: ArtifactKey) -> bool:
        """Move ``key``'s entry to quarantine (decode-failure path).

        :meth:`get` quarantines checksum/schema failures on its own;
        this hook is for callers whose *decoding* of a checksum-valid
        payload fails (e.g. an archive numpy cannot parse), so the
        broken entry stops shadowing the retrain fallback.
        """
        entry = self.entry_dir(key)
        if not entry.is_dir():
            return False
        with self.lock(key):
            if not entry.is_dir():
                return False
            return self._quarantine(key, entry) is not None

    def delete(self, key: ArtifactKey) -> bool:
        """Remove one entry; returns whether anything was removed."""
        entry = self.entry_dir(key)
        if not entry.is_dir():
            return False
        with self.lock(key):
            if not entry.is_dir():
                return False
            shutil.rmtree(entry)
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def verify(self) -> List[Tuple[ArtifactKey, Optional[str]]]:
        """Integrity-check every entry without quarantining.

        Returns ``(key, problem)`` pairs; ``problem`` is ``None`` for
        healthy entries and a human-readable reason otherwise.
        """
        report: List[Tuple[ArtifactKey, Optional[str]]] = []
        if not self._data_dir.is_dir():
            return report
        for kind_dir in sorted(self._data_dir.iterdir()):
            if not kind_dir.is_dir():
                continue
            for entry in sorted(kind_dir.iterdir()):
                if not entry.is_dir() or entry.name.startswith(".tmp-"):
                    continue
                key = ArtifactKey(kind_dir.name, entry.name)
                _, problem = self._read_validated(key, entry)
                report.append((key, problem))
        return report

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        dry_run: bool = False,
    ) -> List[ArtifactInfo]:
        """Evict least-recently-used entries beyond the given bounds.

        Both bounds may be given; eviction continues until the store
        satisfies every one.  Returns the evicted entries' metadata
        (oldest first).  With ``dry_run`` nothing is deleted — the
        returned list is what a real run *would* evict, which the CLI
        sums into per-kind reclaimable bytes (per-user fleet profiles
        multiply entry counts, so sizing a bound before evicting
        matters).
        """
        if max_bytes is None and max_entries is None:
            return []
        for bound, name in (
            (max_bytes, "max_bytes"),
            (max_entries, "max_entries"),
        ):
            if bound is not None and bound < 0:
                raise StoreError(f"{name} must be >= 0, got {bound}")
        survivors = sorted(
            self.entries(), key=lambda info: info.last_used_at
        )
        total = sum(info.n_bytes for info in survivors)
        evicted: List[ArtifactInfo] = []
        while survivors and (
            (max_bytes is not None and total > max_bytes)
            or (max_entries is not None and len(survivors) > max_entries)
        ):
            victim = survivors.pop(0)
            if dry_run or self.delete(victim.key):
                evicted.append(victim)
            total -= victim.n_bytes
        return evicted

    def export_archive(
        self,
        archive_path,
        kinds: Optional[List[str]] = None,
    ) -> List[ArtifactKey]:
        """Write entries (optionally filtered by kind) to a tar.gz."""
        archive_path = Path(archive_path)
        exported: List[ArtifactKey] = []
        entries = [
            info
            for info in self.entries()
            if kinds is None or info.key.kind in kinds
        ]
        with tarfile.open(archive_path, "w:gz") as archive:
            for info in entries:
                arcname = (
                    f"v{self.schema_version}/"
                    f"{info.key.kind}/{info.key.fingerprint}"
                )
                for name in (_PAYLOAD_NAME, _META_NAME):
                    archive.add(
                        info.path / name, arcname=f"{arcname}/{name}"
                    )
                exported.append(info.key)
        return exported

    def import_archive(
        self, archive_path, overwrite: bool = False
    ) -> List[ArtifactKey]:
        """Import entries from :meth:`export_archive` output.

        Every imported payload is checksum-verified against its
        metadata before publication; a corrupt member raises
        :class:`ArtifactIntegrityError` (imports are explicit integrity
        boundaries, unlike the quarantine-and-miss read path).
        Existing entries are kept unless ``overwrite`` is set.
        """
        archive_path = Path(archive_path)
        if not archive_path.is_file():
            raise StoreError(f"archive not found: {archive_path}")
        imported: List[ArtifactKey] = []
        with tarfile.open(archive_path, "r:gz") as archive:
            members: Dict[str, Dict[str, bytes]] = {}
            for member in archive.getmembers():
                if not member.isfile():
                    continue
                parts = Path(member.name).parts
                if (
                    len(parts) != 4
                    or ".." in parts
                    or parts[0] != f"v{self.schema_version}"
                    or parts[3] not in (_PAYLOAD_NAME, _META_NAME)
                ):
                    continue
                handle = archive.extractfile(member)
                if handle is None:  # pragma: no cover - dir members
                    continue
                entry_id = f"{parts[1]}/{parts[2]}"
                members.setdefault(entry_id, {})[parts[3]] = handle.read()
        for entry_id, files in sorted(members.items()):
            kind, fingerprint = entry_id.split("/")
            key = ArtifactKey(kind, fingerprint)
            payload = files.get(_PAYLOAD_NAME)
            meta_bytes = files.get(_META_NAME)
            if payload is None or meta_bytes is None:
                raise ArtifactIntegrityError(
                    f"archive entry {entry_id} is incomplete"
                )
            try:
                record = json.loads(meta_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ArtifactIntegrityError(
                    f"archive entry {entry_id} has unreadable metadata"
                ) from error
            if record.get("sha256") != payload_checksum(payload):
                raise ArtifactIntegrityError(
                    f"archive entry {entry_id} failed its checksum"
                )
            if self.contains(key) and not overwrite:
                continue
            self.put(key, payload, meta=record.get("meta") or {})
            imported.append(key)
        return imported

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _read_validated(
        self, key: ArtifactKey, entry: Path
    ) -> Tuple[Optional[bytes], Optional[str]]:
        """(payload, problem) for one entry; problem=None means valid."""
        meta_path = entry / _META_NAME
        try:
            record = json.loads(meta_path.read_text())
        except OSError:
            return None, "metadata file missing or unreadable"
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, "metadata is not valid JSON"
        if not isinstance(record, dict) or any(
            name not in record for name in _REQUIRED_META_KEYS
        ):
            return None, "metadata is missing required keys"
        if int(record["schema_version"]) != self.schema_version:
            return None, (
                f"schema version {record['schema_version']} != "
                f"store schema {self.schema_version}"
            )
        if (
            record["kind"] != key.kind
            or record["fingerprint"] != key.fingerprint
        ):
            return None, "metadata does not match the entry's address"
        try:
            payload = (entry / _PAYLOAD_NAME).read_bytes()
        except OSError:
            return None, "payload file missing or unreadable"
        if len(payload) != int(record["n_bytes"]):
            return None, (
                f"payload is {len(payload)} bytes, "
                f"metadata says {record['n_bytes']}"
            )
        if payload_checksum(payload) != record["sha256"]:
            return None, "payload failed its SHA-256 checksum"
        return payload, None

    def _quarantine(self, key: ArtifactKey, entry: Path) -> Optional[Path]:
        """Move a corrupt entry aside; never raises on the read path."""
        quarantine_dir = self.root / "quarantine"
        try:
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            base = f"{key.kind}-{key.fingerprint}"
            for attempt in range(1000):
                target = quarantine_dir / (
                    base if attempt == 0 else f"{base}-{attempt}"
                )
                if not target.exists():
                    os.rename(entry, target)
                    return target
            shutil.rmtree(entry)  # pragma: no cover - 1000 quarantines
        except OSError:  # pragma: no cover - best-effort cleanup
            shutil.rmtree(entry, ignore_errors=True)
        return None

    def quarantined(self) -> List[Path]:
        """Directories currently sitting in quarantine."""
        quarantine_dir = self.root / "quarantine"
        if not quarantine_dir.is_dir():
            return []
        return sorted(p for p in quarantine_dir.iterdir() if p.is_dir())

    def _info_from_dir(
        self, key: ArtifactKey, entry: Path
    ) -> Optional[ArtifactInfo]:
        meta_path = entry / _META_NAME
        try:
            record = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        try:
            last_used = (entry / _LAST_USED_NAME).stat().st_mtime
        except OSError:
            last_used = float(record.get("created_at", 0.0))
        return ArtifactInfo(
            key=key,
            n_bytes=int(record.get("n_bytes", 0)),
            sha256=str(record.get("sha256", "")),
            created_at=float(record.get("created_at", 0.0)),
            last_used_at=last_used,
            path=entry,
            meta=dict(record.get("meta") or {}),
        )

    def _touch_last_used(self, entry: Path) -> None:
        marker = entry / _LAST_USED_NAME
        try:
            marker.touch()
            os.utime(marker, None)
        except OSError:  # pragma: no cover - read path must not fail
            pass
