"""Byte codecs between the store and the library's trained artifacts.

The :class:`~repro.store.artifact.ArtifactStore` deals in opaque bytes;
these adapters define the payload formats for the three expensive
artifacts the registry manages:

* **segmenter weights** — the ``.npz`` produced by
  :meth:`PhonemeSegmenter.save` (BLSTM parameters + architecture meta +
  feature standardization statistics), written into a memory buffer.
* **calibration profiles** — :class:`CalibrationReport` as JSON (JSON
  round-trips float64 exactly via shortest-repr).
* **phoneme-selection tables** — :class:`PhonemeSelectionResult` as
  JSON, including the per-phoneme Q3 vibration profiles.

Decoding failures raise :class:`repro.errors.ModelError` /
:class:`repro.errors.StoreError`; the registry maps them to the
quarantine-and-retrain fallback.
"""

from __future__ import annotations

import io
import json
from typing import Optional

from repro.core.calibration import CalibrationReport
from repro.core.phoneme_selection import PhonemeSelectionResult
from repro.core.segmentation import PhonemeSegmenter, SegmenterConfig
from repro.errors import ModelError, StoreError
from repro.utils.rng import SeedLike


def encode_segmenter(segmenter: PhonemeSegmenter) -> bytes:
    """Trained segmenter → ``.npz`` bytes."""
    buffer = io.BytesIO()
    segmenter.save(buffer)
    return buffer.getvalue()


def decode_segmenter(
    payload: bytes,
    sensitive_phonemes=None,
    config: Optional[SegmenterConfig] = None,
    sample_rate: float = 16_000.0,
    rng: SeedLike = None,
) -> PhonemeSegmenter:
    """``.npz`` bytes → ready-to-serve segmenter.

    The constructor arguments must match the recipe the weights were
    trained under (the registry fingerprints them into the artifact
    key, so a store hit guarantees they do).  Architecture mismatches
    are still re-checked against the archive's meta by
    :meth:`PhonemeSegmenter.load_weights`.
    """
    kwargs = {}
    if sensitive_phonemes is not None:
        kwargs["sensitive_phonemes"] = sensitive_phonemes
    segmenter = PhonemeSegmenter(
        config=config, sample_rate=sample_rate, rng=rng, **kwargs
    )
    try:
        segmenter.load_weights(io.BytesIO(payload))
    except (OSError, ValueError, KeyError, EOFError) as error:
        raise ModelError(
            f"segmenter payload is not a readable archive: {error}"
        ) from error
    return segmenter


def encode_calibration(report: CalibrationReport) -> bytes:
    """Calibration report → JSON bytes."""
    return json.dumps(report.to_dict(), sort_keys=True).encode("utf-8")


def decode_calibration(payload: bytes) -> CalibrationReport:
    """JSON bytes → calibration report."""
    return CalibrationReport.from_dict(_load_json(payload, "calibration"))


def encode_phoneme_table(result: PhonemeSelectionResult) -> bytes:
    """Phoneme-selection result → JSON bytes."""
    return json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")


def decode_phoneme_table(payload: bytes) -> PhonemeSelectionResult:
    """JSON bytes → phoneme-selection result."""
    try:
        return PhonemeSelectionResult.from_dict(
            _load_json(payload, "phoneme table")
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(
            f"malformed phoneme-table payload: {error}"
        ) from None


def encode_json_document(document: dict) -> bytes:
    """JSON-object artifact → canonical bytes (sorted keys).

    The generic codec behind per-user fleet profiles: the store deals
    in opaque bytes, the fleet layer deals in
    :class:`repro.fleet.profiles.UserProfile` dicts, and this boundary
    keeps ``repro.store`` free of an upward import.
    """
    if not isinstance(document, dict):
        raise StoreError(
            f"JSON artifact must be a dict, got {type(document).__name__}"
        )
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode_json_document(payload: bytes) -> dict:
    """Canonical JSON bytes → dict (inverse of
    :func:`encode_json_document`)."""
    return _load_json(payload, "JSON document")


def _load_json(payload: bytes, what: str) -> dict:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StoreError(f"{what} payload is not valid JSON") from error
    if not isinstance(decoded, dict):
        raise StoreError(f"{what} payload must be a JSON object")
    return decoded
