"""Typed model registry on top of the artifact store.

:class:`ModelRegistry` is the train-once/serve-many facade the serving
stack talks to.  Each accessor follows the same protocol:

1. fingerprint the full production recipe (kind, config, seed, store
   schema version),
2. :meth:`~repro.store.artifact.ArtifactStore.get_or_create` under the
   entry's cross-process lock — so N workers cold-starting together
   run exactly one training/selection/calibration,
3. decode the payload through :mod:`repro.store.adapters`; a payload
   that passes its checksum but fails decoding (stale format) is
   quarantined and the artifact is recomputed — the registry never
   crashes a caller because of a bad cache entry,
4. degrade to direct computation when the store itself is unusable
   (unwritable root, disk errors), with a logged warning.

Determinism makes all of this safe: every producer is a pure function
of its integer seed and config, so a store-loaded artifact is bitwise
identical to a freshly computed one.
"""

from __future__ import annotations

import logging
import threading
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.calibration import CalibrationReport
from repro.core.phoneme_selection import (
    PhonemeSelectionConfig,
    PhonemeSelectionResult,
)
from repro.core.segmentation import (
    PhonemeSegmenter,
    SegmenterConfig,
    train_default_segmenter,
)
from repro.errors import ModelError, StoreError
from repro.phonemes.inventory import PAPER_SELECTED_PHONEMES
from repro.store import adapters
from repro.store.artifact import ArtifactKey, ArtifactStore
from repro.store.fingerprint import artifact_fingerprint

logger = logging.getLogger(__name__)

#: Artifact kinds managed by the registry.
KIND_SEGMENTER = "segmenter"
KIND_CALIBRATION = "calibration"
KIND_PHONEME_TABLE = "phoneme-table"
KIND_USER_PROFILE = "user-profile"

# Process-wide load/train accounting, reported by the serving CLI and
# asserted by ``make store-smoke`` ("second run trains zero models").
_COUNTERS = {"trained": 0, "loaded": 0}
_COUNTERS_LOCK = threading.Lock()


def registry_counters() -> Dict[str, int]:
    """Snapshot of artifacts trained vs loaded by this process."""
    with _COUNTERS_LOCK:
        return dict(_COUNTERS)


def _record(event: str) -> None:
    with _COUNTERS_LOCK:
        _COUNTERS[event] += 1


class ModelRegistry:
    """Load-or-compute facade for the three expensive artifacts.

    Parameters
    ----------
    store:
        An :class:`ArtifactStore`, or a store root directory (string or
        path) from which one is built.
    """

    def __init__(
        self, store: Union[ArtifactStore, str, Path]
    ) -> None:
        if isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(store)

    # ------------------------------------------------------------------
    # Segmenter weights
    # ------------------------------------------------------------------

    def segmenter(
        self,
        seed: Optional[int] = None,
        n_speakers: int = 8,
        n_per_phoneme: int = 12,
        epochs: int = 12,
    ) -> Tuple[PhonemeSegmenter, bool]:
        """Trained segmenter for the default recipe; ``(model, trained)``.

        ``trained`` is ``True`` only when this call actually ran the
        training producer (store miss and lock won); a load is
        millisecond-cheap and bitwise identical.
        """
        if seed is not None:
            seed = int(seed)
        recipe = {
            "seed": seed,
            "n_speakers": int(n_speakers),
            "n_per_phoneme": int(n_per_phoneme),
            "epochs": int(epochs),
        }
        key = ArtifactKey(
            KIND_SEGMENTER,
            artifact_fingerprint(
                KIND_SEGMENTER,
                schema_version=self.store.schema_version,
                config=SegmenterConfig(),
                sensitive_phonemes=sorted(PAPER_SELECTED_PHONEMES),
                sample_rate=16_000.0,
                **recipe,
            ),
        )

        def produce() -> bytes:
            model = train_default_segmenter(
                seed=seed,
                n_speakers=n_speakers,
                n_per_phoneme=n_per_phoneme,
                epochs=epochs,
            )
            return adapters.encode_segmenter(model)

        payload, created = self._get_or_create(key, produce, meta=recipe)
        segmenter = self._decode(
            key,
            payload,
            created,
            produce,
            adapters.decode_segmenter,
        )
        return segmenter, created

    # ------------------------------------------------------------------
    # Calibration profiles
    # ------------------------------------------------------------------

    def calibration(
        self,
        recipe: Mapping[str, object],
        producer: Callable[[], CalibrationReport],
    ) -> Tuple[CalibrationReport, bool]:
        """Load-or-compute a detector calibration profile.

        ``recipe`` must deterministically describe how the calibration
        scores are produced (campaign seed, sizes, strategy, target
        rates, ...) — it is the artifact's identity.  ``producer`` runs
        the actual score collection + threshold fit on a miss.
        """
        key = ArtifactKey(
            KIND_CALIBRATION,
            artifact_fingerprint(
                KIND_CALIBRATION,
                schema_version=self.store.schema_version,
                **dict(recipe),
            ),
        )

        def produce() -> bytes:
            return adapters.encode_calibration(producer())

        payload, created = self._get_or_create(
            key, produce, meta=dict(recipe)
        )
        report = self._decode(
            key, payload, created, produce, adapters.decode_calibration
        )
        return report, created

    # ------------------------------------------------------------------
    # Phoneme-selection tables
    # ------------------------------------------------------------------

    def phoneme_table(
        self,
        seed: int,
        config: Optional[PhonemeSelectionConfig] = None,
        symbols: Optional[Sequence[str]] = None,
    ) -> Tuple[PhonemeSelectionResult, bool]:
        """Load-or-run the offline sensitive-phoneme selection study."""
        config = config or PhonemeSelectionConfig()
        key = ArtifactKey(
            KIND_PHONEME_TABLE,
            artifact_fingerprint(
                KIND_PHONEME_TABLE,
                schema_version=self.store.schema_version,
                seed=int(seed),
                config=config,
                symbols=None if symbols is None else list(symbols),
            ),
        )

        def produce() -> bytes:
            from repro.core.phoneme_selection import PhonemeSelector

            result = PhonemeSelector(config=config, seed=int(seed)).run(
                symbols
            )
            return adapters.encode_phoneme_table(result)

        payload, created = self._get_or_create(
            key, produce, meta={"seed": int(seed)}
        )
        table = self._decode(
            key, payload, created, produce, adapters.decode_phoneme_table
        )
        return table, created

    # ------------------------------------------------------------------
    # Per-user profiles (fleet serving tier)
    # ------------------------------------------------------------------

    def user_profile(
        self,
        user_id: str,
        recipe: Mapping[str, object],
        producer: Callable[[], Dict[str, object]],
    ) -> Tuple[Dict[str, object], bool]:
        """Load-or-compute one user's serving profile as a JSON dict.

        The artifact's identity is ``(user_id, recipe)`` — the recipe
        must deterministically describe how the profile is derived
        (base seed, calibration strategy, phoneme-subset size, ...), so
        N shards cold-starting on the same user run ``producer``
        exactly once between them (the store's one-trainer-many-loaders
        lock) and every later load is byte-identical.  The fleet layer
        wraps the returned dict in
        :class:`repro.fleet.profiles.UserProfile`; the registry stays
        schema-agnostic so ``repro.store`` never imports upward.
        """
        key = ArtifactKey(
            KIND_USER_PROFILE,
            artifact_fingerprint(
                KIND_USER_PROFILE,
                schema_version=self.store.schema_version,
                user_id=str(user_id),
                **dict(recipe),
            ),
        )

        def produce() -> bytes:
            return adapters.encode_json_document(producer())

        payload, created = self._get_or_create(
            key, produce, meta={"user_id": str(user_id), **dict(recipe)}
        )
        document = self._decode(
            key, payload, created, produce, adapters.decode_json_document
        )
        return document, created

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _get_or_create(
        self,
        key: ArtifactKey,
        produce: Callable[[], bytes],
        meta: Dict[str, object],
    ) -> Tuple[bytes, bool]:
        """Store round-trip with graceful degradation to direct compute."""
        try:
            payload, created = self.store.get_or_create(
                key, produce, meta=meta
            )
        except OSError as error:
            logger.warning(
                "artifact store %s unusable (%s: %s); computing %s "
                "without the store",
                self.store.root,
                type(error).__name__,
                error,
                key,
            )
            return produce(), True
        _record("trained" if created else "loaded")
        return payload, created

    def _decode(
        self,
        key: ArtifactKey,
        payload: bytes,
        created: bool,
        produce: Callable[[], bytes],
        decoder: Callable[[bytes], object],
    ):
        """Decode, quarantining-and-recomputing undecodable cache hits."""
        try:
            return decoder(payload)
        except (ModelError, StoreError) as error:
            if created:
                # This process just produced the payload; the format
                # itself is broken — do not mask a programming error.
                raise
            logger.warning(
                "stored artifact %s failed to decode (%s); "
                "quarantining and recomputing",
                key,
                error,
            )
            self.store.quarantine_entry(key)
            payload, _ = self._get_or_create(key, produce, meta={})
            return decoder(payload)
