"""Content-addressed artifact store and model registry.

Persists the defense's three expensive artifacts — trained BLSTM
segmenter weights, detector calibration profiles, and offline
phoneme-selection tables — keyed by deterministic fingerprints of
(kind, config, seed, schema version).  Turns service cold start from
minutes of per-worker training into a millisecond weight load; the
one-trainer-many-loaders file-locking protocol guarantees N workers
racing on an empty store train exactly once.  See DESIGN.md
§ "Artifact store & model registry".
"""

from repro.store.artifact import (
    ArtifactInfo,
    ArtifactKey,
    ArtifactStore,
)
from repro.store.fingerprint import (
    SCHEMA_VERSION,
    artifact_fingerprint,
    payload_checksum,
)
from repro.store.locks import FileLock
from repro.store.registry import (
    KIND_CALIBRATION,
    KIND_PHONEME_TABLE,
    KIND_SEGMENTER,
    KIND_USER_PROFILE,
    ModelRegistry,
    registry_counters,
)

__all__ = [
    "ArtifactInfo",
    "ArtifactKey",
    "ArtifactStore",
    "FileLock",
    "KIND_CALIBRATION",
    "KIND_PHONEME_TABLE",
    "KIND_SEGMENTER",
    "KIND_USER_PROFILE",
    "ModelRegistry",
    "SCHEMA_VERSION",
    "artifact_fingerprint",
    "payload_checksum",
    "registry_counters",
]
