"""Sound-pressure-level calibration for digital waveforms.

The library's convention: a waveform with RMS amplitude
:data:`REFERENCE_RMS_AT_65_DB` corresponds to 65 dB SPL (normal
conversation level) at the emission reference distance.  All level
handling — "play this command at 75 dB", "the user speaks at 65–75 dB" —
goes through these helpers so levels stay consistent across the
synthesizer, attacks, and devices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_1d

#: Digital RMS amplitude defined to correspond to 65 dB SPL.
REFERENCE_RMS_AT_65_DB = 0.05

#: SPL assigned to the reference RMS.
REFERENCE_SPL_DB = 65.0


def rms(signal: np.ndarray) -> float:
    """Root-mean-square amplitude of a signal."""
    samples = ensure_1d(signal)
    return float(np.sqrt(np.mean(samples**2)))


def db_to_gain(db: float) -> float:
    """Convert a dB value to a linear amplitude gain."""
    return float(10.0 ** (db / 20.0))


def gain_to_db(gain: float) -> float:
    """Convert a linear amplitude gain to dB."""
    gain = float(gain)
    if gain <= 0:
        raise ConfigurationError(f"gain must be > 0, got {gain}")
    return float(20.0 * np.log10(gain))


def spl_of(signal: np.ndarray) -> float:
    """Sound pressure level (dB SPL) of a waveform under the convention."""
    level = rms(signal)
    if level <= 0:
        raise SignalError("signal has zero RMS; SPL undefined")
    return REFERENCE_SPL_DB + gain_to_db(level / REFERENCE_RMS_AT_65_DB)


def scale_to_spl(signal: np.ndarray, target_spl_db: float) -> np.ndarray:
    """Rescale a waveform so its SPL equals ``target_spl_db``."""
    samples = ensure_1d(signal)
    level = rms(samples)
    if level <= 0:
        raise SignalError("cannot scale a silent signal to a target SPL")
    target_rms = REFERENCE_RMS_AT_65_DB * db_to_gain(
        target_spl_db - REFERENCE_SPL_DB
    )
    return samples * (target_rms / level)
