"""Loudspeaker playback model (the adversary's attack device).

The paper's attacks replay sounds through a Razer RC30 sound bar placed
10 cm behind the barrier.  The model band-limits playback, rolls off the
low end (small drivers cannot reproduce deep bass), and adds mild
harmonic distortion — the classic replay-attack artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_1d, ensure_2d, ensure_positive


@dataclass(frozen=True)
class LoudspeakerSpec:
    """Static loudspeaker parameters.

    Attributes
    ----------
    name:
        Identifier for reports.
    low_cut_hz:
        −3 dB low-frequency roll-off (small drivers ≈ 120–180 Hz).
    high_cut_hz:
        Upper bandwidth limit.
    harmonic_distortion:
        Amplitude of the quadratic nonlinearity term (0 disables).
    """

    name: str
    low_cut_hz: float = 150.0
    high_cut_hz: float = 16_000.0
    harmonic_distortion: float = 0.03

    def __post_init__(self) -> None:
        if self.low_cut_hz <= 0 or self.high_cut_hz <= self.low_cut_hz:
            raise ConfigurationError(
                f"{self.name}: need 0 < low_cut_hz < high_cut_hz"
            )
        if self.harmonic_distortion < 0:
            raise ConfigurationError(
                f"{self.name}: harmonic_distortion must be >= 0"
            )


#: Sound-bar class playback device (Razer RC30 stand-in).
SOUND_BAR = LoudspeakerSpec(name="sound bar", low_cut_hz=140.0)

#: Smartwatch built-in speaker: tiny driver, strong low-frequency loss.
WEARABLE_SPEAKER = LoudspeakerSpec(
    name="wearable speaker", low_cut_hz=400.0, high_cut_hz=8000.0,
    harmonic_distortion=0.05,
)


class Loudspeaker:
    """Convert a digital signal into an emitted sound field."""

    def __init__(self, spec: LoudspeakerSpec) -> None:
        self.spec = spec

    def frequency_response(self, frequencies: np.ndarray) -> np.ndarray:
        """Linear playback gain at each frequency."""
        frequencies = np.asarray(frequencies, dtype=np.float64)
        safe = np.maximum(frequencies, 1e-3)
        low = 1.0 / (1.0 + (self.spec.low_cut_hz / safe) ** 4)
        high = 1.0 / (1.0 + (safe / self.spec.high_cut_hz) ** 8)
        return np.sqrt(low * high)

    def play(self, signal: np.ndarray, sample_rate: float) -> np.ndarray:
        """Emit ``signal`` through the driver.

        Applies the band-pass response and a weak memoryless quadratic
        nonlinearity (even-harmonic distortion).
        """
        samples = ensure_1d(signal)
        ensure_positive(sample_rate, "sample_rate")
        spectrum = np.fft.rfft(samples)
        frequencies = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate)
        shaped = np.fft.irfft(
            spectrum * self.frequency_response(frequencies), n=samples.size
        )
        if self.spec.harmonic_distortion > 0:
            peak = float(np.max(np.abs(shaped))) + 1e-12
            normalized = shaped / peak
            shaped = peak * (
                normalized
                + self.spec.harmonic_distortion * normalized**2
            )
        return shaped

    def play_batch(
        self, signals: np.ndarray, sample_rate: float
    ) -> np.ndarray:
        """:meth:`play` over a ``(batch, time)`` stack of signals.

        Row ``i`` of the result is bitwise identical to
        ``play(signals[i], sample_rate)``: the FFT shaping runs along the
        last axis and the distortion normalizes by each row's own peak.
        """
        samples = ensure_2d(signals, "signals")
        ensure_positive(sample_rate, "sample_rate")
        spectrum = np.fft.rfft(samples, axis=-1)
        frequencies = np.fft.rfftfreq(
            samples.shape[-1], d=1.0 / sample_rate
        )
        shaped = np.fft.irfft(
            spectrum * self.frequency_response(frequencies),
            n=samples.shape[-1],
            axis=-1,
        )
        if self.spec.harmonic_distortion > 0:
            peaks = np.max(np.abs(shaped), axis=-1, keepdims=True) + 1e-12
            normalized = shaped / peaks
            shaped = peaks * (
                normalized
                + self.spec.harmonic_distortion * normalized**2
            )
        return shaped
