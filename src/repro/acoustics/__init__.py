"""Acoustics substrate: barriers, propagation, rooms, mics, loudspeakers.

Implements the physical layer between a sound source and a recording
device: sound-pressure-level calibration, the frequency-selective barrier
transmission of Eq. (1), distance attenuation with air absorption, room
reverberation and ambient noise, and device transducer models.
"""

from repro.acoustics.materials import (
    BRICK_WALL,
    BarrierMaterial,
    GLASS_WALL,
    GLASS_WINDOW,
    MATERIALS,
    META_NOTCH_HF,
    META_NOTCH_SPEECH,
    MetamaterialBarrier,
    WOODEN_DOOR,
    get_material,
    list_materials,
)
from repro.acoustics.barrier import Barrier
from repro.acoustics.spl import (
    REFERENCE_RMS_AT_65_DB,
    db_to_gain,
    gain_to_db,
    rms,
    scale_to_spl,
    spl_of,
)
from repro.acoustics.propagation import air_absorption, propagate
from repro.acoustics.room import Room, RoomConfig
from repro.acoustics.microphone import Microphone, MicrophoneSpec
from repro.acoustics.loudspeaker import Loudspeaker, LoudspeakerSpec

__all__ = [
    "BarrierMaterial",
    "GLASS_WINDOW",
    "GLASS_WALL",
    "WOODEN_DOOR",
    "BRICK_WALL",
    "MATERIALS",
    "META_NOTCH_SPEECH",
    "META_NOTCH_HF",
    "MetamaterialBarrier",
    "get_material",
    "list_materials",
    "Barrier",
    "REFERENCE_RMS_AT_65_DB",
    "db_to_gain",
    "gain_to_db",
    "rms",
    "scale_to_spl",
    "spl_of",
    "air_absorption",
    "propagate",
    "Room",
    "RoomConfig",
    "Microphone",
    "MicrophoneSpec",
    "Loudspeaker",
    "LoudspeakerSpec",
]
