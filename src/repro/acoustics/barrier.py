"""Thru-barrier transmission filter (paper Eq. (1)).

A :class:`Barrier` applies its material's frequency-dependent transmission
gain to a signal in the FFT domain, optionally with small random
structural resonances so repeated transmissions are not bit-identical
(real barriers flex and rattle slightly).
"""

from __future__ import annotations

import numpy as np

from repro.acoustics.materials import BarrierMaterial
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d, ensure_positive


class Barrier:
    """A physical barrier between the sound source and the room.

    Parameters
    ----------
    material:
        Frequency-selective transmission curve.
    thickness_scale:
        Multiplier on the material's transmission loss in dB (a double
        pane would be ~2.0).  Defaults to 1.0.
    resonance_db:
        Standard deviation (dB) of random per-transmission ripples in the
        transmission curve, modelling structural resonances; 0 disables.

    Examples
    --------
    >>> from repro.acoustics import GLASS_WINDOW, Barrier
    >>> barrier = Barrier(GLASS_WINDOW)
    >>> import numpy as np
    >>> out = barrier.transmit(np.sin(np.arange(1600) * 0.5), 16000.0)
    """

    def __init__(
        self,
        material: BarrierMaterial,
        thickness_scale: float = 1.0,
        resonance_db: float = 1.0,
    ) -> None:
        ensure_positive(thickness_scale, "thickness_scale")
        if resonance_db < 0:
            raise ValueError("resonance_db must be >= 0")
        self.material = material
        self.thickness_scale = float(thickness_scale)
        self.resonance_db = float(resonance_db)

    def transmission_gain(self, frequencies: np.ndarray) -> np.ndarray:
        """Deterministic amplitude gain of the barrier at each frequency.

        Delegates to :meth:`BarrierMaterial.transmission_gain` — the
        single implementation of the loss→gain conversion — so material
        subclasses (metamaterial notches) shape every channel built on
        this barrier.
        """
        return self.material.transmission_gain(
            frequencies, thickness_scale=self.thickness_scale
        )

    def transmit(
        self,
        signal: np.ndarray,
        sample_rate: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Pass ``signal`` through the barrier.

        Applies the material transmission gain in the FFT domain, plus
        smooth random resonance ripples when ``resonance_db > 0``.
        """
        samples = ensure_1d(signal)
        ensure_positive(sample_rate, "sample_rate")
        spectrum = np.fft.rfft(samples)
        frequencies = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate)
        gain = self.transmission_gain(frequencies)
        if self.resonance_db > 0:
            gain = gain * self._resonance_ripple(frequencies, rng)
        return np.fft.irfft(spectrum * gain, n=samples.size)

    def _resonance_ripple(
        self,
        frequencies: np.ndarray,
        rng: SeedLike,
    ) -> np.ndarray:
        """Smooth log-amplitude ripple across frequency (structural modes)."""
        generator = as_generator(rng)
        n_modes = 6
        ripple_db = np.zeros_like(frequencies)
        span = max(float(frequencies[-1]), 1.0)
        for _ in range(n_modes):
            center = generator.uniform(100.0, span)
            width = generator.uniform(span / 40.0, span / 10.0)
            amplitude = generator.normal(0.0, self.resonance_db)
            ripple_db += amplitude * np.exp(
                -0.5 * ((frequencies - center) / width) ** 2
            )
        return 10.0 ** (ripple_db / 20.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Barrier(material={self.material.name!r}, "
            f"thickness_scale={self.thickness_scale})"
        )
