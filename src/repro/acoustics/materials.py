"""Barrier materials and their frequency-dependent transmission.

Section III-B of the paper models thru-barrier attenuation as
``P(x + d) = P(x) * exp(-alpha(f, material) * d)`` and reports that for
glass windows and wooden doors the coefficient at high frequencies
(glass 0.02, wood 0.04) is *smaller* than at low frequencies (glass 0.10,
wood 0.14) — in the paper's convention a larger coefficient means the
sound penetrates more easily, so high frequencies are absorbed much more
than low ones.  Brick walls have small coefficients everywhere (≈0.02)
and block sound broadly.

We encode each material as a smooth transmission-loss curve anchored at a
low-frequency plateau and a high-frequency plateau with a logistic
transition around a corner frequency.  The anchor losses are chosen so
the paper's qualitative facts hold: thru-barrier sound is dominated by
85–500 Hz content; >500 Hz components are attenuated severely (Fig. 3);
wood transmits slightly more than glass overall (Table I); brick defeats
the attack outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BarrierMaterial:
    """Frequency-selective transmission loss of one barrier material.

    Attributes
    ----------
    name:
        Human-readable material name.
    alpha_low, alpha_high:
        The paper's transmissibility coefficients below/above the corner
        (reference data; larger = more transmissive).
    loss_low_db:
        Transmission loss (dB) of the low-frequency plateau (< corner).
    loss_high_db:
        Transmission loss (dB) of the high-frequency plateau (> corner).
    corner_hz:
        Center of the logistic transition between plateaus.
    transition_octaves:
        Width of the transition (in octaves) — smaller is sharper.
    """

    name: str
    alpha_low: float
    alpha_high: float
    loss_low_db: float
    loss_high_db: float
    corner_hz: float = 700.0
    transition_octaves: float = 1.0

    def __post_init__(self) -> None:
        if self.loss_low_db < 0 or self.loss_high_db < 0:
            raise ConfigurationError(
                f"{self.name}: transmission losses must be >= 0 dB"
            )
        if self.corner_hz <= 0:
            raise ConfigurationError(
                f"{self.name}: corner_hz must be > 0"
            )

    def transmission_loss_db(self, frequencies: np.ndarray) -> np.ndarray:
        """Transmission loss (dB, >= 0) at each frequency."""
        frequencies = np.asarray(frequencies, dtype=np.float64)
        safe = np.maximum(frequencies, 1.0)
        octaves_from_corner = np.log2(safe / self.corner_hz)
        blend = 1.0 / (
            1.0 + np.exp(-4.0 * octaves_from_corner / self.transition_octaves)
        )
        return self.loss_low_db + blend * (
            self.loss_high_db - self.loss_low_db
        )

    def transmission_gain(
        self,
        frequencies: np.ndarray,
        thickness_scale: float = 1.0,
    ) -> np.ndarray:
        """Linear amplitude gain (<= 1) at each frequency.

        ``thickness_scale`` multiplies the loss in dB (a double pane is
        ~2.0).  This is the single source of truth for the loss→gain
        conversion: :meth:`repro.acoustics.barrier.Barrier
        .transmission_gain` delegates here, so subclasses overriding
        :meth:`transmission_loss_db` (e.g. metamaterial notches) apply
        in every channel that involves the material.
        """
        loss_db = self.transmission_loss_db(frequencies) * thickness_scale
        return 10.0 ** (-loss_db / 20.0)


#: Glass window: paper coefficients 0.10 (low) / 0.02 (high).  The corner
#: sits at 500 Hz: the paper observes thru-barrier voice is dominated by
#: 85–500 Hz content and components above ~500 Hz attenuate severely.
GLASS_WINDOW = BarrierMaterial(
    name="glass window",
    alpha_low=0.10, alpha_high=0.02,
    loss_low_db=7.0, loss_high_db=38.0,
    corner_hz=500.0,
)

#: Interior glass wall (office partition) — similar to a window, a touch
#: heavier overall.
GLASS_WALL = BarrierMaterial(
    name="glass wall",
    alpha_low=0.09, alpha_high=0.02,
    loss_low_db=8.0, loss_high_db=40.0,
    corner_hz=500.0,
)

#: Wooden door: paper coefficients 0.14 (low) / 0.04 (high); slightly more
#: transmissive than glass overall (Table I attack-success ordering).
WOODEN_DOOR = BarrierMaterial(
    name="wooden door",
    alpha_low=0.14, alpha_high=0.04,
    loss_low_db=5.0, loss_high_db=34.0,
    corner_hz=550.0,
)

#: Brick wall: low transmissibility at all frequencies; attacks fail.
BRICK_WALL = BarrierMaterial(
    name="brick wall",
    alpha_low=0.02, alpha_high=0.02,
    loss_low_db=38.0, loss_high_db=45.0,
)


@dataclass(frozen=True)
class MetamaterialBarrier(BarrierMaterial):
    """Acoustic-metamaterial panel: a base material plus a sharp notch.

    MetaGuardian-style membrane/Helmholtz resonator arrays add a deep,
    narrow (Gaussian in log-frequency) stop band on top of the mass-law
    transmission of the host panel.  Because the notch lives in
    :meth:`transmission_loss_db`, it applies automatically everywhere a
    material is used — the attack channel's barrier stage, thickness
    sweeps, and any custom channel built from a ``BarrierStage``.

    Attributes
    ----------
    notch_hz:
        Center frequency of the resonator stop band.
    notch_depth_db:
        Extra transmission loss (dB) at the notch center.
    notch_octaves:
        Standard deviation of the notch in octaves — smaller is sharper.
    """

    notch_hz: float = 300.0
    notch_depth_db: float = 30.0
    notch_octaves: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.notch_hz <= 0:
            raise ConfigurationError(
                f"{self.name}: notch_hz must be > 0"
            )
        if self.notch_depth_db < 0:
            raise ConfigurationError(
                f"{self.name}: notch_depth_db must be >= 0 dB"
            )
        if self.notch_octaves <= 0:
            raise ConfigurationError(
                f"{self.name}: notch_octaves must be > 0"
            )

    def transmission_loss_db(self, frequencies: np.ndarray) -> np.ndarray:
        base = super().transmission_loss_db(frequencies)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        safe = np.maximum(frequencies, 1.0)
        octaves_from_notch = np.log2(safe / self.notch_hz)
        notch = self.notch_depth_db * np.exp(
            -0.5 * (octaves_from_notch / self.notch_octaves) ** 2
        )
        return base + notch


#: Metamaterial panel tuned to the thru-barrier attack's carrier band.
#: The paper observes thru-barrier voice is dominated by 85–500 Hz
#: content (Fig. 3); a resonator array notched at 250 Hz removes exactly
#: the band that survives an ordinary window, defeating the attack
#: without thickening the panel.
META_NOTCH_SPEECH = MetamaterialBarrier(
    name="metamaterial speech-notch panel",
    alpha_low=0.10, alpha_high=0.02,
    loss_low_db=7.0, loss_high_db=38.0,
    corner_hz=500.0,
    notch_hz=250.0, notch_depth_db=32.0, notch_octaves=0.8,
)

#: Control panel: the same host glass with the notch parked at 2.5 kHz,
#: far above the band that penetrates the barrier.  Sweeping it against
#: the attack suite shows notch *placement*, not notch depth, is what
#: defeats thru-barrier injection.
META_NOTCH_HF = MetamaterialBarrier(
    name="metamaterial HF-notch panel",
    alpha_low=0.10, alpha_high=0.02,
    loss_low_db=7.0, loss_high_db=38.0,
    corner_hz=500.0,
    notch_hz=2500.0, notch_depth_db=32.0, notch_octaves=0.8,
)

#: Registry keyed by short name.
MATERIALS: Dict[str, BarrierMaterial] = {
    "glass_window": GLASS_WINDOW,
    "glass_wall": GLASS_WALL,
    "wooden_door": WOODEN_DOOR,
    "brick_wall": BRICK_WALL,
    "meta_speech_notch": META_NOTCH_SPEECH,
    "meta_hf_notch": META_NOTCH_HF,
}


def list_materials() -> Tuple[str, ...]:
    """Sorted registry keys, for CLI help text and error messages."""
    return tuple(sorted(MATERIALS))


def get_material(name: str) -> BarrierMaterial:
    """Look up a material by registry key with a helpful error."""
    try:
        return MATERIALS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown material {name!r}; known: {list(list_materials())}"
        ) from None
