"""Microphone models for VA devices and wearables.

A microphone applies a band-pass frequency response, adds self-noise, and
(for far-field VA arrays) applies extra capture gain — the property that
makes smart speakers *more* susceptible to faint thru-barrier sounds than
phones (paper § III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.spl import REFERENCE_RMS_AT_65_DB, db_to_gain
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d, ensure_positive


@dataclass(frozen=True)
class MicrophoneSpec:
    """Static microphone parameters.

    Attributes
    ----------
    name:
        Identifier for reports.
    low_cut_hz, high_cut_hz:
        −3 dB band edges of the capture response.
    noise_floor_db:
        Equivalent input noise in dB SPL.
    far_field_gain_db:
        Additional gain from beamforming / high-sensitivity front ends
        (smart-speaker arrays ≈ +6 dB; phones ≈ 0 dB).
    clip_level:
        Full-scale amplitude at which the ADC clips.
    """

    name: str
    low_cut_hz: float = 60.0
    high_cut_hz: float = 7800.0
    noise_floor_db: float = 30.0
    far_field_gain_db: float = 0.0
    clip_level: float = 1.0

    def __post_init__(self) -> None:
        if self.low_cut_hz <= 0 or self.high_cut_hz <= self.low_cut_hz:
            raise ConfigurationError(
                f"{self.name}: need 0 < low_cut_hz < high_cut_hz"
            )


#: Far-field array of a smart speaker (Google Home / Echo class).
SMART_SPEAKER_MIC = MicrophoneSpec(
    name="far-field array", far_field_gain_db=6.0, noise_floor_db=28.0
)

#: Laptop microphone (MacBook class).
LAPTOP_MIC = MicrophoneSpec(
    name="laptop mic", far_field_gain_db=3.0, noise_floor_db=30.0
)

#: Smartphone microphone.
PHONE_MIC = MicrophoneSpec(
    name="phone mic", far_field_gain_db=0.0, noise_floor_db=32.0
)

#: Smartwatch / wearable microphone.
WEARABLE_MIC = MicrophoneSpec(
    name="wearable mic", far_field_gain_db=0.0, noise_floor_db=33.0,
    high_cut_hz=7500.0,
)


class Microphone:
    """Capture a sound field into a digital recording."""

    def __init__(self, spec: MicrophoneSpec) -> None:
        self.spec = spec

    def frequency_response(self, frequencies: np.ndarray) -> np.ndarray:
        """Linear gain of the capture chain at each frequency."""
        frequencies = np.asarray(frequencies, dtype=np.float64)
        safe = np.maximum(frequencies, 1e-3)
        low = 1.0 / (1.0 + (self.spec.low_cut_hz / safe) ** 4)
        high = 1.0 / (1.0 + (safe / self.spec.high_cut_hz) ** 8)
        overall = db_to_gain(self.spec.far_field_gain_db)
        return overall * np.sqrt(low * high)

    def capture(
        self,
        sound_field: np.ndarray,
        sample_rate: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Record the sound field arriving at the microphone.

        Applies the frequency response, adds self-noise at the spec'd
        equivalent input level, and clips at full scale.
        """
        samples = ensure_1d(sound_field)
        ensure_positive(sample_rate, "sample_rate")
        generator = as_generator(rng)
        spectrum = np.fft.rfft(samples)
        frequencies = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate)
        shaped = np.fft.irfft(
            spectrum * self.frequency_response(frequencies), n=samples.size
        )
        noise_rms = REFERENCE_RMS_AT_65_DB * db_to_gain(
            self.spec.noise_floor_db - 65.0
        )
        shaped = shaped + noise_rms * generator.standard_normal(samples.size)
        return np.clip(shaped, -self.spec.clip_level, self.spec.clip_level)
