"""Free-field propagation: spherical spreading and air absorption."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_1d, ensure_positive

#: Reference distance (m) at which source SPL is specified.
REFERENCE_DISTANCE_M = 1.0

#: Air absorption in dB per meter per kHz (rough room-condition value).
_AIR_ABSORPTION_DB_PER_M_PER_KHZ = 0.005


def spreading_gain(distance_m: float) -> float:
    """Amplitude gain from spherical spreading relative to 1 m.

    Distances below the reference are clamped so a source right next to a
    microphone does not diverge.
    """
    ensure_positive(distance_m, "distance_m")
    return REFERENCE_DISTANCE_M / max(distance_m, REFERENCE_DISTANCE_M)


def air_absorption(
    frequencies: np.ndarray,
    distance_m: float,
) -> np.ndarray:
    """Linear amplitude gain of atmospheric absorption over a path.

    High frequencies lose slightly more energy in air; the effect is
    small at room scale but contributes to the 5 m degradation seen in
    Fig. 11(c).
    """
    ensure_positive(distance_m, "distance_m")
    frequencies = np.asarray(frequencies, dtype=np.float64)
    loss_db = (
        _AIR_ABSORPTION_DB_PER_M_PER_KHZ
        * (frequencies / 1000.0)
        * distance_m
    )
    return 10.0 ** (-loss_db / 20.0)


def propagate(
    signal: np.ndarray,
    sample_rate: float,
    distance_m: float,
    include_delay: bool = False,
    speed_of_sound: float = 343.0,
) -> np.ndarray:
    """Propagate a signal ``distance_m`` through air.

    Applies spherical-spreading attenuation and frequency-dependent air
    absorption; optionally prepends the acoustic travel delay (used when
    two devices at different distances record the same source).
    """
    samples = ensure_1d(signal)
    ensure_positive(sample_rate, "sample_rate")
    spectrum = np.fft.rfft(samples)
    frequencies = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate)
    shaped = np.fft.irfft(
        spectrum * air_absorption(frequencies, distance_m), n=samples.size
    )
    shaped *= spreading_gain(distance_m)
    if include_delay:
        delay_samples = int(round(distance_m / speed_of_sound * sample_rate))
        if delay_samples > 0:
            shaped = np.concatenate([np.zeros(delay_samples), shaped])
    return shaped
