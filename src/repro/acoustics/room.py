"""Room model: geometry, reverberation, ambient noise.

The paper evaluates in four rooms (A–D: one apartment, three offices) of
different sizes and barrier types.  A :class:`Room` adds early-reflection
reverberation scaled to the room size and generates a pink ambient noise
floor, both of which shape the recordings the defense compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.materials import BarrierMaterial
from repro.acoustics.spl import REFERENCE_RMS_AT_65_DB, db_to_gain
from repro.dsp.generators import pink_noise
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d, ensure_positive


@dataclass(frozen=True)
class RoomConfig:
    """Static description of one room environment.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"Room A"``.
    width_m, length_m:
        Floor dimensions (the paper reports 7×6, 7×7, 6×4, 5×3 m).
    barrier:
        The barrier between the adversary and the room.
    ambient_noise_db:
        Ambient noise floor in dB SPL (quiet office ≈ 38–45 dB).
    reflectivity:
        Average wall reflection coefficient in (0, 1); higher means more
        reverberant (glass-walled offices are livelier than furnished
        apartments).
    """

    name: str
    width_m: float
    length_m: float
    barrier: BarrierMaterial
    ambient_noise_db: float = 46.0
    reflectivity: float = 0.35

    def __post_init__(self) -> None:
        ensure_positive(self.width_m, "width_m")
        ensure_positive(self.length_m, "length_m")
        if not 0.0 < self.reflectivity < 1.0:
            raise ConfigurationError(
                f"reflectivity must be in (0, 1), got {self.reflectivity}"
            )

    @property
    def mean_free_path_m(self) -> float:
        """Mean distance between wall reflections (2-D approximation)."""
        area = self.width_m * self.length_m
        perimeter = 2.0 * (self.width_m + self.length_m)
        return float(np.pi * area / perimeter)


class Room:
    """Acoustic behaviour of one room: reverberation + ambient noise."""

    #: Number of early reflections added by :meth:`add_reverberation`.
    N_REFLECTIONS = 6

    def __init__(self, config: RoomConfig) -> None:
        self.config = config

    def add_reverberation(
        self,
        signal: np.ndarray,
        sample_rate: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Superimpose decaying early reflections onto a dry signal.

        Reflection delays follow the room's mean free path with random
        spread; each bounce loses ``1 - reflectivity`` of its amplitude.
        """
        samples = ensure_1d(signal)
        ensure_positive(sample_rate, "sample_rate")
        generator = as_generator(rng)
        output = samples.copy()
        speed_of_sound = 343.0
        base_delay_s = self.config.mean_free_path_m / speed_of_sound
        for bounce in range(1, self.N_REFLECTIONS + 1):
            delay_s = base_delay_s * bounce * float(
                generator.uniform(0.8, 1.2)
            )
            delay = int(round(delay_s * sample_rate))
            if delay <= 0 or delay >= samples.size:
                continue
            gain = self.config.reflectivity**bounce
            output[delay:] += gain * samples[:-delay]
        return output

    def ambient_noise(
        self,
        duration_s: float,
        sample_rate: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Pink ambient noise at the room's configured SPL floor."""
        amplitude = REFERENCE_RMS_AT_65_DB * db_to_gain(
            self.config.ambient_noise_db - 65.0
        )
        return pink_noise(
            duration_s, sample_rate, amplitude=amplitude, rng=rng
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (
            f"Room({cfg.name!r}, {cfg.width_m}x{cfg.length_m} m, "
            f"barrier={cfg.barrier.name!r})"
        )
