"""repro — reproduction of the ICDCS 2022 thru-barrier voice-attack defense.

Top-level package re-exporting the public API.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured record.
"""

__version__ = "1.0.0"

from repro.errors import (
    ArtifactIntegrityError,
    CalibrationError,
    ConfigurationError,
    ModelError,
    ProtocolError,
    ReproError,
    ServiceOverloadError,
    SignalError,
    StoreError,
    SynthesisError,
    WorkerError,
)
from repro.core.pipeline import (
    DefenseConfig,
    DefensePipeline,
    DefenseVerdict,
)
from repro.core.phoneme_selection import (
    PhonemeSelectionConfig,
    PhonemeSelector,
)
from repro.core.segmentation import PhonemeSegmenter, SegmenterConfig
from repro.phonemes.corpus import SyntheticCorpus
from repro.phonemes.speaker import generate_speakers
from repro.sensing.cross_domain import CrossDomainSensor

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "SignalError",
    "SynthesisError",
    "ModelError",
    "ProtocolError",
    "CalibrationError",
    "ServiceOverloadError",
    "StoreError",
    "ArtifactIntegrityError",
    "WorkerError",
    "DefenseConfig",
    "DefensePipeline",
    "DefenseVerdict",
    "PhonemeSelectionConfig",
    "PhonemeSelector",
    "PhonemeSegmenter",
    "SegmenterConfig",
    "SyntheticCorpus",
    "generate_speakers",
    "CrossDomainSensor",
]
