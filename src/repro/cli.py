"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Simulate one legitimate command and one thru-barrier replay attack
    and print the defense's verdicts (the quickstart, as a CLI).
``select``
    Run the offline barrier-effect-sensitive phoneme selection and
    print the selected set.
``evaluate``
    Run a scaled-down Fig. 9-style experiment for one attack kind and
    print AUC/EER for the full system and both baselines.
``attack-study``
    Run the Table I-style VA vulnerability study.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the ICDCS 2022 thru-barrier voice-attack "
            "defense"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="legit vs replay-attack demo")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--text", default="alexa unlock the back door",
        help="voice command text (must be in the lexicon)",
    )

    select = sub.add_parser(
        "select", help="offline sensitive-phoneme selection"
    )
    select.add_argument("--seed", type=int, default=99)
    select.add_argument(
        "--segments", type=int, default=24,
        help="renditions per phoneme",
    )

    evaluate = sub.add_parser(
        "evaluate", help="scaled-down ROC experiment for one attack"
    )
    evaluate.add_argument(
        "attack",
        choices=["random", "replay", "synthesis", "hidden_voice"],
    )
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--commands", type=int, default=3)
    evaluate.add_argument("--attacks", type=int, default=3)

    study = sub.add_parser(
        "attack-study", help="Table I-style VA vulnerability study"
    )
    study.add_argument("--attempts", type=int, default=10)
    study.add_argument("--seed", type=int, default=77)
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.core import DefensePipeline
    from repro.core.segmentation import train_default_segmenter
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus, phonemize

    print("Training segmenter...")
    pipeline = DefensePipeline(
        segmenter=train_default_segmenter(seed=args.seed)
    )
    corpus = SyntheticCorpus(n_speakers=4, seed=args.seed + 1)
    scenario = AttackScenario(room_config=ROOM_A)
    user = corpus.speakers[0]
    utterance = corpus.utterance(
        phonemize(args.text), speaker=user, rng=args.seed + 2
    )
    va, wearable = scenario.legitimate_recordings(
        utterance, spl_db=70.0, rng=args.seed + 3
    )
    legit = pipeline.score(va, wearable, rng=args.seed + 4)
    attack = ReplayAttack(corpus, user).generate(
        command=args.text, rng=args.seed + 5
    )
    va, wearable = scenario.attack_recordings(
        attack, spl_db=75.0, rng=args.seed + 6
    )
    attacked = pipeline.score(va, wearable, rng=args.seed + 7)
    print(f"legitimate score : {legit:.3f}")
    print(f"attack score     : {attacked:.3f}")
    print(
        "verdict          : attack detected"
        if attacked < legit - 0.2
        else "verdict          : inconclusive (rerun with more data)"
    )
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.core.phoneme_selection import (
        PhonemeSelectionConfig,
        PhonemeSelector,
    )
    from repro.phonemes.inventory import PAPER_SELECTED_PHONEMES

    selector = PhonemeSelector(
        config=PhonemeSelectionConfig(n_segments=args.segments),
        seed=args.seed,
    )
    result = selector.run()
    print(
        f"selected {len(result.selected)}/37: "
        f"{sorted(result.selected)}"
    )
    print(f"rejected: {sorted(result.rejected)}")
    match = set(result.selected) == set(PAPER_SELECTED_PHONEMES)
    print(f"matches the paper's 31-phoneme set: {match}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.attacks.base import AttackKind
    from repro.core.segmentation import train_default_segmenter
    from repro.eval.campaign import CampaignConfig, DetectorBank
    from repro.eval.experiment import run_attack_experiment

    print("Training segmenter...")
    detectors = DetectorBank(
        segmenter=train_default_segmenter(seed=args.seed)
    )
    config = CampaignConfig(
        n_commands_per_participant=args.commands,
        n_attacks_per_kind=args.attacks,
        seed=args.seed,
    )
    print("Running the campaign (this takes a few minutes)...")
    result = run_attack_experiment(
        AttackKind(args.attack), config=config, detectors=detectors
    )
    for detector, metrics in result.metrics.items():
        print(f"{detector:20}: {metrics}")
    return 0


def _cmd_attack_study(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.acoustics.propagation import propagate
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus
    from repro.utils.rng import child_rng
    from repro.va import VA_DEVICES, VoiceAssistantDevice

    corpus = SyntheticCorpus(n_speakers=2, seed=args.seed)
    scenario = AttackScenario(room_config=ROOM_A)
    replay = ReplayAttack(corpus, corpus.speakers[0])
    rng = np.random.default_rng(args.seed + 1)
    print(f"{'device':14} {'65 dB':>8} {'75 dB':>8}")
    for name, spec in VA_DEVICES.items():
        cells = []
        for level in (65.0, 75.0):
            successes = 0
            for attempt in range(args.attempts):
                attack = replay.generate(
                    command=spec.wake_word,
                    rng=child_rng(rng, f"{name}{level}{attempt}"),
                )
                interior = scenario.channel.transmit(
                    attack.waveform, attack.sample_rate, level,
                    rng=child_rng(rng, f"b{attempt}"),
                )
                device = VoiceAssistantDevice(spec)
                successes += device.try_trigger(
                    propagate(interior, attack.sample_rate, 2.0),
                    attack.sample_rate,
                    rng=child_rng(rng, f"t{attempt}"),
                ).triggered
            cells.append(successes)
        print(
            f"{name:14} {cells[0]:>5}/{args.attempts} "
            f"{cells[1]:>5}/{args.attempts}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "select": _cmd_select,
        "evaluate": _cmd_evaluate,
        "attack-study": _cmd_attack_study,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
