"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Simulate one legitimate command and one thru-barrier replay attack
    and print the defense's verdicts (the quickstart, as a CLI).
``select``
    Run the offline barrier-effect-sensitive phoneme selection and
    print the selected set.
``evaluate``
    Run a scaled-down Fig. 9-style experiment for one attack kind and
    print AUC/EER for the full system and both baselines.
``attack-study``
    Run the Table I-style VA vulnerability study.
``serve``
    Start the in-process online verification service, answer a few
    self-test requests, and print the metrics snapshot.
``loadgen``
    Drive the service with a synthetic closed- or open-loop load and
    print latency percentiles plus the service metrics snapshot.
``store``
    Manage the trained-artifact store (``ls``, ``info``, ``gc``,
    ``export``, ``import``, ``verify``).  ``serve`` and ``loadgen``
    read/publish trained segmenters there via ``--store-dir``.
``fleet``
    Run the user-sharded serving fleet (``serve``, ``loadgen``):
    consistent-hash routing over N shards with per-user profiles,
    SLO-driven shedding, and warm-worker autoscaling.
``redteam``
    Run adaptive-adversary campaigns (``attack``, ``curve``,
    ``report``): budgeted optimizing attackers vs the deployed
    detector, hardened and unhardened.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    from repro.acoustics.materials import list_materials

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the ICDCS 2022 thru-barrier voice-attack "
            "defense"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="legit vs replay-attack demo")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--text", default="alexa unlock the back door",
        help="voice command text (must be in the lexicon)",
    )

    select = sub.add_parser(
        "select", help="offline sensitive-phoneme selection"
    )
    select.add_argument("--seed", type=int, default=99)
    select.add_argument(
        "--segments", type=int, default=24,
        help="renditions per phoneme",
    )

    evaluate = sub.add_parser(
        "evaluate", help="scaled-down ROC experiment for one attack"
    )
    evaluate.add_argument(
        "attack",
        nargs="?",
        default=None,
        choices=["random", "replay", "synthesis", "hidden_voice"],
        help=(
            "attack kind to evaluate (optional with --scenario, "
            "which carries its own default)"
        ),
    )
    evaluate.add_argument(
        "--scenario", default=None, metavar="NAME",
        help=(
            "registered scenario pack: attack x material x channel "
            "graph x detector config under one name (e.g. "
            "ultrasound-solid, metamaterial-barrier; an unknown name "
            "errors with the full list)"
        ),
    )
    evaluate.add_argument(
        "--material", default=None, metavar="KEY",
        help=(
            "override the barrier material in every room "
            f"(one of: {', '.join(list_materials())})"
        ),
    )
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--commands", type=int, default=3)
    evaluate.add_argument("--attacks", type=int, default=3)
    evaluate.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes for campaign scoring "
            "(0 = one per CPU core; results are identical for any count)"
        ),
    )
    evaluate.add_argument(
        "--executor", choices=["process", "thread", "inline"],
        default="process",
        help=(
            "runtime executor for multi-worker runs "
            "(results are identical for any kind)"
        ),
    )
    evaluate.add_argument(
        "--segmenter",
        choices=["fast", "paper", "rd"],
        default="paper",
        help=(
            "segmenter backend for the full system: fast (BLSTM, tiny "
            "training set), paper (BLSTM, full recipe), rd "
            "(training-free rate-distortion)"
        ),
    )

    study = sub.add_parser(
        "attack-study", help="Table I-style VA vulnerability study"
    )
    study.add_argument("--attempts", type=int, default=10)
    study.add_argument("--seed", type=int, default=77)
    study.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes for the device x SPL cells "
            "(0 = one per CPU core; results are identical for any count)"
        ),
    )
    study.add_argument(
        "--executor", choices=["process", "thread", "inline"],
        default="process",
        help=(
            "runtime executor for multi-worker runs "
            "(results are identical for any kind)"
        ),
    )

    for name, help_text in (
        ("serve", "online verification service self-test"),
        ("loadgen", "synthetic load against the in-process service"),
    ):
        serving = sub.add_parser(name, help=help_text)
        serving.add_argument("--seed", type=int, default=0)
        serving.add_argument(
            "--workers", type=int, default=2,
            help="warm verification workers (>= 1)",
        )
        serving.add_argument(
            "--worker-mode", choices=["thread", "process"],
            default="thread",
        )
        serving.add_argument(
            "--queue-capacity", type=int, default=64,
            help="bound of the admission queue",
        )
        serving.add_argument(
            "--policy",
            choices=["block", "reject", "shed-oldest"],
            default="block",
            help="backpressure policy when the queue is full",
        )
        serving.add_argument(
            "--max-wait", type=float, default=0.02, metavar="S",
            help="micro-batch formation deadline in seconds",
        )
        serving.add_argument(
            "--batch-size", type=int, default=8,
            help=(
                "largest micro-batch dispatched to one worker "
                "(the upper bound with --p95-target-ms)"
            ),
        )
        serving.add_argument(
            "--p95-target-ms", type=float, default=None, metavar="MS",
            help=(
                "latency-adaptive batching: steer the effective "
                "batch size toward this rolling end-to-end p95 "
                "(default: fixed --batch-size)"
            ),
        )
        serving.add_argument(
            "--deadline", type=float, default=None, metavar="S",
            help=(
                "per-request deadline in seconds; expired requests "
                "degrade to the full-recording fallback"
            ),
        )
        serving.add_argument(
            "--segmenter",
            choices=["none", "fast", "paper", "rd"],
            default="fast",
            help=(
                "segmenter backend workers warm up with: none (skip "
                "segmentation), fast (BLSTM, tiny training set), paper "
                "(BLSTM, full recipe; slow startup), rd (training-free "
                "rate-distortion; instant startup, no store needed)"
            ),
        )
        serving.add_argument(
            "--scenario", default=None, metavar="NAME",
            help=(
                "registered scenario pack workers build their sensor "
                "and detector config from (e.g. ultrasound-solid, "
                "metamaterial-barrier); part of the batch-"
                "compatibility fingerprint"
            ),
        )
        serving.add_argument(
            "--store-dir", default=None, metavar="DIR",
            help=(
                "artifact-store directory: workers load trained "
                "segmenter weights instead of retraining, and publish "
                "them after a cold start (default: $REPRO_STORE_DIR)"
            ),
        )
        serving.add_argument(
            "--no-store", action="store_true",
            help=(
                "ignore --store-dir and $REPRO_STORE_DIR; always "
                "train in-process"
            ),
        )
        serving.add_argument(
            "--threshold", type=float, default=None,
            help=(
                "detector decision threshold (default: score-only "
                "verdicts; required for --threshold-jitter)"
            ),
        )
        serving.add_argument(
            "--threshold-jitter", type=float, default=0.0, metavar="J",
            help=(
                "randomized defense: per-session threshold jitter "
                "(+-J around --threshold; 0 = deterministic detector)"
            ),
        )
        serving.add_argument(
            "--subset-fraction", type=float, default=1.0, metavar="F",
            help=(
                "randomized defense: per-session sensitive-phoneme "
                "fraction (1.0 = full paper set)"
            ),
        )
        if name == "serve":
            serving.add_argument(
                "--requests", type=int, default=6,
                help="self-test requests to answer before exiting",
            )
        else:
            serving.add_argument(
                "--requests", type=int, default=50,
                help="total requests to issue",
            )
            serving.add_argument(
                "--mode", choices=["closed", "open"], default="closed",
                help="closed loop (concurrency) or open loop (rate)",
            )
            serving.add_argument(
                "--concurrency", type=int, default=4,
                help="closed-loop client count",
            )
            serving.add_argument(
                "--rate", type=float, default=20.0, metavar="RPS",
                help="open-loop arrival rate",
            )
            serving.add_argument(
                "--users", type=int, default=0,
                help=(
                    "synthetic Zipf-skewed user population "
                    "(0 = legacy single-user stream)"
                ),
            )
            serving.add_argument(
                "--zipf-s", type=float, default=1.1, metavar="S",
                help="Zipf exponent of user activity",
            )

    from repro.fleet.cli import add_fleet_parser
    from repro.redteam.cli import add_redteam_parser
    from repro.store.cli import add_store_parser

    add_store_parser(sub)
    add_fleet_parser(sub)
    add_redteam_parser(sub)
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.core import DefensePipeline
    from repro.core.segmentation import train_default_segmenter
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus, phonemize

    print("Training segmenter...")
    pipeline = DefensePipeline(
        segmenter=train_default_segmenter(seed=args.seed)
    )
    corpus = SyntheticCorpus(n_speakers=4, seed=args.seed + 1)
    scenario = AttackScenario(room_config=ROOM_A)
    user = corpus.speakers[0]
    utterance = corpus.utterance(
        phonemize(args.text), speaker=user, rng=args.seed + 2
    )
    va, wearable = scenario.legitimate_recordings(
        utterance, spl_db=70.0, rng=args.seed + 3
    )
    legit = pipeline.score(va, wearable, rng=args.seed + 4)
    attack = ReplayAttack(corpus, user).generate(
        command=args.text, rng=args.seed + 5
    )
    va, wearable = scenario.attack_recordings(
        attack, spl_db=75.0, rng=args.seed + 6
    )
    attacked = pipeline.score(va, wearable, rng=args.seed + 7)
    print(f"legitimate score : {legit:.3f}")
    print(f"attack score     : {attacked:.3f}")
    print(
        "verdict          : attack detected"
        if attacked < legit - 0.2
        else "verdict          : inconclusive (rerun with more data)"
    )
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.core.phoneme_selection import (
        PhonemeSelectionConfig,
        PhonemeSelector,
    )
    from repro.phonemes.inventory import PAPER_SELECTED_PHONEMES

    selector = PhonemeSelector(
        config=PhonemeSelectionConfig(n_segments=args.segments),
        seed=args.seed,
    )
    result = selector.run()
    print(
        f"selected {len(result.selected)}/37: "
        f"{sorted(result.selected)}"
    )
    print(f"rejected: {sorted(result.rejected)}")
    match = set(result.selected) == set(PAPER_SELECTED_PHONEMES)
    print(f"matches the paper's 31-phoneme set: {match}")
    return 0


def _resolve_workers(count: int) -> Optional[int]:
    """Map the --workers flag to a CampaignRunner worker count.

    Rejects negatives up front, before any expensive setup (segmenter
    training) runs.
    """
    if count < 0:
        raise SystemExit(f"error: --workers must be >= 0, got {count}")
    return None if count == 0 else count


def _build_eval_segmenter(backend: str, seed: int):
    """Segmenter for ``repro evaluate``'s full-system detector."""
    from repro.core.rate_distortion import RateDistortionSegmenter
    from repro.core.segmentation import default_segmenter

    if backend == "rd":
        return RateDistortionSegmenter()
    if backend == "fast":
        return default_segmenter(
            seed=seed, n_speakers=2, n_per_phoneme=3, epochs=3
        )
    return default_segmenter(seed=seed)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.attacks.base import AttackKind
    from repro.errors import ConfigurationError
    from repro.eval.campaign import CampaignConfig, DetectorBank
    from repro.eval.experiment import run_attack_experiment
    from repro.eval.reporting import format_runner_stats
    from repro.eval.runner import CampaignRunner

    spec = None
    if args.scenario is not None:
        from repro.scenarios import get_scenario

        try:
            spec = get_scenario(args.scenario)
        except ConfigurationError as error:
            raise SystemExit(f"error: {error}") from None
    attack_name = args.attack or (spec.attack if spec else None)
    if attack_name is None:
        raise SystemExit(
            "error: give an attack kind or --scenario NAME"
        )
    rooms = spec.rooms() if spec is not None else None
    if args.material is not None and spec is not None and spec.material:
        # Workers re-resolve the scenario by name and re-apply its
        # material, so a CLI override could never win; refuse loudly
        # instead of losing silently.
        raise SystemExit(
            f"error: scenario {spec.name!r} pins material "
            f"{spec.material!r}; --material cannot override it"
        )
    if args.material is not None:
        from repro.acoustics.materials import get_material
        from repro.eval.rooms import ROOMS

        try:
            override = get_material(args.material)
        except ConfigurationError as error:
            raise SystemExit(f"error: {error}") from None
        rooms = [
            replace(room, barrier=override)
            for room in (rooms if rooms is not None else ROOMS.values())
        ]

    workers = _resolve_workers(args.workers)
    segmenter_backend = getattr(args, "segmenter", "paper")
    if segmenter_backend == "rd":
        print("Using the training-free rate-distortion segmenter...")
    else:
        print("Training segmenter...")
    segmenter = _build_eval_segmenter(segmenter_backend, args.seed)
    detectors = DetectorBank(
        segmenter=segmenter,
        pipeline=(
            spec.build_pipeline(segmenter=segmenter)
            if spec is not None
            else None
        ),
    )
    config = CampaignConfig(
        n_commands_per_participant=args.commands,
        n_attacks_per_kind=args.attacks,
        # Oracle segmentation reads ground-truth alignments, which only
        # the BLSTM backend's evaluation protocol uses; the RD backend
        # is scored on its own online segmentation.
        use_oracle_segmentation=segmenter_backend != "rd",
        seed=args.seed,
        scenario=args.scenario,
        **(
            {"attack_spl_db": spec.attack_spl_db}
            if spec is not None
            else {}
        ),
    )
    if spec is not None:
        print(f"Scenario {spec.name}: {spec.description}")
        print(f"  fingerprint: {spec.fingerprint}")
    print("Running the campaign (this takes a few minutes)...")
    result = run_attack_experiment(
        AttackKind(attack_name),
        rooms=rooms,
        config=config,
        detectors=detectors,
        runner=CampaignRunner(
            n_workers=1 if workers is None else workers,
            executor=args.executor,
        ),
    )
    for detector, metrics in result.metrics.items():
        print(f"{detector:20}: {metrics}")
    if result.stats is not None:
        print(format_runner_stats(result.stats))
    return 0


def _attack_study_cell(payload) -> int:
    """Successful trigger count for one (device, SPL) cell.

    Module-level and fully derived from the payload's seed so cells can
    run in worker processes and still match a serial run exactly.
    """
    seed, name, spec, level, attempts = payload

    from repro.acoustics.propagation import propagate
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus
    from repro.utils.rng import child_rng, derive_seed
    from repro.va import VoiceAssistantDevice

    import numpy as np

    corpus = SyntheticCorpus(n_speakers=2, seed=seed)
    scenario = AttackScenario(room_config=ROOM_A)
    replay = ReplayAttack(corpus, corpus.speakers[0])
    rng = np.random.default_rng(derive_seed(seed, name, level))
    successes = 0
    for attempt in range(attempts):
        attack = replay.generate(
            command=spec.wake_word,
            rng=child_rng(rng, f"gen-{attempt}"),
        )
        interior = scenario.channel.transmit(
            attack.waveform, attack.sample_rate, level,
            rng=child_rng(rng, f"barrier-{attempt}"),
        )
        device = VoiceAssistantDevice(spec)
        successes += device.try_trigger(
            propagate(interior, attack.sample_rate, 2.0),
            attack.sample_rate,
            rng=child_rng(rng, f"trigger-{attempt}"),
        ).triggered
    return successes


def _cmd_attack_study(args: argparse.Namespace) -> int:
    from repro.va import VA_DEVICES

    levels = (65.0, 75.0)
    payloads = [
        (args.seed, name, spec, level, args.attempts)
        for name, spec in VA_DEVICES.items()
        for level in levels
    ]
    import os

    from repro.runtime import FallbackPolicy, Runtime

    workers = _resolve_workers(args.workers)
    if workers is None:
        workers = os.cpu_count() or 1
    kind = "inline" if workers == 1 else args.executor
    runtime = Runtime(
        kind,
        n_workers=workers,
        fallback=FallbackPolicy(ladder=("process", "inline")),
    )
    try:
        counts = runtime.map_units(_attack_study_cell, payloads)
    finally:
        runtime.shutdown()

    print(f"{'device':14} {'65 dB':>8} {'75 dB':>8}")
    for index, name in enumerate(VA_DEVICES):
        row = counts[index * len(levels) : (index + 1) * len(levels)]
        print(
            f"{name:14} {row[0]:>5}/{args.attempts} "
            f"{row[1]:>5}/{args.attempts}"
        )
    return 0


def _resolve_service_config(args: argparse.Namespace):
    """Validate serving arguments up front, before any worker warms.

    Invalid durations and bounds (negative ``--max-wait``, zero
    ``--queue-capacity``, non-positive ``--deadline``, ...) raise
    :class:`repro.errors.ConfigurationError` inside
    ``ServiceConfig``; this maps them to the same ``SystemExit``
    shape as the negative ``--workers`` rejection.
    """
    from repro.errors import ConfigurationError
    from repro.serve import ServiceConfig

    try:
        return ServiceConfig(
            n_workers=args.workers,
            worker_mode=args.worker_mode,
            queue_capacity=args.queue_capacity,
            backpressure=args.policy,
            max_batch_size=args.batch_size,
            max_wait_s=args.max_wait,
            p95_target_s=(
                args.p95_target_ms / 1e3
                if args.p95_target_ms is not None
                else None
            ),
            default_deadline_s=args.deadline,
        )
    except ConfigurationError as error:
        raise SystemExit(f"error: {error}") from None


def _resolve_pipeline_spec(args: argparse.Namespace):
    """Map ``--segmenter {none,fast,paper,rd}`` to a worker recipe.

    ``--store-dir`` (or ``$REPRO_STORE_DIR``) threads the artifact
    store into the spec so workers load published weights instead of
    retraining; ``--no-store`` forces in-process training.  The ``rd``
    backend is training-free, so the store is never consulted for it.
    """
    from repro.serve import PipelineSpec
    from repro.store.cli import resolve_store_dir

    from repro.errors import ConfigurationError

    store_dir = None
    if not args.no_store:
        store_dir = resolve_store_dir(args.store_dir)
    hardening_kwargs = dict(
        threshold=args.threshold,
        threshold_jitter=args.threshold_jitter,
        subset_fraction=args.subset_fraction,
        scenario=getattr(args, "scenario", None),
    )
    try:
        if args.segmenter == "none":
            return PipelineSpec(
                use_segmenter=False, **hardening_kwargs
            )
        if args.segmenter == "rd":
            return PipelineSpec(
                segmenter_backend="rd", **hardening_kwargs
            )
        if args.segmenter == "fast":
            return PipelineSpec(
                segmenter_seed=args.seed,
                n_speakers=2,
                n_per_phoneme=3,
                epochs=3,
                store_dir=store_dir,
                **hardening_kwargs,
            )
        return PipelineSpec(
            segmenter_seed=args.seed,
            store_dir=store_dir,
            **hardening_kwargs,
        )
    except ConfigurationError as error:
        raise SystemExit(f"error: {error}") from None


def _print_store_report(spec, service) -> None:
    """One-line artifact-store summary after a serving run.

    The trained/loaded counters are per-process; with process workers
    the loads happen in the worker processes, so only the on-disk
    entry count is meaningful there.
    """
    if spec.store_dir is None:
        return
    from repro.store import ArtifactStore, registry_counters

    n_entries = len(ArtifactStore(spec.store_dir).entries())
    if service.realized_worker_mode == "thread":
        counts = registry_counters()
        print(
            f"store: {n_entries} artifact(s) in {spec.store_dir} "
            f"({counts['loaded']} loaded, {counts['trained']} trained)"
        )
    else:
        print(
            f"store: {n_entries} artifact(s) in {spec.store_dir} "
            "(load/train accounting lives in the worker processes)"
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.eval.reporting import format_service_metrics
    from repro.serve import (
        LoadgenConfig,
        VerificationService,
        build_recording_pool,
        run_loadgen,
    )

    config = _resolve_service_config(args)
    spec = _resolve_pipeline_spec(args)
    try:
        selftest = LoadgenConfig(
            n_requests=args.requests,
            concurrency=min(args.requests, 4),
            seed=args.seed,
            deadline_s=args.deadline,
        )
    except ConfigurationError as error:
        raise SystemExit(f"error: {error}") from None
    print(f"Warming {config.n_workers} worker(s)...")
    with VerificationService(spec, config) as service:
        pool = build_recording_pool(
            seed=args.seed, pool_size=min(args.requests, 6)
        )
        report = run_loadgen(service, selftest, pool=pool)
        metrics = service.metrics()
        print(
            f"self-test: {report.n_served}/{report.n_issued} served, "
            f"{report.n_failed} failed"
        )
        _print_store_report(spec, service)
    print(format_service_metrics(metrics))
    return 1 if report.n_failed else 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.eval.reporting import format_service_metrics
    from repro.serve import (
        LoadgenConfig,
        VerificationService,
        run_loadgen,
    )

    config = _resolve_service_config(args)
    spec = _resolve_pipeline_spec(args)
    try:
        loadgen_config = LoadgenConfig(
            n_requests=args.requests,
            mode=args.mode,
            concurrency=args.concurrency,
            rate_rps=args.rate,
            seed=args.seed,
            deadline_s=args.deadline,
            users=args.users,
            zipf_s=args.zipf_s,
        )
    except ConfigurationError as error:
        raise SystemExit(f"error: {error}") from None
    print(f"Warming {config.n_workers} worker(s)...")
    with VerificationService(spec, config) as service:
        report = run_loadgen(service, loadgen_config)
        metrics = service.metrics()
        store_report_args = (spec, service)
    degraded = (
        f" ({report.n_degraded} degraded)" if report.n_degraded else ""
    )
    print(
        f"loadgen[{report.mode}]: {report.n_issued} issued, "
        f"{report.n_served} served{degraded}, "
        f"{report.n_rejected} rejected, {report.n_shed} shed, "
        f"{report.n_failed} failed in {report.wall_s:.2f}s "
        f"({report.throughput_rps:.2f} req/s)"
    )
    _print_store_report(*store_report_args)
    if report.latencies_s:
        print(
            "latency p50/p95/p99: "
            f"{report.latency_percentile(50) * 1e3:.1f} / "
            f"{report.latency_percentile(95) * 1e3:.1f} / "
            f"{report.latency_percentile(99) * 1e3:.1f} ms"
        )
    print(format_service_metrics(metrics))
    return 1 if report.n_failed else 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store.cli import cmd_store

    return cmd_store(args)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.cli import cmd_fleet

    return cmd_fleet(args)


def _cmd_redteam(args: argparse.Namespace) -> int:
    from repro.redteam.cli import cmd_redteam

    return cmd_redteam(args)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "select": _cmd_select,
        "evaluate": _cmd_evaluate,
        "attack-study": _cmd_attack_study,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "store": _cmd_store,
        "fleet": _cmd_fleet,
        "redteam": _cmd_redteam,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
