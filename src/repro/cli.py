"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Simulate one legitimate command and one thru-barrier replay attack
    and print the defense's verdicts (the quickstart, as a CLI).
``select``
    Run the offline barrier-effect-sensitive phoneme selection and
    print the selected set.
``evaluate``
    Run a scaled-down Fig. 9-style experiment for one attack kind and
    print AUC/EER for the full system and both baselines.
``attack-study``
    Run the Table I-style VA vulnerability study.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the ICDCS 2022 thru-barrier voice-attack "
            "defense"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="legit vs replay-attack demo")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--text", default="alexa unlock the back door",
        help="voice command text (must be in the lexicon)",
    )

    select = sub.add_parser(
        "select", help="offline sensitive-phoneme selection"
    )
    select.add_argument("--seed", type=int, default=99)
    select.add_argument(
        "--segments", type=int, default=24,
        help="renditions per phoneme",
    )

    evaluate = sub.add_parser(
        "evaluate", help="scaled-down ROC experiment for one attack"
    )
    evaluate.add_argument(
        "attack",
        choices=["random", "replay", "synthesis", "hidden_voice"],
    )
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--commands", type=int, default=3)
    evaluate.add_argument("--attacks", type=int, default=3)
    evaluate.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes for campaign scoring "
            "(0 = one per CPU core; results are identical for any count)"
        ),
    )

    study = sub.add_parser(
        "attack-study", help="Table I-style VA vulnerability study"
    )
    study.add_argument("--attempts", type=int, default=10)
    study.add_argument("--seed", type=int, default=77)
    study.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes for the device x SPL cells "
            "(0 = one per CPU core; results are identical for any count)"
        ),
    )
    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.core import DefensePipeline
    from repro.core.segmentation import train_default_segmenter
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus, phonemize

    print("Training segmenter...")
    pipeline = DefensePipeline(
        segmenter=train_default_segmenter(seed=args.seed)
    )
    corpus = SyntheticCorpus(n_speakers=4, seed=args.seed + 1)
    scenario = AttackScenario(room_config=ROOM_A)
    user = corpus.speakers[0]
    utterance = corpus.utterance(
        phonemize(args.text), speaker=user, rng=args.seed + 2
    )
    va, wearable = scenario.legitimate_recordings(
        utterance, spl_db=70.0, rng=args.seed + 3
    )
    legit = pipeline.score(va, wearable, rng=args.seed + 4)
    attack = ReplayAttack(corpus, user).generate(
        command=args.text, rng=args.seed + 5
    )
    va, wearable = scenario.attack_recordings(
        attack, spl_db=75.0, rng=args.seed + 6
    )
    attacked = pipeline.score(va, wearable, rng=args.seed + 7)
    print(f"legitimate score : {legit:.3f}")
    print(f"attack score     : {attacked:.3f}")
    print(
        "verdict          : attack detected"
        if attacked < legit - 0.2
        else "verdict          : inconclusive (rerun with more data)"
    )
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.core.phoneme_selection import (
        PhonemeSelectionConfig,
        PhonemeSelector,
    )
    from repro.phonemes.inventory import PAPER_SELECTED_PHONEMES

    selector = PhonemeSelector(
        config=PhonemeSelectionConfig(n_segments=args.segments),
        seed=args.seed,
    )
    result = selector.run()
    print(
        f"selected {len(result.selected)}/37: "
        f"{sorted(result.selected)}"
    )
    print(f"rejected: {sorted(result.rejected)}")
    match = set(result.selected) == set(PAPER_SELECTED_PHONEMES)
    print(f"matches the paper's 31-phoneme set: {match}")
    return 0


def _resolve_workers(count: int) -> Optional[int]:
    """Map the --workers flag to a CampaignRunner worker count.

    Rejects negatives up front, before any expensive setup (segmenter
    training) runs.
    """
    if count < 0:
        raise SystemExit(f"error: --workers must be >= 0, got {count}")
    return None if count == 0 else count


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.attacks.base import AttackKind
    from repro.core.segmentation import train_default_segmenter
    from repro.eval.campaign import CampaignConfig, DetectorBank
    from repro.eval.experiment import run_attack_experiment
    from repro.eval.reporting import format_runner_stats

    workers = _resolve_workers(args.workers)
    print("Training segmenter...")
    detectors = DetectorBank(
        segmenter=train_default_segmenter(seed=args.seed)
    )
    config = CampaignConfig(
        n_commands_per_participant=args.commands,
        n_attacks_per_kind=args.attacks,
        seed=args.seed,
    )
    print("Running the campaign (this takes a few minutes)...")
    result = run_attack_experiment(
        AttackKind(args.attack),
        config=config,
        detectors=detectors,
        n_workers=workers,
    )
    for detector, metrics in result.metrics.items():
        print(f"{detector:20}: {metrics}")
    if result.stats is not None:
        print(format_runner_stats(result.stats))
    return 0


def _attack_study_cell(payload) -> int:
    """Successful trigger count for one (device, SPL) cell.

    Module-level and fully derived from the payload's seed so cells can
    run in worker processes and still match a serial run exactly.
    """
    seed, name, spec, level, attempts = payload

    from repro.acoustics.propagation import propagate
    from repro.attacks import AttackScenario, ReplayAttack
    from repro.eval.rooms import ROOM_A
    from repro.phonemes import SyntheticCorpus
    from repro.utils.rng import child_rng, derive_seed
    from repro.va import VoiceAssistantDevice

    import numpy as np

    corpus = SyntheticCorpus(n_speakers=2, seed=seed)
    scenario = AttackScenario(room_config=ROOM_A)
    replay = ReplayAttack(corpus, corpus.speakers[0])
    rng = np.random.default_rng(derive_seed(seed, name, level))
    successes = 0
    for attempt in range(attempts):
        attack = replay.generate(
            command=spec.wake_word,
            rng=child_rng(rng, f"gen-{attempt}"),
        )
        interior = scenario.channel.transmit(
            attack.waveform, attack.sample_rate, level,
            rng=child_rng(rng, f"barrier-{attempt}"),
        )
        device = VoiceAssistantDevice(spec)
        successes += device.try_trigger(
            propagate(interior, attack.sample_rate, 2.0),
            attack.sample_rate,
            rng=child_rng(rng, f"trigger-{attempt}"),
        ).triggered
    return successes


def _cmd_attack_study(args: argparse.Namespace) -> int:
    from repro.va import VA_DEVICES

    levels = (65.0, 75.0)
    payloads = [
        (args.seed, name, spec, level, args.attempts)
        for name, spec in VA_DEVICES.items()
        for level in levels
    ]
    workers = _resolve_workers(args.workers)
    if workers is None or workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                counts = list(pool.map(_attack_study_cell, payloads))
        except OSError:
            counts = [_attack_study_cell(p) for p in payloads]
    else:
        counts = [_attack_study_cell(p) for p in payloads]

    print(f"{'device':14} {'65 dB':>8} {'75 dB':>8}")
    for index, name in enumerate(VA_DEVICES):
        row = counts[index * len(levels) : (index + 1) * len(levels)]
        print(
            f"{name:14} {row[0]:>5}/{args.attempts} "
            f"{row[1]:>5}/{args.attempts}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "select": _cmd_select,
        "evaluate": _cmd_evaluate,
        "attack-study": _cmd_attack_study,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
