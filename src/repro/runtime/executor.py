"""The unified execution layer: one place that builds pools.

Every concurrent code path in the library — campaign scoring, the warm
serve worker pool, CLI attack studies — runs its units through a
:class:`Runtime`, which walks a declarative
:class:`~repro.runtime.policies.FallbackPolicy` ladder of executor
kinds (process → thread → inline by default) instead of hand-rolling
``try/except`` around pool construction.  The concrete executors share
a tiny interface (``start`` / ``submit`` / ``shutdown`` / ``wrap``) so
the orchestration logic is written once:

* :class:`ProcessPoolRuntime` — ``ProcessPoolExecutor`` with an eager
  warm-up probe per worker, so spawn and initializer failures surface
  at ``start()`` where the ladder can still demote cheaply.
* :class:`ThreadPoolRuntime` — ``ThreadPoolExecutor``; workers spawn
  lazily, matching the latency profile callers relied on before.
* :class:`InlineExecutor` — runs units in the calling thread and
  returns already-completed futures; the ladder's floor and the
  ``n_workers <= 1`` fast path.

Per the pool-boundary contract, any exception a unit raises inside a
*process* worker is re-raised as a picklable
:class:`repro.errors.WorkerError`; thread and inline execution raise
the original exception unchanged.
"""

from __future__ import annotations

import functools
import logging
import pickle
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, WorkerError
from repro.runtime.events import StageEvent, StageEventSink, emit_event
from repro.runtime.policies import (
    INLINE,
    PROCESS,
    THREAD,
    FallbackPolicy,
    RetryPolicy,
    validate_kind,
)

logger = logging.getLogger(__name__)

#: Errors that indicate the *pool* (not the unit of work) failed:
#: workers could not spawn or died, or the payload could not cross the
#: process boundary.  These trigger ladder demotion; anything else is a
#: unit failure and propagates to the caller.
POOL_ERRORS: Tuple[type, ...] = (
    BrokenExecutor,
    OSError,
    pickle.PicklingError,
)


def _run_unit(
    fn: Callable[..., Any], retry: RetryPolicy, *args: Any
) -> Any:
    """Run one unit with per-unit retries, raising the original error.

    Module-level so it pickles into spawn workers.  Retries happen here,
    inside the worker, so a retried unit never re-crosses the pool
    boundary.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(*args)
        except Exception as error:  # noqa: BLE001 - policy decides
            if not retry.should_retry(error, attempt):
                raise


def _run_unit_wrapped(
    fn: Callable[..., Any], retry: RetryPolicy, *args: Any
) -> Any:
    """:func:`_run_unit` for process workers: errors become picklable.

    Pool-infrastructure errors pass through untouched (the parent's
    ladder must see them as such); every other exception is re-raised
    as a :class:`WorkerError` that is guaranteed to survive the pickle
    trip back to the parent process.
    """
    try:
        return _run_unit(fn, retry, *args)
    except POOL_ERRORS:
        raise
    except Exception as error:  # noqa: BLE001 - boundary wrap
        raise WorkerError.from_exception(error) from None


def _run_unit_shm(
    fn: Callable[..., Any], retry: RetryPolicy, *args: Any
) -> Any:
    """:func:`_run_unit_wrapped` behind the shared-memory transport.

    Materializes every :class:`~repro.runtime.shm.ShmRef` in the
    arguments (attach → copy → close) before running the unit.  A
    payload that crossed by plain pickle decodes as an identity walk.
    """
    from repro.runtime.shm import decode_payload

    return _run_unit_wrapped(
        fn, retry, *[decode_payload(arg) for arg in args]
    )


class InlineExecutor:
    """Runs every unit in the calling thread, serially.

    ``submit`` executes immediately and returns an already-completed
    :class:`~concurrent.futures.Future`, so callers written against the
    pool interface work unchanged.
    """

    kind = INLINE

    def __init__(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> None:
        self._initializer = initializer
        self._initargs = initargs

    def start(self) -> None:
        if self._initializer is not None:
            self._initializer(*self._initargs)

    def wrap(
        self, fn: Callable[..., Any], retry: RetryPolicy
    ) -> Callable[..., Any]:
        return functools.partial(_run_unit, fn, retry)

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 - future carries it
            future.set_exception(error)
        return future

    def shutdown(self, wait: bool = True) -> None:
        pass


class ThreadPoolRuntime:
    """Thread-pool executor rung.

    Threads spawn lazily on first submission (the stdlib behavior),
    which keeps warm-up cheap; the initializer runs once per spawned
    thread, exactly as it would per process on the process rung.
    """

    kind = THREAD

    def __init__(
        self,
        n_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        thread_name_prefix: str = "repro-runtime",
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self._n_workers = n_workers
        self._initializer = initializer
        self._initargs = initargs
        self._thread_name_prefix = thread_name_prefix
        self._pool: Optional[ThreadPoolExecutor] = None

    def start(self) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=self._n_workers,
            initializer=self._initializer,
            initargs=self._initargs,
            thread_name_prefix=self._thread_name_prefix,
        )

    def wrap(
        self, fn: Callable[..., Any], retry: RetryPolicy
    ) -> Callable[..., Any]:
        return functools.partial(_run_unit, fn, retry)

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        if self._pool is None:
            raise ConfigurationError("executor not started")
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None


class ProcessPoolRuntime:
    """Process-pool executor rung with eager spawn validation.

    ``start()`` optionally submits a cheap ``probe`` callable once per
    worker and waits for the results.  This forces worker spawn and the
    initializer to run *now*, so environments where fork/spawn is
    unavailable — or where the initializer itself fails — surface a
    :data:`POOL_ERRORS` member while demotion is still cheap, instead
    of breaking mid-run with work in flight.
    """

    kind = PROCESS

    def __init__(
        self,
        n_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        probe: Optional[Tuple[Callable[..., Any], Tuple[Any, ...]]] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self._n_workers = n_workers
        self._initializer = initializer
        self._initargs = initargs
        self._probe = probe
        self._pool: Optional[ProcessPoolExecutor] = None

    def start(self) -> None:
        pool = ProcessPoolExecutor(
            max_workers=self._n_workers,
            initializer=self._initializer,
            initargs=self._initargs,
        )
        if self._probe is not None:
            probe_fn, probe_args = self._probe
            try:
                futures = [
                    pool.submit(probe_fn, *probe_args)
                    for _ in range(self._n_workers)
                ]
                for future in futures:
                    future.result()
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        self._pool = pool

    def wrap(
        self, fn: Callable[..., Any], retry: RetryPolicy
    ) -> Callable[..., Any]:
        return functools.partial(_run_unit_wrapped, fn, retry)

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        if self._pool is None:
            raise ConfigurationError("executor not started")
        return self._pool.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None


class Runtime:
    """Executes units of work, demoting down a fallback ladder on pool
    failure.

    The runtime resolves the requested executor ``kind`` against the
    :class:`FallbackPolicy` into a ladder of rungs.  ``start()`` builds
    the first rung that comes up; :meth:`map_units` additionally demotes
    *mid-run* when the active pool breaks, keeping the results already
    collected and re-submitting only the remaining units — so a broken
    pool costs the tail of the batch, never the whole batch.

    Each demotion emits a ``runtime``-scoped :class:`StageEvent`
    recording the failed rung, the error class, and the rung demoted
    to, so fallbacks are visible in the same observability stream as
    pipeline stage timings.
    """

    def __init__(
        self,
        kind: str,
        n_workers: Optional[int] = None,
        fallback: Optional[FallbackPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        probe: Optional[Tuple[Callable[..., Any], Tuple[Any, ...]]] = None,
        thread_name_prefix: str = "repro-runtime",
        sink: Optional[StageEventSink] = None,
        transport: Optional[Any] = None,
    ) -> None:
        validate_kind(kind)
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.kind = kind
        self.n_workers = n_workers if n_workers is not None else 1
        self.fallback = fallback if fallback is not None else FallbackPolicy()
        self.retry = retry if retry is not None else RetryPolicy()
        self._initializer = initializer
        self._initargs = initargs
        self._probe = probe
        self._thread_name_prefix = thread_name_prefix
        self._sink = sink
        #: Optional :class:`~repro.runtime.shm.ShmTransport` moving
        #: large arrays to process workers via shared memory.  Only
        #: consulted when the realized rung is a process pool; thread
        #: and inline rungs share the parent's memory already.
        self.transport = transport
        self._rungs = self.fallback.rungs(kind)
        self._rung_index = 0
        self._executor: Optional[Any] = None
        self.fallbacks: List[str] = []

    # -- rung management -------------------------------------------------

    def _build(self, kind: str) -> Any:
        if kind == PROCESS:
            return ProcessPoolRuntime(
                n_workers=self.n_workers,
                initializer=self._initializer,
                initargs=self._initargs,
                probe=self._probe,
            )
        if kind == THREAD:
            return ThreadPoolRuntime(
                n_workers=self.n_workers,
                initializer=self._initializer,
                initargs=self._initargs,
                thread_name_prefix=self._thread_name_prefix,
            )
        return InlineExecutor(
            initializer=self._initializer, initargs=self._initargs
        )

    def _emit_fallback(
        self, stage: str, failed: str, error: BaseException, to: str
    ) -> None:
        logger.warning(
            "%s executor failed (%s: %s); falling back to %s",
            failed,
            type(error).__name__,
            error,
            to,
        )
        emit_event(
            StageEvent(
                stage=stage,
                wall_s=0.0,
                fallback=to,
                error=type(error).__name__,
                scope="runtime",
            ),
            sink=self._sink,
        )

    def start(self) -> None:
        """Bring up the first rung that starts cleanly.

        Walks the ladder from the current rung, demoting on
        :data:`POOL_ERRORS`; re-raises only when the last rung fails.
        """
        while True:
            kind = self._rungs[self._rung_index]
            executor = self._build(kind)
            try:
                executor.start()
            except POOL_ERRORS as error:
                if self._rung_index + 1 >= len(self._rungs):
                    raise
                next_kind = self._rungs[self._rung_index + 1]
                self._emit_fallback("runtime.start", kind, error, next_kind)
                self.fallbacks.append(next_kind)
                self._rung_index += 1
                continue
            self._executor = executor
            return

    @property
    def started(self) -> bool:
        return self._executor is not None

    @property
    def realized_kind(self) -> str:
        """The executor kind actually running (after any demotion)."""
        if self._executor is not None:
            return self._executor.kind
        return self._rungs[self._rung_index]

    @property
    def fell_back(self) -> bool:
        """Whether any demotion occurred (at start or mid-run)."""
        return bool(self.fallbacks)

    # -- execution -------------------------------------------------------

    def _transport_active(self) -> bool:
        """Whether payloads should ride the shared-memory transport."""
        return (
            self.transport is not None
            and self._executor is not None
            and self._executor.kind == PROCESS
            and self.transport.available
        )

    def _wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        if self._transport_active():
            return functools.partial(_run_unit_shm, fn, self.retry)
        assert self._executor is not None
        return self._executor.wrap(fn, self.retry)

    def _submit_encoded(
        self, wrapped: Callable[..., Any], args: Tuple[Any, ...]
    ) -> "Future[Any]":
        """Submit with args parked in shared memory (creator cleans up).

        The lease releases from the future's done-callback, which fires
        on normal completion, cancellation, and pool breakage alike —
        segments are reclaimed on every path.
        """
        assert self.transport is not None and self._executor is not None
        encoded, lease = self.transport.encode(args)
        try:
            future = self._executor.submit(wrapped, *encoded)
        except BaseException:
            lease.release()
            raise
        if len(lease):
            future.add_done_callback(
                lambda _future, lease=lease: lease.release()
            )
        return future

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Submit one unit to the active rung (starting it if needed).

        ``submit`` does not ladder mid-flight: a pool that breaks after
        submission surfaces through the returned future.  Callers that
        want automatic demotion use :meth:`map_units`.
        """
        if self._executor is None:
            self.start()
        assert self._executor is not None
        wrapped = self._wrap(fn)
        if self._transport_active():
            return self._submit_encoded(wrapped, args)
        return self._executor.submit(wrapped, *args)

    def map_units(
        self, fn: Callable[..., Any], units: Sequence[Any]
    ) -> List[Any]:
        """Run ``fn(unit)`` for every unit, in submission order.

        Results are collected in order, which is what makes parallel
        campaign runs bitwise-identical to serial ones.  If the active
        pool raises a :data:`POOL_ERRORS` member — at start, on submit,
        or while collecting — the completed prefix is kept and the
        remaining units continue on the next rung down.
        """
        units = list(units)
        results: List[Any] = []
        while len(results) < len(units):
            try:
                if self._executor is None:
                    self.start()
                assert self._executor is not None
                executor = self._executor
                wrapped = self._wrap(fn)
                use_transport = self._transport_active()
                pending = []
                for unit in units[len(results):]:
                    if use_transport:
                        pending.append(
                            self._submit_encoded(wrapped, (unit,))
                        )
                    else:
                        pending.append(executor.submit(wrapped, unit))
                for future in pending:
                    results.append(future.result())
            except POOL_ERRORS as error:
                failed = self.realized_kind
                self.shutdown(wait=False)
                if self._rung_index + 1 >= len(self._rungs):
                    raise
                next_kind = self._rungs[self._rung_index + 1]
                self._emit_fallback("runtime.map", failed, error, next_kind)
                self.fallbacks.append(next_kind)
                self._rung_index += 1
        return results

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "Runtime":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
