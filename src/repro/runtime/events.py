"""StageEvent — one structured-observability protocol for every layer.

Pipeline stages, campaign units, serve workers, and the runtime's own
fallback ladder all emit the same small frozen record: stage name, wall
time, batch size, which fallback (if any) was taken, and the error
class when the stage failed.  Sinks aggregate them; the same aggregate
feeds both :class:`repro.serve.metrics.ServiceMetrics` and the campaign
stats reporting, so a pipeline run looks identical through either lens.

Events are delivered two ways, which compose:

* an **instance sink** (e.g. ``DefensePipeline.sink``) wired by the
  owner of the emitting object;
* an **ambient sink** installed for the current context with
  :func:`capture_stage_events` — how worker functions collect the
  events of exactly one call without touching shared pipeline state
  (and therefore without races between threads).
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.utils.stats import percentile_values


@dataclass(frozen=True)
class StageEvent:
    """One observed execution of a named stage.

    Attributes
    ----------
    stage:
        Stage name (``sync`` / ``segment`` / ... for pipeline stages,
        ``runtime.start`` / ``runtime.map`` for executor-ladder
        transitions, ``segment_batch`` for the shared vectorized
        forward).
    wall_s:
        Wall-clock seconds attributed to this stage (for batched work,
        including the emitting request's amortized share).
    batch_size:
        Number of requests the stage served at once.
    fallback:
        Name of the fallback taken, or ``None`` on the primary path
        (e.g. ``full-recording``, ``deadline-skip``, ``inline``).
    error:
        Error class name when the stage raised, else ``None``.
    scope:
        Emitting layer: ``pipeline``, ``batch``, ``runtime``,
        ``campaign``, or ``serve``.
    """

    stage: str
    wall_s: float
    batch_size: int = 1
    fallback: Optional[str] = None
    error: Optional[str] = None
    scope: str = "pipeline"

    @property
    def ok(self) -> bool:
        """Whether the stage completed without raising."""
        return self.error is None


class StageEventSink:
    """Minimal sink interface (also usable as a no-op base)."""

    def emit(self, event: StageEvent) -> None:  # pragma: no cover
        """Receive one event."""


class NullSink(StageEventSink):
    """Discards every event (the default when nothing listens)."""

    def emit(self, event: StageEvent) -> None:
        pass


@dataclass(frozen=True)
class StageSummary:
    """Aggregate of one stage's events: count, total, percentiles."""

    stage: str
    count: int
    total_s: float
    p50_s: float
    p95_s: float
    p99_s: float


class StageEventAggregator(StageEventSink):
    """Thread-safe sink that accumulates events for later summary.

    The single aggregation point behind both metrics surfaces: the
    serving layer feeds summaries into
    :class:`~repro.serve.metrics.ServiceMetrics`, the campaign runner
    folds per-unit totals into its stats block.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[StageEvent] = []

    def emit(self, event: StageEvent) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[StageEvent]:
        """Snapshot of the events observed so far."""
        with self._lock:
            return list(self._events)

    def timings(self) -> Dict[str, float]:
        """``{stage: wall_s}`` of the *latest* successful event per stage.

        Matches the shape of the pipeline's per-call timing dict when
        the aggregator captured exactly one call.
        """
        out: Dict[str, float] = {}
        for event in self.events:
            if event.ok:
                out[event.stage] = event.wall_s
        return out

    def stage_totals(self) -> Dict[str, float]:
        """Summed wall seconds per stage over successful events."""
        totals: Dict[str, float] = {}
        for event in self.events:
            if event.ok:
                totals[event.stage] = (
                    totals.get(event.stage, 0.0) + event.wall_s
                )
        return totals

    def fallback_counts(self) -> Dict[str, int]:
        """``{"stage:fallback": count}`` over events that fell back."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.fallback is not None:
                key = f"{event.stage}:{event.fallback}"
                counts[key] = counts.get(key, 0) + 1
        return counts

    def error_counts(self) -> Dict[str, int]:
        """``{"stage:ErrorClass": count}`` over failed events."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.error is not None:
                key = f"{event.stage}:{event.error}"
                counts[key] = counts.get(key, 0) + 1
        return counts

    def summarize(self) -> Dict[str, StageSummary]:
        """Per-stage count/total/percentile summary (ok events only)."""
        samples: Dict[str, List[float]] = {}
        for event in self.events:
            if event.ok:
                samples.setdefault(event.stage, []).append(event.wall_s)
        summaries: Dict[str, StageSummary] = {}
        for stage, walls in samples.items():
            p50, p95, p99 = percentile_values(walls, (50.0, 95.0, 99.0))
            summaries[stage] = StageSummary(
                stage=stage,
                count=len(walls),
                total_s=float(sum(walls)),
                p50_s=float(p50),
                p95_s=float(p95),
                p99_s=float(p99),
            )
        return summaries


#: Ambient sink for the current execution context.  Worker functions
#: install an aggregator here around exactly one pipeline call, so
#: shared pipeline instances need no mutable sink state of their own.
_ACTIVE_SINK: "contextvars.ContextVar[Optional[StageEventSink]]" = (
    contextvars.ContextVar("repro_stage_event_sink", default=None)
)


def active_sink() -> Optional[StageEventSink]:
    """The context's ambient sink, or ``None``."""
    return _ACTIVE_SINK.get()


def emit_event(
    event: StageEvent, sink: Optional[StageEventSink] = None
) -> None:
    """Deliver ``event`` to the instance ``sink`` and the ambient sink.

    Either may be absent; when both are the same object the event is
    delivered once.
    """
    if sink is not None:
        sink.emit(event)
    ambient = _ACTIVE_SINK.get()
    if ambient is not None and ambient is not sink:
        ambient.emit(event)


@contextlib.contextmanager
def capture_stage_events(
    sink: Optional[StageEventAggregator] = None,
) -> Iterator[StageEventAggregator]:
    """Install an ambient aggregator for the ``with`` block.

    Every :func:`emit_event` inside the block (same thread/context) is
    recorded; the previous ambient sink is restored on exit.
    """
    aggregator = sink if sink is not None else StageEventAggregator()
    token = _ACTIVE_SINK.set(aggregator)
    try:
        yield aggregator
    finally:
        _ACTIVE_SINK.reset(token)
