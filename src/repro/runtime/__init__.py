"""Unified execution layer: executors, fallback/retry policies, and
the StageEvent observability protocol.

All pool construction in the library lives here; ``core``, ``eval``,
``serve``, and the CLI submit units of work through a
:class:`Runtime` and observe them through :class:`StageEvent` sinks.
"""

from repro.runtime.events import (
    NullSink,
    StageEvent,
    StageEventAggregator,
    StageEventSink,
    StageSummary,
    active_sink,
    capture_stage_events,
    emit_event,
)
from repro.runtime.executor import (
    POOL_ERRORS,
    InlineExecutor,
    ProcessPoolRuntime,
    Runtime,
    ThreadPoolRuntime,
)
from repro.runtime.policies import (
    EXECUTOR_KINDS,
    INLINE,
    PROCESS,
    THREAD,
    FallbackPolicy,
    RetryPolicy,
    validate_kind,
)
from repro.runtime.shm import (
    ShmLease,
    ShmRef,
    ShmTransport,
    decode_payload,
    shm_available,
)

__all__ = [
    "EXECUTOR_KINDS",
    "FallbackPolicy",
    "INLINE",
    "InlineExecutor",
    "NullSink",
    "POOL_ERRORS",
    "PROCESS",
    "ProcessPoolRuntime",
    "RetryPolicy",
    "Runtime",
    "ShmLease",
    "ShmRef",
    "ShmTransport",
    "StageEvent",
    "StageEventAggregator",
    "StageEventSink",
    "StageSummary",
    "THREAD",
    "ThreadPoolRuntime",
    "active_sink",
    "capture_stage_events",
    "decode_payload",
    "emit_event",
    "shm_available",
    "validate_kind",
]
