"""Declarative execution policies for the runtime layer.

A :class:`FallbackPolicy` names the ordered ladder of executor kinds a
:class:`~repro.runtime.executor.Runtime` may demote through when a pool
cannot spawn (restricted environments) or breaks mid-run (workers
killed, unpicklable payloads).  A :class:`RetryPolicy` bounds how many
times one unit of work is re-attempted before its error propagates.
Both are small frozen dataclasses so they pickle cleanly into worker
processes and print usefully in logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Type

from repro.errors import ConfigurationError

#: Executor kinds understood by the runtime, fastest-isolation first.
INLINE = "inline"
THREAD = "thread"
PROCESS = "process"
EXECUTOR_KINDS: Tuple[str, ...] = (PROCESS, THREAD, INLINE)


def validate_kind(kind: str) -> str:
    """Reject unknown executor kinds with a uniform error."""
    if kind not in EXECUTOR_KINDS:
        choices = ", ".join(EXECUTOR_KINDS)
        raise ConfigurationError(
            f"unknown executor kind {kind!r}; choose one of: {choices}"
        )
    return kind


@dataclass(frozen=True)
class FallbackPolicy:
    """Ordered executor-kind ladder a runtime may demote through.

    The default ladder is the library-wide contract: process pools fall
    back to threads, threads fall back to inline (in-process, serial)
    execution.  Callers that must never cross a rung declare a shorter
    ladder — e.g. the campaign runner uses ``("process", "inline")``
    because its units are CPU-bound pure Python, where a thread rung
    adds GIL contention without isolation.
    """

    ladder: Tuple[str, ...] = (PROCESS, THREAD, INLINE)

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ConfigurationError("fallback ladder must be non-empty")
        seen = set()
        for kind in self.ladder:
            validate_kind(kind)
            if kind in seen:
                raise ConfigurationError(
                    f"fallback ladder repeats kind {kind!r}"
                )
            seen.add(kind)

    def rungs(self, kind: str) -> Tuple[str, ...]:
        """Sub-ladder starting at the requested ``kind``.

        A kind absent from the ladder gets a single-rung ladder — it
        runs with no fallback at all (e.g. an explicitly requested
        ``thread`` executor under a ``("process", "inline")`` ladder).
        """
        validate_kind(kind)
        if kind not in self.ladder:
            return (kind,)
        index = self.ladder.index(kind)
        return self.ladder[index:]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-unit retry with capped attempts.

    ``max_attempts`` counts total tries (1 = no retry, the default).
    Only errors matching ``retry_on`` are retried; anything else
    propagates immediately.  Retries happen where the unit runs (inside
    the worker for pool executors), so a retried unit never crosses the
    pool boundary twice.
    """

    max_attempts: int = 1
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be redone."""
        return attempt < self.max_attempts and isinstance(
            error, self.retry_on
        )
