"""Shared-memory transport for arrays crossing the process boundary.

Process-pool payloads in this library are dominated by numpy audio
arrays (a one-second 16 kHz float64 recording is 128 KiB, and a serve
micro-batch carries two of them per request).  Pickling copies every
byte twice — once serializing into the pipe, once deserializing out of
it — and the pipe itself is a bottleneck under batched load.

:class:`ShmTransport` parks large arrays in POSIX shared memory
(:mod:`multiprocessing.shared_memory`) instead: the parent copies each
array into a named segment once and sends a tiny picklable
:class:`ShmRef`; the worker attaches, copies out a private array, and
closes.  Everything else in the payload still travels by pickle, so the
transport is transparent to the functions being executed.

Lifecycle contract (creator owns the segments):

* :meth:`ShmTransport.encode` returns the rewritten payload **and** a
  :class:`ShmLease` owning every segment it created.  The caller must
  call :meth:`ShmLease.release` once the consumer has decoded — the
  :class:`~repro.runtime.executor.Runtime` does this from the future's
  done-callback, which also fires on cancellation and pool breakage, so
  segments are reclaimed on every path.
* :func:`decode_payload` (worker side) copies data out and closes its
  attachment immediately; it never unlinks.

Graceful degradation: when ``/dev/shm`` is unavailable (restricted
containers), segment creation fails, or an array is smaller than
``min_bytes``, payloads travel by plain pickle — bit-identical results,
just slower.
"""

from __future__ import annotations

import copy
import dataclasses
import logging
import threading
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as mp_shm
except ImportError:  # pragma: no cover
    mp_shm = None  # type: ignore[assignment]

logger = logging.getLogger(__name__)

#: Arrays smaller than this cross the boundary via plain pickle: below
#: it, segment bookkeeping costs more than the copy it saves.
DEFAULT_MIN_BYTES = 64 * 1024


@dataclass(frozen=True)
class ShmRef:
    """Picklable pointer to an ndarray parked in a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class ShmLease:
    """Creator-side ownership of the segments backing one payload.

    :meth:`release` closes and unlinks every segment; it is idempotent
    and thread-safe (the future done-callback may race a direct call).
    """

    def __init__(self, segments: List[Any]) -> None:
        self._segments = list(segments)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._segments)

    def release(self) -> None:
        with self._lock:
            segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - defensive
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass


def shm_available() -> bool:
    """Whether this interpreter can create *and* attach shared memory."""
    if mp_shm is None:  # pragma: no cover - import guard
        return False
    try:
        segment = mp_shm.SharedMemory(create=True, size=16)
    except (OSError, ValueError):  # pragma: no cover - restricted env
        return False
    try:
        attached = mp_shm.SharedMemory(name=segment.name)
        attached.close()
        return True
    except (OSError, ValueError):  # pragma: no cover - restricted env
        return False
    finally:
        segment.close()
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class ShmTransport:
    """Moves large ndarrays through shared memory, pickling the rest.

    Parameters
    ----------
    min_bytes:
        Smallest array (in bytes) worth a shared segment.
    enabled:
        ``False`` turns the transport into a no-op (pure pickle), the
        switch behind serve/eval ``--no-shm`` style knobs.
    """

    def __init__(
        self,
        min_bytes: int = DEFAULT_MIN_BYTES,
        enabled: bool = True,
    ) -> None:
        self.min_bytes = int(min_bytes)
        self.enabled = bool(enabled)
        self._available: Optional[bool] = None

    @property
    def available(self) -> bool:
        """Probe (once) whether shared memory actually works here."""
        if not self.enabled:
            return False
        if self._available is None:
            self._available = shm_available()
            if not self._available:
                logger.info(
                    "shared memory unavailable; using pickle transport"
                )
        return self._available

    def encode(self, payload: Any) -> Tuple[Any, ShmLease]:
        """Rewrite ``payload`` with large arrays parked in segments.

        Returns the rewritten payload plus the :class:`ShmLease` owning
        every created segment.  On any failure mid-encode, everything
        created so far is released and the *original* payload comes
        back with an empty lease — the pickle fallback.
        """
        segments: List[Any] = []
        if not self.available:
            return payload, ShmLease(segments)
        try:
            encoded = self._encode_value(payload, segments)
        except (OSError, ValueError) as error:
            logger.warning(
                "shared-memory encode failed (%s: %s); "
                "falling back to pickle",
                type(error).__name__,
                error,
            )
            ShmLease(segments).release()
            return payload, ShmLease([])
        return encoded, ShmLease(segments)

    def _encode_value(self, value: Any, segments: List[Any]) -> Any:
        if isinstance(value, np.ndarray):
            if value.nbytes < self.min_bytes or value.dtype.hasobject:
                return value
            array = np.ascontiguousarray(value)
            segment = mp_shm.SharedMemory(create=True, size=array.nbytes)
            segments.append(segment)
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[...] = array
            return ShmRef(segment.name, array.shape, str(array.dtype))
        if isinstance(value, tuple):
            encoded = [
                self._encode_value(item, segments) for item in value
            ]
            if all(new is old for new, old in zip(encoded, value)):
                return value
            if hasattr(value, "_fields"):  # namedtuple
                return type(value)(*encoded)
            return tuple(encoded)
        if isinstance(value, list):
            encoded = [
                self._encode_value(item, segments) for item in value
            ]
            if all(new is old for new, old in zip(encoded, value)):
                return value
            return encoded
        if isinstance(value, dict):
            encoded_map = {
                key: self._encode_value(item, segments)
                for key, item in value.items()
            }
            if all(
                encoded_map[key] is value[key] for key in encoded_map
            ):
                return value
            return encoded_map
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            changed = {}
            for spec in dataclasses.fields(value):
                old = getattr(value, spec.name)
                new = self._encode_value(old, segments)
                if new is not old:
                    changed[spec.name] = new
            if not changed:
                return value
            # copy + setattr instead of dataclasses.replace: replace()
            # re-runs __post_init__, which would choke on a ShmRef where
            # it expects an array (e.g. VerificationRequest's coercion).
            clone = copy.copy(value)
            for name, new in changed.items():
                object.__setattr__(clone, name, new)
            return clone
        return value


def decode_payload(value: Any) -> Any:
    """Materialize every :class:`ShmRef` in ``value`` (worker side).

    Each referenced segment is attached, copied into a private array,
    and closed immediately — never unlinked (the creator owns that).
    Values without refs pass through untouched, so decoding a plain
    pickled payload is a cheap identity walk.
    """
    if isinstance(value, ShmRef):
        if mp_shm is None:  # pragma: no cover - import guard
            raise OSError("shared memory unavailable in this worker")
        # Note: attaching re-registers the name with the (shared)
        # resource tracker; that is harmless — registration is
        # set-based, and the creator's unlink() unregisters it.
        segment = mp_shm.SharedMemory(name=value.name)
        try:
            view = np.ndarray(
                value.shape, dtype=np.dtype(value.dtype), buffer=segment.buf
            )
            return np.array(view)
        finally:
            segment.close()
    if isinstance(value, tuple):
        decoded = [decode_payload(item) for item in value]
        if all(new is old for new, old in zip(decoded, value)):
            return value
        if hasattr(value, "_fields"):  # namedtuple
            return type(value)(*decoded)
        return tuple(decoded)
    if isinstance(value, list):
        decoded = [decode_payload(item) for item in value]
        if all(new is old for new, old in zip(decoded, value)):
            return value
        return decoded
    if isinstance(value, dict):
        decoded_map = {
            key: decode_payload(item) for key, item in value.items()
        }
        if all(decoded_map[key] is value[key] for key in decoded_map):
            return value
        return decoded_map
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        changed = {}
        for spec in dataclasses.fields(value):
            old = getattr(value, spec.name)
            new = decode_payload(old)
            if new is not old:
                changed[spec.name] = new
        if not changed:
            return value
        clone = copy.copy(value)
        for name, new in changed.items():
            object.__setattr__(clone, name, new)
        return clone
    return value
