"""MEMS accelerometer model with the artifacts the paper depends on.

Four phenomena of commercial wearable accelerometers are reproduced:

1. **Low sampling rate with aliasing** — 200 Hz sampling of a conductive
   vibration whose content extends to kilohertz folds everything into
   0–100 Hz (paper § IV-B, "ambiguous signal conversion").
2. **DC sensitivity artifact** — the sensor is designed for body motion
   and responds strongly below 5 Hz; audio stimulation produces a strong
   envelope-following near-DC component (paper Fig. 7).
3. **Low-frequency amplifier noise injection** — when the drive sound is
   dominated by low frequencies, the readout amplifier injects extra
   random noise [Wu et al., APCCAS 2016]; the detector exploits the
   resulting decorrelation (paper § VI-C).
4. **Quantization** — the digital output has a finite LSB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dsp.filters import butter_lowpass, butter_lowpass_batch
from repro.dsp.resample import alias_decimate, alias_decimate_batch
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_1d, ensure_2d, ensure_positive

#: Default accelerometer sampling rate (Hz) of commercial wearables.
VIBRATION_SAMPLE_RATE = 200.0


@dataclass(frozen=True)
class AccelerometerSpec:
    """Static accelerometer parameters.

    Attributes
    ----------
    sample_rate:
        Output sampling rate (200 Hz on Fossil Gen 5 / Moto 360).
    base_noise_rms:
        Sensor self-noise RMS (output units), always present.
    low_freq_noise_coeff:
        Extra injected-noise RMS per unit RMS of low-frequency drive
        content (below :attr:`low_freq_cutoff_hz`) — phenomenon 3 above.
    low_freq_cutoff_hz:
        Boundary below which drive content counts as "low-frequency" for
        noise injection.
    dc_sensitivity:
        Gain of the envelope-following near-DC artifact — phenomenon 2.
    dc_bandwidth_hz:
        Bandwidth of the DC artifact (paper observes 0–5 Hz).
    lsb:
        Quantization step of the digital output.
    """

    sample_rate: float = VIBRATION_SAMPLE_RATE
    base_noise_rms: float = 2.0e-4
    low_freq_noise_coeff: float = 0.05
    low_freq_cutoff_hz: float = 800.0
    noise_envelope_exponent: float = 0.6
    noise_envelope_reference: float = 0.05
    dc_sensitivity: float = 0.30
    dc_bandwidth_hz: float = 5.0
    lsb: float = 1.0e-5

    def __post_init__(self) -> None:
        ensure_positive(self.sample_rate, "sample_rate")
        if self.base_noise_rms < 0 or self.low_freq_noise_coeff < 0:
            raise ConfigurationError("noise parameters must be >= 0")
        ensure_positive(self.low_freq_cutoff_hz, "low_freq_cutoff_hz")
        ensure_positive(self.dc_bandwidth_hz, "dc_bandwidth_hz")
        if self.lsb < 0:
            raise ConfigurationError("lsb must be >= 0")


class Accelerometer:
    """Sample a conductive vibration field into a digital vibration signal."""

    def __init__(self, spec: AccelerometerSpec = AccelerometerSpec()) -> None:
        self.spec = spec

    @property
    def sample_rate(self) -> float:
        """Output sampling rate (Hz)."""
        return self.spec.sample_rate

    def sense(
        self,
        vibration_field: np.ndarray,
        field_rate: float,
        drive_audio: np.ndarray,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Digitize the vibration reaching the sensor.

        Parameters
        ----------
        vibration_field:
            Conductive vibration at the sensor, at audio rate (already
            shaped by :class:`~repro.sensing.conduction.ConductionPath`).
        field_rate:
            Sampling rate of ``vibration_field`` (must be an integer
            multiple of the sensor rate).
        drive_audio:
            The audio signal being replayed; used to derive the DC
            envelope artifact and the low-frequency noise injection.
        rng:
            Randomness for noise terms.

        Returns
        -------
        numpy.ndarray
            Vibration samples at :attr:`sample_rate`.
        """
        field = ensure_1d(vibration_field, "vibration_field")
        drive = ensure_1d(drive_audio, "drive_audio")
        ensure_positive(field_rate, "field_rate")
        generator = as_generator(rng)
        spec = self.spec

        # Phenomenon 2: envelope-following near-DC response.  The sensor's
        # DC sensitivity is sharply confined below ~5 Hz (Fig. 7), so a
        # steep filter keeps the artifact out of the analysis band.
        envelope = butter_lowpass(
            np.abs(drive), field_rate, spec.dc_bandwidth_hz, order=6
        )
        analog = field + spec.dc_sensitivity * envelope

        # Phenomenon 1: raw decimation — content above Nyquist folds in.
        sampled = alias_decimate(analog, field_rate, spec.sample_rate)

        # Phenomenon 3: low-frequency drive content injects amplifier
        # noise.  The injection tracks the *instantaneous* low-frequency
        # envelope (the amplifier misbehaves while the low-frequency
        # sound is present, not on average), so the noise power follows
        # the syllabic envelope of the replayed command.
        low_content = butter_lowpass(
            drive, field_rate, spec.low_freq_cutoff_hz, order=4
        )
        envelope_lf = butter_lowpass(
            np.abs(low_content), field_rate, 8.0, order=2
        )
        envelope_lf = np.clip(envelope_lf, 0.0, None)
        envelope_sampled = alias_decimate(
            envelope_lf, field_rate, spec.sample_rate
        )
        # |lowpassed(|x|)| underestimates the RMS envelope by the
        # rectified-Gaussian factor sqrt(pi / 2).  The injected noise
        # grows *sublinearly* with drive level (the amplifier's noise
        # mechanisms saturate), so louder low-frequency sounds enjoy a
        # relatively better signal-to-injected-noise ratio.
        envelope_rms = np.sqrt(np.pi / 2.0) * envelope_sampled
        reference = spec.noise_envelope_reference
        scaled = (
            reference
            * (envelope_rms / reference) ** spec.noise_envelope_exponent
        )
        noise_rms_t = spec.base_noise_rms + (
            spec.low_freq_noise_coeff * scaled
        )
        sampled = sampled + noise_rms_t * generator.standard_normal(
            sampled.size
        )

        # Phenomenon 4: quantization.
        if spec.lsb > 0:
            sampled = np.round(sampled / spec.lsb) * spec.lsb
        return sampled

    def sense_batch(
        self,
        vibration_fields: np.ndarray,
        field_rate: float,
        drive_audios: np.ndarray,
        rngs: Optional[Sequence[SeedLike]] = None,
    ) -> np.ndarray:
        """:meth:`sense` over a ``(batch, time)`` stack of fields.

        ``rngs[i]`` supplies the noise stream for row ``i`` — the same
        stream a sequential ``sense(vibration_fields[i], ...,
        rng=rngs[i])`` call would consume.  All deterministic stages
        (envelope filters, decimation, noise-level synthesis,
        quantization) run vectorized along the last axis; only the
        Gaussian noise draws happen per item, preserving bitwise parity
        with the sequential path row by row.
        """
        fields = ensure_2d(vibration_fields, "vibration_fields")
        drives = ensure_2d(drive_audios, "drive_audios")
        if fields.shape != drives.shape:
            raise ConfigurationError(
                f"vibration_fields {fields.shape} and drive_audios "
                f"{drives.shape} must have matching shapes"
            )
        ensure_positive(field_rate, "field_rate")
        n_items = fields.shape[0]
        if rngs is None:
            rngs = [None] * n_items
        if len(rngs) != n_items:
            raise ConfigurationError(
                f"need one rng per field: got {len(rngs)} rngs for "
                f"{n_items} fields"
            )
        spec = self.spec

        # Phenomenon 2: envelope-following near-DC response.
        envelope = butter_lowpass_batch(
            np.abs(drives), field_rate, spec.dc_bandwidth_hz, order=6
        )
        analog = fields + spec.dc_sensitivity * envelope

        # Phenomenon 1: raw decimation with aliasing.
        sampled = alias_decimate_batch(analog, field_rate, spec.sample_rate)

        # Phenomenon 3: low-frequency drive content injects amplifier
        # noise tracking the instantaneous low-frequency envelope.
        low_content = butter_lowpass_batch(
            drives, field_rate, spec.low_freq_cutoff_hz, order=4
        )
        envelope_lf = butter_lowpass_batch(
            np.abs(low_content), field_rate, 8.0, order=2
        )
        envelope_lf = np.clip(envelope_lf, 0.0, None)
        envelope_sampled = alias_decimate_batch(
            envelope_lf, field_rate, spec.sample_rate
        )
        envelope_rms = np.sqrt(np.pi / 2.0) * envelope_sampled
        reference = spec.noise_envelope_reference
        scaled = (
            reference
            * (envelope_rms / reference) ** spec.noise_envelope_exponent
        )
        noise_rms_t = spec.base_noise_rms + (
            spec.low_freq_noise_coeff * scaled
        )
        noise = np.empty_like(sampled)
        for index, rng in enumerate(rngs):
            noise[index] = as_generator(rng).standard_normal(
                sampled.shape[-1]
            )
        sampled = sampled + noise_rms_t * noise

        # Phenomenon 4: quantization.
        if spec.lsb > 0:
            sampled = np.round(sampled / spec.lsb) * spec.lsb
        return sampled
