"""Named wearable device profiles.

The paper evaluates with two commercial smartwatches — a Fossil Gen 5
and a Moto 360 (2020) — both sampling their accelerometers at 200 Hz
but with slightly different speakers and case acoustics.  These
profiles bundle a speaker spec, conduction path, and accelerometer spec
into ready-made :class:`~repro.sensing.cross_domain.CrossDomainSensor`
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.acoustics.loudspeaker import LoudspeakerSpec
from repro.errors import ConfigurationError
from repro.sensing.accelerometer import AccelerometerSpec
from repro.sensing.conduction import ConductionPath
from repro.sensing.cross_domain import CrossDomainSensor


@dataclass(frozen=True)
class WearableProfile:
    """A named wearable hardware configuration."""

    name: str
    speaker: LoudspeakerSpec
    conduction: ConductionPath
    accelerometer: AccelerometerSpec

    def make_sensor(self) -> CrossDomainSensor:
        """Instantiate the cross-domain sensor for this wearable."""
        return CrossDomainSensor(
            speaker_spec=self.speaker,
            conduction=self.conduction,
            accelerometer_spec=self.accelerometer,
        )


#: Fossil Gen 5: the paper's primary device (also used for selection).
FOSSIL_GEN_5 = WearableProfile(
    name="Fossil Gen 5",
    speaker=LoudspeakerSpec(
        name="fossil speaker", low_cut_hz=400.0, high_cut_hz=8000.0,
        harmonic_distortion=0.05,
    ),
    conduction=ConductionPath(),
    accelerometer=AccelerometerSpec(),
)

#: Moto 360 (2020): slightly smaller speaker, stiffer case (resonance a
#: touch higher), marginally noisier accelerometer front end.
MOTO_360 = WearableProfile(
    name="Moto 360",
    speaker=LoudspeakerSpec(
        name="moto speaker", low_cut_hz=450.0, high_cut_hz=7500.0,
        harmonic_distortion=0.06,
    ),
    conduction=ConductionPath(
        low_corner_hz=650.0, resonance_hz=2400.0, high_corner_hz=5200.0,
        gain=0.18,
    ),
    accelerometer=AccelerometerSpec(
        base_noise_rms=2.5e-4, low_freq_noise_coeff=0.055
    ),
)

#: Registry keyed by short name.
WEARABLES: Dict[str, WearableProfile] = {
    "fossil_gen_5": FOSSIL_GEN_5,
    "moto_360": MOTO_360,
}


def get_wearable(name: str) -> WearableProfile:
    """Look up a wearable profile by registry key."""
    try:
        return WEARABLES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown wearable {name!r}; known: {sorted(WEARABLES)}"
        ) from None
