"""Conductive coupling between the wearable's speaker and accelerometer.

When the wearable replays audio, sound energy reaches the accelerometer
as surface vibration through the watch body.  The coupling is strongly
frequency-selective: low-frequency airborne audio (< ~500 Hz) barely
vibrates the stiff case, while higher frequencies (≳1 kHz) couple well
through structural resonances.  The paper leans on exactly this fact —
"the accelerometer can significantly attenuate low-frequency audio
signals ... meanwhile, it captures the high-frequency audio signals"
(§ IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_2d


@dataclass(frozen=True)
class ConductionPath:
    """Structural coupling response from speaker to accelerometer.

    Attributes
    ----------
    low_corner_hz:
        Frequency below which coupling falls off steeply (case stiffness).
    resonance_hz:
        Structural resonance where coupling peaks.
    resonance_q:
        Sharpness of the resonance peak.
    high_corner_hz:
        Frequency above which coupling rolls off again.
    gain:
        Overall coupling efficiency (vibration amplitude per unit drive).
    """

    low_corner_hz: float = 600.0
    low_rolloff_order: int = 1
    resonance_hz: float = 2200.0
    resonance_q: float = 2.0
    high_corner_hz: float = 5000.0
    gain: float = 0.2
    response_jitter_db: float = 1.5

    def __post_init__(self) -> None:
        if self.response_jitter_db < 0:
            raise ConfigurationError("response_jitter_db must be >= 0")
        if not 0 < self.low_corner_hz < self.resonance_hz:
            raise ConfigurationError(
                "need 0 < low_corner_hz < resonance_hz"
            )
        if self.high_corner_hz <= self.resonance_hz:
            raise ConfigurationError(
                "high_corner_hz must exceed resonance_hz"
            )
        if self.gain <= 0:
            raise ConfigurationError("gain must be > 0")

    def response(self, frequencies: np.ndarray) -> np.ndarray:
        """Linear coupling gain at each frequency."""
        frequencies = np.asarray(frequencies, dtype=np.float64)
        safe = np.maximum(frequencies, 1e-3)
        # High-pass: the stiff case responds weakly (but not zero — loud
        # bass still shakes it a little) below the corner.
        highpass = 1.0 / (
            1.0 + (self.low_corner_hz / safe) ** (2 * self.low_rolloff_order)
        )
        # Resonant emphasis around the structural mode.
        resonance = 1.0 + self.resonance_q / (
            1.0
            + ((safe - self.resonance_hz) / (self.resonance_hz / 4.0)) ** 2
        )
        # Gentle roll-off above the mode.
        lowpass = 1.0 / (1.0 + (safe / self.high_corner_hz) ** 4)
        return self.gain * highpass * resonance * lowpass

    def apply(
        self,
        signal: np.ndarray,
        sample_rate: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Filter an audio-rate drive signal through the coupling path.

        Each call applies a fresh smooth random ripple to the response
        (``response_jitter_db``): wrist-strap contact shifts slightly
        between replays, so two conversions never see the bit-identical
        coupling.
        """
        samples = np.asarray(signal, dtype=np.float64)
        spectrum = np.fft.rfft(samples)
        frequencies = np.fft.rfftfreq(samples.size, d=1.0 / sample_rate)
        gain = self.response(frequencies)
        if self.response_jitter_db > 0:
            gain = gain * self._response_ripple(frequencies, rng)
        return np.fft.irfft(spectrum * gain, n=samples.size)

    def apply_batch(
        self,
        signals: np.ndarray,
        sample_rate: float,
        rngs: Optional[Sequence[SeedLike]] = None,
    ) -> np.ndarray:
        """:meth:`apply` over a ``(batch, time)`` stack of drive signals.

        ``rngs[i]`` supplies the per-replay ripple randomness for row
        ``i`` — the same stream a sequential ``apply(signals[i],
        rng=rngs[i])`` call would consume, so each row is bitwise
        identical to the sequential path.  The FFT pair runs once over
        the whole stack; only the (cheap) ripple parameters are drawn
        per item.
        """
        samples = ensure_2d(signals, "signals")
        n_items = samples.shape[0]
        if rngs is None:
            rngs = [None] * n_items
        if len(rngs) != n_items:
            raise ConfigurationError(
                f"need one rng per signal: got {len(rngs)} rngs for "
                f"{n_items} signals"
            )
        spectrum = np.fft.rfft(samples, axis=-1)
        frequencies = np.fft.rfftfreq(
            samples.shape[-1], d=1.0 / sample_rate
        )
        gain = self.response(frequencies)
        if self.response_jitter_db > 0:
            gains = np.empty((n_items, frequencies.size))
            for index, rng in enumerate(rngs):
                gains[index] = gain * self._response_ripple(
                    frequencies, rng
                )
        else:
            gains = gain[np.newaxis, :]
        return np.fft.irfft(
            spectrum * gains, n=samples.shape[-1], axis=-1
        )

    def _response_ripple(
        self,
        frequencies: np.ndarray,
        rng: SeedLike,
    ) -> np.ndarray:
        """Smooth per-replay log-amplitude ripple (strap contact shift)."""
        generator = as_generator(rng)
        span = max(float(frequencies[-1]), 1.0)
        ripple_db = np.zeros_like(frequencies)
        for _ in range(4):
            center = generator.uniform(200.0, span)
            width = generator.uniform(span / 16.0, span / 6.0)
            amplitude = generator.normal(0.0, self.response_jitter_db)
            ripple_db += amplitude * np.exp(
                -0.5 * ((frequencies - center) / width) ** 2
            )
        return 10.0 ** (ripple_db / 20.0)
