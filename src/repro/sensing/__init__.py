"""Cross-domain sensing substrate (wearable speaker → accelerometer).

Models the conversion of audio-domain signals into the vibration domain
through a wearable's built-in speaker and accelerometer, including every
artifact the paper's detector exploits or must mitigate: conductive
coupling that suppresses low-frequency audio, aliasing at the 200 Hz
sensor rate, amplifier noise injection for low-frequency-dominated
drives, the 0–5 Hz DC-sensitivity artifact, and body-motion interference.
"""

from repro.sensing.accelerometer import (
    Accelerometer,
    AccelerometerSpec,
    VIBRATION_SAMPLE_RATE,
)
from repro.sensing.conduction import ConductionPath
from repro.sensing.body_motion import body_motion_interference
from repro.sensing.cross_domain import CrossDomainSensor

__all__ = [
    "Accelerometer",
    "AccelerometerSpec",
    "VIBRATION_SAMPLE_RATE",
    "ConductionPath",
    "body_motion_interference",
    "CrossDomainSensor",
]
