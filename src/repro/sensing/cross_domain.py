"""Cross-domain sensor: replay audio on the wearable, read the vibration.

This composes the full §IV-A chain: wearable built-in speaker playback →
conductive coupling through the watch body → accelerometer sampling with
aliasing, DC artifact, low-frequency noise injection, and optional body
motion.  The output is the vibration-domain signal the defense analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.acoustics.loudspeaker import (
    Loudspeaker,
    LoudspeakerSpec,
    WEARABLE_SPEAKER,
)
from repro.sensing.accelerometer import Accelerometer, AccelerometerSpec
from repro.sensing.body_motion import body_motion_interference
from repro.sensing.conduction import ConductionPath
from repro.utils.rng import SeedLike, as_generator, child_rng
from repro.utils.validation import ensure_1d, ensure_positive


@dataclass
class CrossDomainSensor:
    """Converts audio recordings into vibration-domain signals.

    Parameters
    ----------
    speaker_spec:
        Built-in speaker model (defaults to a smartwatch driver).
    conduction:
        Speaker-to-sensor structural coupling.
    accelerometer_spec:
        Sensor model.
    body_motion_intensity:
        RMS of wrist-motion interference added when
        ``include_body_motion=True`` at conversion time.

    Examples
    --------
    >>> from repro.sensing import CrossDomainSensor
    >>> import numpy as np
    >>> sensor = CrossDomainSensor()
    >>> audio = np.sin(2 * np.pi * 1200.0 * np.arange(16000) / 16000.0)
    >>> vibration = sensor.convert(audio, 16000.0, rng=3)
    >>> vibration.size
    200
    """

    speaker_spec: LoudspeakerSpec = field(
        default_factory=lambda: WEARABLE_SPEAKER
    )
    conduction: ConductionPath = field(default_factory=ConductionPath)
    accelerometer_spec: AccelerometerSpec = field(
        default_factory=AccelerometerSpec
    )
    body_motion_intensity: float = 0.02

    def __post_init__(self) -> None:
        self._speaker = Loudspeaker(self.speaker_spec)
        self._accelerometer = Accelerometer(self.accelerometer_spec)

    @property
    def vibration_rate(self) -> float:
        """Sampling rate (Hz) of the produced vibration signals."""
        return self._accelerometer.sample_rate

    def convert(
        self,
        audio: np.ndarray,
        audio_rate: float,
        rng: SeedLike = None,
        include_body_motion: bool = False,
    ) -> np.ndarray:
        """Replay ``audio`` through the wearable and record the vibration.

        Parameters
        ----------
        audio:
            Audio-domain recording to replay.
        audio_rate:
            Sampling rate of ``audio`` (must be an integer multiple of
            the accelerometer rate, e.g. 16 kHz → 200 Hz).
        rng:
            Randomness for sensor noise; each call draws fresh noise —
            two conversions of the *same* audio still differ, exactly as
            two physical replays would.
        include_body_motion:
            Add wrist-motion interference (the user is wearing the watch
            while it replays).

        Returns
        -------
        numpy.ndarray
            Vibration signal at :attr:`vibration_rate`.
        """
        samples = ensure_1d(audio, "audio")
        ensure_positive(audio_rate, "audio_rate")
        generator = as_generator(rng)

        played = self._speaker.play(samples, audio_rate)
        coupled = self.conduction.apply(
            played, audio_rate, rng=child_rng(generator, "strap")
        )
        vibration = self._accelerometer.sense(
            coupled, audio_rate, drive_audio=samples,
            rng=child_rng(generator, "sense"),
        )
        if include_body_motion and self.body_motion_intensity > 0:
            vibration = vibration + body_motion_interference(
                vibration.size,
                self.vibration_rate,
                intensity=self.body_motion_intensity,
                rng=child_rng(generator, "body"),
            )
        return vibration

    def convert_batch(
        self,
        audios: Sequence[np.ndarray],
        audio_rate: float,
        rngs: Optional[Sequence[SeedLike]] = None,
        include_body_motion: bool = False,
    ) -> List[np.ndarray]:
        """Replay a batch of recordings; vectorize the whole §IV-A chain.

        ``rngs[i]`` is the seed/generator that a sequential
        ``convert(audios[i], audio_rate, rng=rngs[i], ...)`` call would
        receive; the per-item child streams (``strap`` → ``sense`` →
        ``body``) are derived in exactly the sequential order, so item
        ``i`` of the result is **bitwise identical** to the sequential
        path.

        Recordings of equal length are grouped into dense ``(batch,
        time)`` stacks and pushed through :meth:`Loudspeaker.play_batch`,
        :meth:`ConductionPath.apply_batch`, and
        :meth:`Accelerometer.sense_batch` in one shot each.  Grouping by
        *exact* length (instead of right-padding to the batch maximum)
        is what preserves bitwise parity: padding would change the FFT
        length and the ``sosfiltfilt`` edge extension, perturbing every
        sample in the padded rows.

        Returns
        -------
        list of numpy.ndarray
            Vibration signals at :attr:`vibration_rate`, one per input,
            in input order.
        """
        ensure_positive(audio_rate, "audio_rate")
        items = [ensure_1d(audio, "audio") for audio in audios]
        if rngs is None:
            rngs = [None] * len(items)
        if len(rngs) != len(items):
            raise ValueError(
                f"need one rng per audio: got {len(rngs)} rngs for "
                f"{len(items)} audios"
            )
        want_body = include_body_motion and self.body_motion_intensity > 0

        # Derive every per-item child stream up front, in the exact
        # order the sequential path consumes parent draws: strap, sense,
        # then (conditionally) body.
        strap_rngs: List[np.random.Generator] = []
        sense_rngs: List[np.random.Generator] = []
        body_rngs: List[Optional[np.random.Generator]] = []
        for rng in rngs:
            generator = as_generator(rng)
            strap_rngs.append(child_rng(generator, "strap"))
            sense_rngs.append(child_rng(generator, "sense"))
            body_rngs.append(
                child_rng(generator, "body") if want_body else None
            )

        buckets: Dict[int, List[int]] = {}
        for index, samples in enumerate(items):
            buckets.setdefault(samples.size, []).append(index)

        results: List[Optional[np.ndarray]] = [None] * len(items)
        for indices in buckets.values():
            stack = np.stack([items[index] for index in indices])
            played = self._speaker.play_batch(stack, audio_rate)
            coupled = self.conduction.apply_batch(
                played,
                audio_rate,
                rngs=[strap_rngs[index] for index in indices],
            )
            vibrations = self._accelerometer.sense_batch(
                coupled,
                audio_rate,
                drive_audios=stack,
                rngs=[sense_rngs[index] for index in indices],
            )
            for row, index in enumerate(indices):
                results[index] = vibrations[row]

        converted = [
            vibration for vibration in results if vibration is not None
        ]
        if len(converted) != len(items):  # pragma: no cover - invariant
            raise RuntimeError("convert_batch dropped an item")
        if want_body:
            for index, vibration in enumerate(converted):
                converted[index] = vibration + body_motion_interference(
                    vibration.size,
                    self.vibration_rate,
                    intensity=self.body_motion_intensity,
                    rng=body_rngs[index],
                )
        return converted

    def chirp_response(
        self,
        start_hz: float,
        end_hz: float,
        duration_s: float,
        audio_rate: float = 16_000.0,
        amplitude: float = 0.3,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Vibration response to an audio chirp (reproduces Fig. 7)."""
        from repro.dsp.generators import linear_chirp

        chirp = amplitude * linear_chirp(
            start_hz, end_hz, duration_s, audio_rate
        )
        return self.convert(chirp, audio_rate, rng=rng)
