"""Cross-domain sensor: replay audio on the wearable, read the vibration.

This composes the full §IV-A chain — wearable built-in speaker playback →
conductive coupling through the watch body → accelerometer sampling with
aliasing, DC artifact, low-frequency noise injection, and optional body
motion — as a :class:`~repro.channels.PropagationChannel` of three
stages.  The output is the vibration-domain signal the defense analyzes.

Scenario packs can substitute a custom replay channel (extra stages,
different specs) via the ``channel`` field without touching this class;
body-motion interference stays a sensor-level concern because it is
additive at the vibration rate regardless of the channel's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.acoustics.loudspeaker import LoudspeakerSpec, WEARABLE_SPEAKER
from repro.sensing.accelerometer import AccelerometerSpec
from repro.sensing.body_motion import body_motion_interference
from repro.sensing.conduction import ConductionPath
from repro.utils.rng import SeedLike, as_generator, child_rng
from repro.utils.validation import ensure_1d, ensure_positive

#: Nominal audio rate used to report :attr:`CrossDomainSensor
#: .vibration_rate` for channels whose output rate depends on the input
#: rate.  The default chain ends in an accelerometer stage whose output
#: rate is fixed, so the nominal rate is irrelevant there.
NOMINAL_AUDIO_RATE = 16_000.0


@dataclass
class CrossDomainSensor:
    """Converts audio recordings into vibration-domain signals.

    Parameters
    ----------
    speaker_spec:
        Built-in speaker model (defaults to a smartwatch driver).
    conduction:
        Speaker-to-sensor structural coupling.
    accelerometer_spec:
        Sensor model.
    body_motion_intensity:
        RMS of wrist-motion interference added when
        ``include_body_motion=True`` at conversion time.
    channel:
        Replay propagation channel.  ``None`` builds the paper's default
        speaker → conduction → accelerometer chain from the spec fields
        above; scenario packs pass a custom channel here.

    Examples
    --------
    >>> from repro.sensing import CrossDomainSensor
    >>> import numpy as np
    >>> sensor = CrossDomainSensor()
    >>> audio = np.sin(2 * np.pi * 1200.0 * np.arange(16000) / 16000.0)
    >>> vibration = sensor.convert(audio, 16000.0, rng=3)
    >>> vibration.size
    200
    """

    speaker_spec: LoudspeakerSpec = field(
        default_factory=lambda: WEARABLE_SPEAKER
    )
    conduction: ConductionPath = field(default_factory=ConductionPath)
    accelerometer_spec: AccelerometerSpec = field(
        default_factory=AccelerometerSpec
    )
    body_motion_intensity: float = 0.02
    #: A :class:`repro.channels.PropagationChannel`; ``None`` builds the
    #: default chain.  (Typed loosely to avoid a package import cycle —
    #: ``repro.channels`` stage adapters import the sensing specs.)
    channel: Optional[object] = None

    def __post_init__(self) -> None:
        from repro.channels.graph import PropagationChannel
        from repro.channels.stages import (
            AccelerometerStage,
            ConductionStage,
            LoudspeakerStage,
        )

        if self.channel is None:
            self.channel = PropagationChannel(
                stages=(
                    LoudspeakerStage(self.speaker_spec),
                    ConductionStage(self.conduction),
                    AccelerometerStage(self.accelerometer_spec),
                ),
                name="wearable-replay",
            )

    @property
    def vibration_rate(self) -> float:
        """Sampling rate (Hz) of the produced vibration signals."""
        return self.channel.output_rate(NOMINAL_AUDIO_RATE)

    def convert(
        self,
        audio: np.ndarray,
        audio_rate: float,
        rng: SeedLike = None,
        include_body_motion: bool = False,
    ) -> np.ndarray:
        """Replay ``audio`` through the wearable and record the vibration.

        Parameters
        ----------
        audio:
            Audio-domain recording to replay.
        audio_rate:
            Sampling rate of ``audio`` (must be an integer multiple of
            the accelerometer rate, e.g. 16 kHz → 200 Hz).
        rng:
            Randomness for sensor noise; each call draws fresh noise —
            two conversions of the *same* audio still differ, exactly as
            two physical replays would.
        include_body_motion:
            Add wrist-motion interference (the user is wearing the watch
            while it replays).

        Returns
        -------
        numpy.ndarray
            Vibration signal at :attr:`vibration_rate`.
        """
        samples = ensure_1d(audio, "audio")
        ensure_positive(audio_rate, "audio_rate")
        generator = as_generator(rng)

        vibration = self.channel.apply(samples, audio_rate, rng=generator)
        if include_body_motion and self.body_motion_intensity > 0:
            vibration = vibration + body_motion_interference(
                vibration.size,
                self.channel.output_rate(audio_rate),
                intensity=self.body_motion_intensity,
                rng=child_rng(generator, "body"),
            )
        return vibration

    def convert_batch(
        self,
        audios: Sequence[np.ndarray],
        audio_rate: float,
        rngs: Optional[Sequence[SeedLike]] = None,
        include_body_motion: bool = False,
    ) -> List[np.ndarray]:
        """Replay a batch of recordings; vectorize the whole §IV-A chain.

        ``rngs[i]`` is the seed/generator that a sequential
        ``convert(audios[i], audio_rate, rng=rngs[i], ...)`` call would
        receive; the per-item child streams (one per stochastic channel
        stage, then ``body``) are derived in exactly the sequential
        order, so item ``i`` of the result is **bitwise identical** to
        the sequential path.

        The channel groups recordings of equal length into dense
        ``(batch, time)`` stacks and pushes them through each stage's
        vectorized ``apply_batch``.  Grouping by *exact* length (instead
        of right-padding to the batch maximum) is what preserves bitwise
        parity: padding would change the FFT length and the
        ``sosfiltfilt`` edge extension, perturbing every sample in the
        padded rows.

        Returns
        -------
        list of numpy.ndarray
            Vibration signals at :attr:`vibration_rate`, one per input,
            in input order.
        """
        ensure_positive(audio_rate, "audio_rate")
        items = [ensure_1d(audio, "audio") for audio in audios]
        if rngs is None:
            rngs = [None] * len(items)
        if len(rngs) != len(items):
            raise ValueError(
                f"need one rng per audio: got {len(rngs)} rngs for "
                f"{len(items)} audios"
            )
        want_body = include_body_motion and self.body_motion_intensity > 0

        # One generator per item, shared between the channel's up-front
        # stream derivation and the (later) body stream, so each parent
        # consumes draws in the sequential order: channel stages first,
        # then body.
        generators = [as_generator(rng) for rng in rngs]
        converted = self.channel.apply_batch(
            items, audio_rate, rngs=generators
        )
        if want_body:
            vibration_rate = self.channel.output_rate(audio_rate)
            body_rngs = [
                child_rng(generator, "body") for generator in generators
            ]
            for index, vibration in enumerate(converted):
                converted[index] = vibration + body_motion_interference(
                    vibration.size,
                    vibration_rate,
                    intensity=self.body_motion_intensity,
                    rng=body_rngs[index],
                )
        return converted

    def chirp_response(
        self,
        start_hz: float,
        end_hz: float,
        duration_s: float,
        audio_rate: float = 16_000.0,
        amplitude: float = 0.3,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Vibration response to an audio chirp (reproduces Fig. 7)."""
        from repro.dsp.generators import linear_chirp

        chirp = amplitude * linear_chirp(
            start_hz, end_hz, duration_s, audio_rate
        )
        return self.convert(chirp, audio_rate, rng=rng)
