"""Body-motion interference on wrist-worn accelerometers.

Daily activities impose low-frequency acceleration (≈0.3–3.5 Hz,
Plasqui et al.) that superimposes on the vibration measurements.  The
defense removes it with a high-pass / spectrogram crop; this generator
lets tests and benchmarks inject realistic interference.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_positive


def body_motion_interference(
    n_samples: int,
    sample_rate: float,
    intensity: float = 0.02,
    rng: SeedLike = None,
) -> np.ndarray:
    """Generate wrist-motion acceleration over ``n_samples``.

    A mixture of a few drifting sinusoids in the 0.3–3.5 Hz band plus a
    slow random walk, matching the spectral footprint of daily activity.

    Parameters
    ----------
    n_samples:
        Output length at ``sample_rate``.
    sample_rate:
        Vibration-domain sampling rate (Hz).
    intensity:
        RMS amplitude of the interference.
    rng:
        Randomness source.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be > 0, got {n_samples}")
    ensure_positive(sample_rate, "sample_rate")
    generator = as_generator(rng)
    t = np.arange(n_samples) / sample_rate

    motion = np.zeros(n_samples)
    for _ in range(4):
        frequency = float(generator.uniform(0.3, 3.5))
        amplitude = float(generator.uniform(0.3, 1.0))
        phase = float(generator.uniform(0.0, 2 * np.pi))
        motion += amplitude * np.sin(2 * np.pi * frequency * t + phase)

    # Slow posture drift: integrated white noise, heavily smoothed.
    walk = np.cumsum(generator.standard_normal(n_samples))
    walk -= np.linspace(walk[0], walk[-1], n_samples)
    if np.std(walk) > 0:
        motion += 0.5 * walk / np.std(walk)

    rms = float(np.sqrt(np.mean(motion**2))) + 1e-12
    return intensity * motion / rms
