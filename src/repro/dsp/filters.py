"""IIR and FIR filtering helpers built on scipy.signal.

Used for: the wearable's high-pass preprocessing that removes body-motion
interference, barrier/microphone/loudspeaker frequency shaping, and the
anti-aliased decimation path (the accelerometer path deliberately skips it).

Filter *designs* are memoized: a Butterworth design depends only on
``(order, cutoff, btype, rate)``, yet the sensing hot path used to
redesign it on every call.  :func:`butter_sos` caches the section
matrices (read-only, like ``get_window``/``mel_filterbank``), so
repeated filtering pays only the ``sosfiltfilt`` cost.

The ``*_batch`` variants filter a ``(batch, time)`` stack of
equal-length signals along the last axis.  scipy applies the identical
per-row arithmetic, so every row is bitwise equal to filtering it alone
— the contract the batched cross-domain sensing path builds on.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple, Union

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_1d, ensure_2d, ensure_positive


def _validate_cutoff(cutoff_hz: float, sample_rate: float, name: str) -> float:
    ensure_positive(sample_rate, "sample_rate")
    cutoff_hz = float(cutoff_hz)
    if not (0 < cutoff_hz < sample_rate / 2):
        raise ConfigurationError(
            f"{name} must lie strictly inside (0, Nyquist={sample_rate / 2}); "
            f"got {cutoff_hz}"
        )
    return cutoff_hz


@lru_cache(maxsize=128)
def _butter_sos_cached(
    order: int,
    cutoff: Union[float, Tuple[float, float]],
    btype: str,
    sample_rate: float,
) -> np.ndarray:
    sos = sp_signal.butter(
        order,
        list(cutoff) if isinstance(cutoff, tuple) else cutoff,
        btype=btype,
        fs=sample_rate,
        output="sos",
    )
    sos.setflags(write=False)
    return sos


def butter_sos(
    order: int,
    cutoff: Union[float, Tuple[float, float]],
    btype: str,
    sample_rate: float,
) -> np.ndarray:
    """Memoized Butterworth second-order-section design.

    The design is a pure function of its arguments, so the cached matrix
    is bitwise identical to a fresh ``scipy.signal.butter`` call.
    Returns a writable copy (a few dozen floats) because scipy's sosfilt
    kernels reject read-only buffers; the cached master stays frozen.
    """
    if isinstance(cutoff, (tuple, list)):
        cutoff = tuple(float(edge) for edge in cutoff)
    else:
        cutoff = float(cutoff)
    return _butter_sos_cached(
        int(order), cutoff, btype, float(sample_rate)
    ).copy()


def butter_highpass(
    signal: np.ndarray,
    sample_rate: float,
    cutoff_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth high-pass filter."""
    samples = ensure_1d(signal)
    cutoff_hz = _validate_cutoff(cutoff_hz, sample_rate, "cutoff_hz")
    sos = butter_sos(order, cutoff_hz, "highpass", sample_rate)
    return _sosfiltfilt_safe(sos, samples)


def butter_lowpass(
    signal: np.ndarray,
    sample_rate: float,
    cutoff_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter."""
    samples = ensure_1d(signal)
    cutoff_hz = _validate_cutoff(cutoff_hz, sample_rate, "cutoff_hz")
    sos = butter_sos(order, cutoff_hz, "lowpass", sample_rate)
    return _sosfiltfilt_safe(sos, samples)


def butter_lowpass_batch(
    signals: np.ndarray,
    sample_rate: float,
    cutoff_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase low-pass over a ``(batch, time)`` stack of signals.

    Row ``i`` of the result is bitwise identical to
    ``butter_lowpass(signals[i], ...)``.
    """
    samples = ensure_2d(signals, "signals")
    cutoff_hz = _validate_cutoff(cutoff_hz, sample_rate, "cutoff_hz")
    sos = butter_sos(order, cutoff_hz, "lowpass", sample_rate)
    return _sosfiltfilt_safe(sos, samples)


def butter_bandpass(
    signal: np.ndarray,
    sample_rate: float,
    low_hz: float,
    high_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass filter."""
    samples = ensure_1d(signal)
    low_hz = _validate_cutoff(low_hz, sample_rate, "low_hz")
    high_hz = _validate_cutoff(high_hz, sample_rate, "high_hz")
    if low_hz >= high_hz:
        raise ConfigurationError(
            f"low_hz ({low_hz}) must be < high_hz ({high_hz})"
        )
    sos = butter_sos(order, (low_hz, high_hz), "bandpass", sample_rate)
    return _sosfiltfilt_safe(sos, samples)


def fir_lowpass(
    signal: np.ndarray,
    sample_rate: float,
    cutoff_hz: float,
    n_taps: int = 101,
) -> np.ndarray:
    """Linear-phase FIR low-pass filter (Hamming-windowed sinc)."""
    samples = ensure_1d(signal)
    cutoff_hz = _validate_cutoff(cutoff_hz, sample_rate, "cutoff_hz")
    if n_taps < 3 or n_taps % 2 == 0:
        raise ConfigurationError(
            f"n_taps must be an odd integer >= 3, got {n_taps}"
        )
    taps = sp_signal.firwin(n_taps, cutoff_hz, fs=sample_rate)
    filtered = np.convolve(samples, taps, mode="same")
    return filtered


def _sosfiltfilt_safe(sos: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Apply sosfiltfilt, falling back to sosfilt for very short signals.

    ``sosfiltfilt`` needs a minimum pad length; short vibration snippets
    (a handful of accelerometer samples) would otherwise raise.
    """
    pad_needed = 3 * (2 * sos.shape[0] + 1)
    if samples.size <= pad_needed:
        return sp_signal.sosfilt(sos, samples)
    return sp_signal.sosfiltfilt(sos, samples)
