"""IIR and FIR filtering helpers built on scipy.signal.

Used for: the wearable's high-pass preprocessing that removes body-motion
interference, barrier/microphone/loudspeaker frequency shaping, and the
anti-aliased decimation path (the accelerometer path deliberately skips it).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError
from repro.utils.validation import ensure_1d, ensure_positive


def _validate_cutoff(cutoff_hz: float, sample_rate: float, name: str) -> float:
    ensure_positive(sample_rate, "sample_rate")
    cutoff_hz = float(cutoff_hz)
    if not (0 < cutoff_hz < sample_rate / 2):
        raise ConfigurationError(
            f"{name} must lie strictly inside (0, Nyquist={sample_rate / 2}); "
            f"got {cutoff_hz}"
        )
    return cutoff_hz


def butter_highpass(
    signal: np.ndarray,
    sample_rate: float,
    cutoff_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth high-pass filter."""
    samples = ensure_1d(signal)
    cutoff_hz = _validate_cutoff(cutoff_hz, sample_rate, "cutoff_hz")
    sos = sp_signal.butter(
        order, cutoff_hz, btype="highpass", fs=sample_rate, output="sos"
    )
    return _sosfiltfilt_safe(sos, samples)


def butter_lowpass(
    signal: np.ndarray,
    sample_rate: float,
    cutoff_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter."""
    samples = ensure_1d(signal)
    cutoff_hz = _validate_cutoff(cutoff_hz, sample_rate, "cutoff_hz")
    sos = sp_signal.butter(
        order, cutoff_hz, btype="lowpass", fs=sample_rate, output="sos"
    )
    return _sosfiltfilt_safe(sos, samples)


def butter_bandpass(
    signal: np.ndarray,
    sample_rate: float,
    low_hz: float,
    high_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass filter."""
    samples = ensure_1d(signal)
    low_hz = _validate_cutoff(low_hz, sample_rate, "low_hz")
    high_hz = _validate_cutoff(high_hz, sample_rate, "high_hz")
    if low_hz >= high_hz:
        raise ConfigurationError(
            f"low_hz ({low_hz}) must be < high_hz ({high_hz})"
        )
    sos = sp_signal.butter(
        order, [low_hz, high_hz], btype="bandpass", fs=sample_rate,
        output="sos",
    )
    return _sosfiltfilt_safe(sos, samples)


def fir_lowpass(
    signal: np.ndarray,
    sample_rate: float,
    cutoff_hz: float,
    n_taps: int = 101,
) -> np.ndarray:
    """Linear-phase FIR low-pass filter (Hamming-windowed sinc)."""
    samples = ensure_1d(signal)
    cutoff_hz = _validate_cutoff(cutoff_hz, sample_rate, "cutoff_hz")
    if n_taps < 3 or n_taps % 2 == 0:
        raise ConfigurationError(
            f"n_taps must be an odd integer >= 3, got {n_taps}"
        )
    taps = sp_signal.firwin(n_taps, cutoff_hz, fs=sample_rate)
    filtered = np.convolve(samples, taps, mode="same")
    return filtered


def _sosfiltfilt_safe(sos: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Apply sosfiltfilt, falling back to sosfilt for very short signals.

    ``sosfiltfilt`` needs a minimum pad length; short vibration snippets
    (a handful of accelerometer samples) would otherwise raise.
    """
    pad_needed = 3 * (2 * sos.shape[0] + 1)
    if samples.size <= pad_needed:
        return sp_signal.sosfilt(sos, samples)
    return sp_signal.sosfiltfilt(sos, samples)
