"""Single-shot spectral analysis: FFT magnitude, PSD, band energies.

These are the primitives behind the paper's Figures 3, 4, and 6, which all
plot (averaged or quartile) FFT magnitudes of phoneme sounds.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_1d, ensure_positive


def fft_frequencies(n_samples: int, sample_rate: float) -> np.ndarray:
    """Frequency axis (Hz) for the one-sided FFT of an n-sample signal."""
    if n_samples <= 0:
        raise ConfigurationError(f"n_samples must be > 0, got {n_samples}")
    ensure_positive(sample_rate, "sample_rate")
    return np.fft.rfftfreq(n_samples, d=1.0 / sample_rate)


def fft_magnitude(
    signal: np.ndarray,
    sample_rate: float,
    n_fft: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided FFT magnitude spectrum, normalized by signal length.

    Returns ``(frequencies, magnitudes)``.  Normalizing by the number of
    samples makes magnitudes comparable across signals of different
    durations, which the phoneme-selection criteria rely on.
    """
    samples = ensure_1d(signal)
    ensure_positive(sample_rate, "sample_rate")
    if n_fft is None:
        n_fft = samples.size
    if n_fft <= 0:
        raise ConfigurationError(f"n_fft must be > 0, got {n_fft}")
    spectrum = np.fft.rfft(samples, n=n_fft)
    magnitudes = np.abs(spectrum) * (2.0 / samples.size)
    frequencies = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate)
    return frequencies, magnitudes


def mean_fft_magnitude(
    signals: Sequence[np.ndarray],
    sample_rate: float,
    n_fft: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Average one-sided FFT magnitude over a collection of signals.

    Reproduces the paper's averaging over 100 recorded segments per
    phoneme (Fig. 3 / Fig. 4).  Signals are truncated or zero-padded to
    ``n_fft`` samples so spectra share one frequency axis.
    """
    if not signals:
        raise SignalError("signals must be a non-empty sequence")
    accumulated = np.zeros(n_fft // 2 + 1)
    for signal in signals:
        samples = ensure_1d(signal)
        if samples.size > n_fft:
            samples = samples[:n_fft]
        _, magnitude = fft_magnitude(samples, sample_rate, n_fft=n_fft)
        accumulated += magnitude
    frequencies = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate)
    return frequencies, accumulated / len(signals)


def power_spectral_density(
    signal: np.ndarray,
    sample_rate: float,
    n_fft: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Periodogram power spectral density (one-sided)."""
    samples = ensure_1d(signal)
    ensure_positive(sample_rate, "sample_rate")
    if n_fft is None:
        n_fft = samples.size
    spectrum = np.fft.rfft(samples, n=n_fft)
    psd = (np.abs(spectrum) ** 2) / (sample_rate * samples.size)
    # One-sided correction: double every bin except DC (and Nyquist when
    # n_fft is even).
    if n_fft % 2 == 0:
        psd[1:-1] *= 2.0
    else:
        psd[1:] *= 2.0
    frequencies = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate)
    return frequencies, psd


def band_energy(
    signal: np.ndarray,
    sample_rate: float,
    low_hz: float,
    high_hz: float,
) -> float:
    """Total spectral energy of ``signal`` between ``low_hz`` and ``high_hz``."""
    if low_hz < 0 or high_hz <= low_hz:
        raise ConfigurationError(
            f"invalid band [{low_hz}, {high_hz}]; need 0 <= low < high"
        )
    frequencies, psd = power_spectral_density(signal, sample_rate)
    mask = (frequencies >= low_hz) & (frequencies < high_hz)
    return float(np.sum(psd[mask]))


def band_energy_ratio(
    signal: np.ndarray,
    sample_rate: float,
    split_hz: float,
) -> float:
    """Fraction of total spectral energy above ``split_hz``.

    The paper's audio-domain heuristic: thru-barrier sounds keep little
    energy above ~500 Hz.  Returns a value in [0, 1]; 0 when the signal
    has no energy at all.
    """
    ensure_positive(split_hz, "split_hz")
    frequencies, psd = power_spectral_density(signal, sample_rate)
    total = float(np.sum(psd))
    if total <= 0:
        return 0.0
    high = float(np.sum(psd[frequencies >= split_hz]))
    return high / total
