"""Digital signal processing substrate.

Everything the paper's pipeline needs from a DSP toolbox: FFT spectra,
short-time Fourier transforms, mel-frequency cepstral coefficients,
filtering, (deliberately) aliasing decimation for the accelerometer model,
cross-correlation alignment, 2-D Pearson correlation, and test-signal
generators.
"""

from repro.dsp.correlate import (
    align_by_cross_correlation,
    correlation_2d,
    cross_correlation_delay,
    normalized_cross_correlation,
)
from repro.dsp.filters import (
    butter_bandpass,
    butter_highpass,
    butter_lowpass,
    fir_lowpass,
)
from repro.dsp.generators import (
    linear_chirp,
    pink_noise,
    silence,
    tone,
    white_noise,
)
from repro.dsp.mel import hz_to_mel, mel_filterbank, mel_to_hz, mfcc
from repro.dsp.quantiles import spectral_quartile_profile
from repro.dsp.resample import alias_decimate, resample_poly_safe
from repro.dsp.spectrum import (
    band_energy,
    band_energy_ratio,
    fft_frequencies,
    fft_magnitude,
    mean_fft_magnitude,
    power_spectral_density,
)
from repro.dsp.stft import (
    power_spectrogram,
    stft,
    stft_frequencies,
    stft_times,
)
from repro.dsp.windows import frame_signal, get_window

__all__ = [
    "align_by_cross_correlation",
    "correlation_2d",
    "cross_correlation_delay",
    "normalized_cross_correlation",
    "butter_bandpass",
    "butter_highpass",
    "butter_lowpass",
    "fir_lowpass",
    "linear_chirp",
    "pink_noise",
    "silence",
    "tone",
    "white_noise",
    "hz_to_mel",
    "mel_to_hz",
    "mel_filterbank",
    "mfcc",
    "spectral_quartile_profile",
    "alias_decimate",
    "resample_poly_safe",
    "band_energy",
    "band_energy_ratio",
    "fft_frequencies",
    "fft_magnitude",
    "mean_fft_magnitude",
    "power_spectral_density",
    "power_spectrogram",
    "stft",
    "stft_frequencies",
    "stft_times",
    "frame_signal",
    "get_window",
]
