"""Short-time Fourier transform and power spectrograms.

Section VI-B of the paper derives vibration-domain features by sliding a
64-point FFT window over the vibration signal and squaring magnitudes;
:func:`power_spectrogram` is exactly that operation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dsp.windows import frame_signal, get_window
from repro.utils.validation import ensure_1d, ensure_positive


def stft(
    signal: np.ndarray,
    n_fft: int = 64,
    hop_length: int = 32,
    window: str = "hann",
) -> np.ndarray:
    """Complex STFT matrix of shape ``(n_fft // 2 + 1, n_frames)``."""
    samples = ensure_1d(signal)
    if n_fft <= 0:
        raise ConfigurationError(f"n_fft must be > 0, got {n_fft}")
    if hop_length <= 0:
        raise ConfigurationError(f"hop_length must be > 0, got {hop_length}")
    frames = frame_signal(samples, n_fft, hop_length, pad_final=True)
    tapered = frames * get_window(window, n_fft)[np.newaxis, :]
    return np.fft.rfft(tapered, axis=1).T


def power_spectrogram(
    signal: np.ndarray,
    n_fft: int = 64,
    hop_length: int = 32,
    window: str = "hann",
) -> np.ndarray:
    """Squared-magnitude spectrogram, shape ``(n_bins, n_frames)``.

    The paper empirically sets both the window size and the number of FFT
    points to 64 for 200 Hz vibration signals; those are the defaults.
    """
    transform = stft(signal, n_fft=n_fft, hop_length=hop_length, window=window)
    return transform.real**2 + transform.imag**2


def stft_frequencies(n_fft: int, sample_rate: float) -> np.ndarray:
    """Frequency axis (Hz) of the STFT bins."""
    ensure_positive(sample_rate, "sample_rate")
    if n_fft <= 0:
        raise ConfigurationError(f"n_fft must be > 0, got {n_fft}")
    return np.fft.rfftfreq(n_fft, d=1.0 / sample_rate)


def stft_times(
    n_frames: int,
    hop_length: int,
    sample_rate: float,
) -> np.ndarray:
    """Center time (s) of each STFT frame."""
    ensure_positive(sample_rate, "sample_rate")
    if n_frames < 0:
        raise ConfigurationError(f"n_frames must be >= 0, got {n_frames}")
    return np.arange(n_frames) * hop_length / sample_rate


def crop_low_frequency_bins(
    spectrogram: np.ndarray,
    n_fft: int,
    sample_rate: float,
    cutoff_hz: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Remove spectrogram rows at or below ``cutoff_hz``.

    Implements the paper's accelerometer-artifact mitigation: bins at 5 Hz
    and below are dominated by the sensor's high DC sensitivity and by body
    motion (0.3–3.5 Hz), so they are cropped before correlation.

    Returns ``(cropped_spectrogram, retained_frequencies)``.
    """
    frequencies = stft_frequencies(n_fft, sample_rate)
    if spectrogram.shape[0] != frequencies.size:
        raise ConfigurationError(
            f"spectrogram has {spectrogram.shape[0]} rows but n_fft={n_fft} "
            f"implies {frequencies.size} bins"
        )
    keep = frequencies > cutoff_hz
    return spectrogram[keep, :], frequencies[keep]
