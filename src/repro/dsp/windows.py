"""Window functions and signal framing."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_1d

_WINDOWS = ("hann", "hamming", "rect", "blackman")


def get_window(name: str, length: int) -> np.ndarray:
    """Return a window of ``length`` samples.

    Supported names: ``hann``, ``hamming``, ``rect``, ``blackman``.
    """
    if length <= 0:
        raise ConfigurationError(f"window length must be > 0, got {length}")
    if name == "hann":
        return np.hanning(length)
    if name == "hamming":
        return np.hamming(length)
    if name == "blackman":
        return np.blackman(length)
    if name == "rect":
        return np.ones(length)
    raise ConfigurationError(
        f"unknown window {name!r}; expected one of {_WINDOWS}"
    )


def frame_signal(
    signal: np.ndarray,
    frame_length: int,
    hop_length: int,
    pad_final: bool = True,
) -> np.ndarray:
    """Slice a 1-D signal into overlapping frames.

    Parameters
    ----------
    signal:
        Input samples.
    frame_length:
        Samples per frame.
    hop_length:
        Samples advanced between consecutive frames.
    pad_final:
        When True, a trailing partial frame is zero-padded to full length;
        when False, trailing samples that do not fill a frame are dropped.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_frames, frame_length)``.
    """
    samples = ensure_1d(signal)
    if frame_length <= 0:
        raise ConfigurationError(
            f"frame_length must be > 0, got {frame_length}"
        )
    if hop_length <= 0:
        raise ConfigurationError(f"hop_length must be > 0, got {hop_length}")
    if samples.size < frame_length:
        if not pad_final:
            raise SignalError(
                f"signal of {samples.size} samples is shorter than one "
                f"frame ({frame_length} samples)"
            )
        padded = np.zeros(frame_length)
        padded[: samples.size] = samples
        return padded[np.newaxis, :]

    if pad_final:
        n_frames = 1 + int(np.ceil((samples.size - frame_length) / hop_length))
        needed = (n_frames - 1) * hop_length + frame_length
        if needed > samples.size:
            samples = np.concatenate(
                [samples, np.zeros(needed - samples.size)]
            )
    else:
        n_frames = 1 + (samples.size - frame_length) // hop_length

    indices = (
        np.arange(frame_length)[np.newaxis, :]
        + hop_length * np.arange(n_frames)[:, np.newaxis]
    )
    return samples[indices]
