"""Window functions and signal framing."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_1d

_WINDOWS = ("hann", "hamming", "rect", "blackman")


@lru_cache(maxsize=64)
def _build_window(name: str, length: int) -> np.ndarray:
    """Construct (and cache) one window; result is marked read-only."""
    if name == "hann":
        window = np.hanning(length)
    elif name == "hamming":
        window = np.hamming(length)
    elif name == "blackman":
        window = np.blackman(length)
    else:  # "rect" — validated by get_window
        window = np.ones(length)
    window.setflags(write=False)
    return window


def get_window(name: str, length: int) -> np.ndarray:
    """Return a window of ``length`` samples.

    Supported names: ``hann``, ``hamming``, ``rect``, ``blackman``.

    Windows are memoized per ``(name, length)`` and returned as
    read-only arrays; copy before mutating.
    """
    if length <= 0:
        raise ConfigurationError(f"window length must be > 0, got {length}")
    if name not in _WINDOWS:
        raise ConfigurationError(
            f"unknown window {name!r}; expected one of {_WINDOWS}"
        )
    return _build_window(name, length)


def frame_signal(
    signal: np.ndarray,
    frame_length: int,
    hop_length: int,
    pad_final: bool = True,
) -> np.ndarray:
    """Slice a 1-D signal into overlapping frames.

    Parameters
    ----------
    signal:
        Input samples.
    frame_length:
        Samples per frame.
    hop_length:
        Samples advanced between consecutive frames.
    pad_final:
        When True, a trailing partial frame is zero-padded to full length;
        when False, trailing samples that do not fill a frame are dropped.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_frames, frame_length)``.  Frames are a
        read-only strided view over the input (zero-copy except when
        ``pad_final`` forces trailing zeros); copy before mutating.
    """
    samples = ensure_1d(signal)
    if frame_length <= 0:
        raise ConfigurationError(
            f"frame_length must be > 0, got {frame_length}"
        )
    if hop_length <= 0:
        raise ConfigurationError(f"hop_length must be > 0, got {hop_length}")
    if samples.size < frame_length:
        if not pad_final:
            raise SignalError(
                f"signal of {samples.size} samples is shorter than one "
                f"frame ({frame_length} samples)"
            )
        padded = np.zeros(frame_length)
        padded[: samples.size] = samples
        return padded[np.newaxis, :]

    if pad_final:
        n_frames = 1 + int(np.ceil((samples.size - frame_length) / hop_length))
        needed = (n_frames - 1) * hop_length + frame_length
        if needed > samples.size:
            samples = np.concatenate(
                [samples, np.zeros(needed - samples.size)]
            )
    else:
        n_frames = 1 + (samples.size - frame_length) // hop_length

    windows = np.lib.stride_tricks.sliding_window_view(
        samples, frame_length
    )
    return windows[:: hop_length][:n_frames]
