"""Sample-rate conversion: anti-aliased and deliberately aliasing paths.

Commercial wearable accelerometers sample at ~200 Hz with no acoustic
anti-aliasing in the conductive path, so audio content above 100 Hz folds
into the 0–100 Hz band.  :func:`alias_decimate` reproduces that folding
exactly (raw decimation), while :func:`resample_poly_safe` is the clean
path used elsewhere in the library.
"""

from __future__ import annotations

from math import gcd

import numpy as np
from scipy import signal as sp_signal

from repro.errors import ConfigurationError, SignalError
from repro.utils.validation import ensure_1d, ensure_2d, ensure_positive


def alias_decimate(
    signal: np.ndarray,
    input_rate: float,
    output_rate: float,
) -> np.ndarray:
    """Decimate *without* an anti-aliasing filter.

    Content above the output Nyquist folds back, mirroring the ambiguous
    signal conversion the paper identifies as a core challenge of
    cross-domain sensing (§ IV-B).  The input rate must be an integer
    multiple of the output rate.
    """
    samples = ensure_1d(signal)
    ensure_positive(input_rate, "input_rate")
    ensure_positive(output_rate, "output_rate")
    ratio = input_rate / output_rate
    if abs(ratio - round(ratio)) > 1e-9:
        raise ConfigurationError(
            f"input_rate ({input_rate}) must be an integer multiple of "
            f"output_rate ({output_rate})"
        )
    step = int(round(ratio))
    if step < 1:
        raise ConfigurationError(
            "output_rate must not exceed input_rate for decimation"
        )
    return samples[::step].copy()


def alias_decimate_batch(
    signals: np.ndarray,
    input_rate: float,
    output_rate: float,
) -> np.ndarray:
    """:func:`alias_decimate` over a ``(batch, time)`` stack of signals.

    Row ``i`` of the result is bitwise identical to
    ``alias_decimate(signals[i], ...)`` — strided selection touches the
    same samples in the same order.
    """
    samples = ensure_2d(signals, "signals")
    ensure_positive(input_rate, "input_rate")
    ensure_positive(output_rate, "output_rate")
    ratio = input_rate / output_rate
    if abs(ratio - round(ratio)) > 1e-9:
        raise ConfigurationError(
            f"input_rate ({input_rate}) must be an integer multiple of "
            f"output_rate ({output_rate})"
        )
    step = int(round(ratio))
    if step < 1:
        raise ConfigurationError(
            "output_rate must not exceed input_rate for decimation"
        )
    return np.ascontiguousarray(samples[:, ::step])


def resample_poly_safe(
    signal: np.ndarray,
    input_rate: float,
    output_rate: float,
) -> np.ndarray:
    """Anti-aliased polyphase resampling between arbitrary rational rates."""
    samples = ensure_1d(signal)
    ensure_positive(input_rate, "input_rate")
    ensure_positive(output_rate, "output_rate")
    if samples.size < 2:
        raise SignalError("signal must have at least 2 samples to resample")
    up = int(round(output_rate))
    down = int(round(input_rate))
    if abs(output_rate - up) > 1e-6 or abs(input_rate - down) > 1e-6:
        # Fall back to a common scaled integer pair for non-integer rates.
        up = int(round(output_rate * 1000))
        down = int(round(input_rate * 1000))
    divisor = gcd(up, down)
    up //= divisor
    down //= divisor
    return sp_signal.resample_poly(samples, up, down)


def folded_frequency(frequency_hz: float, sample_rate: float) -> float:
    """Frequency (Hz) to which ``frequency_hz`` aliases at ``sample_rate``.

    Implements the textbook folding rule: the observed frequency is the
    distance from ``frequency_hz`` to the nearest integer multiple of the
    sampling rate, which always lies within [0, sample_rate / 2].
    """
    ensure_positive(sample_rate, "sample_rate")
    frequency_hz = abs(float(frequency_hz))
    remainder = frequency_hz % sample_rate
    return min(remainder, sample_rate - remainder)
