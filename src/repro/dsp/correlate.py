"""Cross-correlation alignment and 2-D Pearson correlation.

Two correlation tools drive the defense:

* :func:`cross_correlation_delay` — Eq. (5) of the paper: estimate the
  residual WiFi-synchronization delay between the VA's and wearable's
  microphone recordings and trim it away.
* :func:`correlation_2d` — Eq. (6): the 2-D Pearson correlation between
  two normalized vibration-domain spectrograms, whose value is thresholded
  to decide "thru-barrier attack" vs "legitimate user".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SignalError
from repro.utils.validation import ensure_1d, ensure_2d


def normalized_cross_correlation(
    reference: np.ndarray,
    other: np.ndarray,
    max_lag: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalized cross-correlation over lags in ``[-max_lag, max_lag]``.

    Returns ``(lags, values)`` where
    ``values[k] = sum_n reference(n + lags[k]) * other(n)``, normalized
    by the geometric mean of the two signals' energies.  Computed with
    one FFT convolution (O(N log N)) rather than a per-lag loop —
    synchronization runs on every detection, so this is a hot path.
    """
    from scipy.signal import fftconvolve

    ref = ensure_1d(reference, "reference")
    sig = ensure_1d(other, "other")
    if ref.size == 0:
        raise SignalError(
            "reference must be non-empty for cross-correlation"
        )
    if sig.size == 0:
        raise SignalError("other must be non-empty for cross-correlation")
    if max_lag < 0:
        raise SignalError(f"max_lag must be >= 0, got {max_lag}")
    max_lag = min(max_lag, ref.size - 1, sig.size - 1)
    lags = np.arange(-max_lag, max_lag + 1)
    # full convolution of ref with time-reversed sig gives every lag's
    # dot product: conv[k + sig.size - 1] = c[k] where
    # c[k] = sum_j ref[j + k] sig[j].
    convolution = fftconvolve(ref, sig[::-1], mode="full")
    values = convolution[lags + (sig.size - 1)]
    denominator = (
        np.sqrt(float(np.dot(ref, ref)) * float(np.dot(sig, sig)))
        + 1e-12
    )
    return lags, values / denominator


def cross_correlation_delay(
    va_signal: np.ndarray,
    wearable_signal: np.ndarray,
    max_lag: int,
) -> int:
    """Estimate the sample offset between the two recordings (Eq. (5)).

    Returns the lag ``k`` maximizing ``sum_n va(n + k) * wearable(n)``.
    Positive ``k`` means the wearable's content *leads* (the wearable
    started recording after the command onset seen by the VA, so its
    array is missing head samples): aligning requires trimming the first
    ``k`` samples of the VA recording.  Negative ``k`` means the
    wearable's array has extra head content to trim.
    """
    va = ensure_1d(va_signal, "va_signal")
    wearable = ensure_1d(wearable_signal, "wearable_signal")
    if va.size == 0:
        raise SignalError("va_signal must be non-empty to estimate delay")
    if wearable.size == 0:
        raise SignalError(
            "wearable_signal must be non-empty to estimate delay"
        )
    lags, values = normalized_cross_correlation(va, wearable, max_lag)
    return int(lags[int(np.argmax(values))])


def align_by_cross_correlation(
    va_signal: np.ndarray,
    wearable_signal: np.ndarray,
    max_lag: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Trim both recordings so they start at the same voice-command onset.

    Returns ``(va_aligned, wearable_aligned, estimated_delay)`` where both
    outputs have equal length (see :func:`cross_correlation_delay` for the
    delay sign convention).
    """
    va = ensure_1d(va_signal, "va_signal")
    wearable = ensure_1d(wearable_signal, "wearable_signal")
    delay = cross_correlation_delay(va, wearable, max_lag)
    if delay >= 0:
        va_aligned = va[delay:]
        wearable_aligned = wearable
    else:
        wearable_aligned = wearable[-delay:]
        va_aligned = va
    length = min(va_aligned.size, wearable_aligned.size)
    if length == 0:
        raise SignalError("alignment left no overlapping samples")
    return va_aligned[:length].copy(), wearable_aligned[:length].copy(), delay


def correlation_2d(matrix_a: np.ndarray, matrix_b: np.ndarray) -> float:
    """2-D Pearson correlation coefficient between two equal-shape matrices.

    Implements Eq. (6).  Matrices of unequal shape are center-cropped to
    the common overlap first (recordings of the same command can differ by
    a frame after alignment).  Returns a value in [-1, 1]; degenerate
    (constant) inputs yield 0.
    """
    a = ensure_2d(matrix_a, "matrix_a")
    b = ensure_2d(matrix_b, "matrix_b")
    rows = min(a.shape[0], b.shape[0])
    cols = min(a.shape[1], b.shape[1])
    if rows == 0 or cols == 0:
        raise SignalError("matrices have no overlapping region")
    a = a[:rows, :cols]
    b = b[:rows, :cols]
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    numerator = float(np.sum(a_centered * b_centered))
    denominator = float(
        np.sqrt(np.sum(a_centered**2) * np.sum(b_centered**2))
    )
    if denominator <= 1e-15:
        return 0.0
    return numerator / denominator
