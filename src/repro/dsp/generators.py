"""Deterministic and stochastic test-signal generators.

Includes the linear chirp used to characterize the accelerometer response
(paper Fig. 7) and noise sources for ambient rooms and sensor models.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ensure_positive


def _n_samples(duration_s: float, sample_rate: float) -> int:
    ensure_positive(duration_s, "duration_s")
    ensure_positive(sample_rate, "sample_rate")
    count = int(round(duration_s * sample_rate))
    if count <= 0:
        raise ConfigurationError(
            f"duration {duration_s}s at {sample_rate}Hz yields no samples"
        )
    return count


def silence(duration_s: float, sample_rate: float) -> np.ndarray:
    """All-zero signal of the requested duration."""
    return np.zeros(_n_samples(duration_s, sample_rate))


def tone(
    frequency_hz: float,
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Pure sinusoid."""
    ensure_positive(frequency_hz, "frequency_hz")
    count = _n_samples(duration_s, sample_rate)
    t = np.arange(count) / sample_rate
    return amplitude * np.sin(2 * np.pi * frequency_hz * t + phase)


def linear_chirp(
    start_hz: float,
    end_hz: float,
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Linear frequency sweep from ``start_hz`` to ``end_hz``.

    The paper probes the smartwatch accelerometer with a 500–2500 Hz chirp
    (Fig. 7); this generator reproduces that stimulus.
    """
    ensure_positive(start_hz, "start_hz")
    ensure_positive(end_hz, "end_hz")
    count = _n_samples(duration_s, sample_rate)
    t = np.arange(count) / sample_rate
    sweep_rate = (end_hz - start_hz) / duration_s
    phase = 2 * np.pi * (start_hz * t + 0.5 * sweep_rate * t**2)
    return amplitude * np.sin(phase)


def white_noise(
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Gaussian white noise with standard deviation ``amplitude``."""
    generator = as_generator(rng)
    count = _n_samples(duration_s, sample_rate)
    return amplitude * generator.standard_normal(count)


def pink_noise(
    duration_s: float,
    sample_rate: float,
    amplitude: float = 1.0,
    rng: SeedLike = None,
) -> np.ndarray:
    """Approximate 1/f (pink) noise via spectral shaping of white noise.

    Room ambient noise is closer to pink than white; the paper's rooms
    (offices, apartment) carry low-frequency HVAC/traffic rumble.
    """
    generator = as_generator(rng)
    count = _n_samples(duration_s, sample_rate)
    white = generator.standard_normal(count)
    spectrum = np.fft.rfft(white)
    frequencies = np.fft.rfftfreq(count, d=1.0 / sample_rate)
    shaping = np.ones_like(frequencies)
    nonzero = frequencies > 0
    shaping[nonzero] = 1.0 / np.sqrt(frequencies[nonzero])
    shaped = np.fft.irfft(spectrum * shaping, n=count)
    rms = float(np.sqrt(np.mean(shaped**2))) + 1e-12
    return amplitude * shaped / rms
