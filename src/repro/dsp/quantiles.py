"""Quartile spectral statistics for phoneme selection.

Section V-A of the paper computes, per phoneme and per frequency bin, the
*third quartile* FFT magnitude over a population of recorded segments
(Q3: 75 % of recordings have energy at or below this value... the paper
phrases it as "75% of the recorded sounds with energy over this value",
i.e. the 25th percentile from above — the third quartile of the
distribution).  Criteria I/II then compare the max/min of that profile
against a noise-floor threshold alpha.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SignalError
from repro.dsp.spectrum import fft_magnitude
from repro.utils.validation import ensure_1d


def spectral_quartile_profile(
    signals: Sequence[np.ndarray],
    sample_rate: float,
    n_fft: int,
    quantile: float = 0.75,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-frequency quantile of FFT magnitudes over many recordings.

    Parameters
    ----------
    signals:
        Population of recordings of the same phoneme.
    sample_rate:
        Sampling rate shared by all recordings.
    n_fft:
        FFT length; recordings are truncated/zero-padded so all spectra
        share a frequency axis.
    quantile:
        Which quantile of the per-bin magnitude distribution to return;
        0.75 gives the paper's third quartile.

    Returns
    -------
    (frequencies, profile):
        ``profile[k]`` is the requested quantile of the magnitude at
        ``frequencies[k]`` across all recordings.
    """
    if not signals:
        raise SignalError("signals must be a non-empty sequence")
    if not 0.0 < quantile < 1.0:
        raise ConfigurationError(
            f"quantile must lie in (0, 1), got {quantile}"
        )
    magnitudes = []
    frequencies = None
    for signal in signals:
        samples = ensure_1d(signal)
        if samples.size > n_fft:
            samples = samples[:n_fft]
        frequencies, magnitude = fft_magnitude(
            samples, sample_rate, n_fft=n_fft
        )
        magnitudes.append(magnitude)
    stacked = np.vstack(magnitudes)
    profile = np.quantile(stacked, quantile, axis=0)
    return frequencies, profile
