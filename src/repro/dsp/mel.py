"""Mel filterbanks and Mel-frequency cepstral coefficients.

The phoneme-segmentation front end (paper § V-B) computes 14th-order MFCCs
over 40 mel filterbank channels restricted to 0–900 Hz, on 25 ms frames
hopped by 10 ms.  Those are the defaults here.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.dsp.windows import frame_signal, get_window
from repro.utils.validation import ensure_1d, ensure_positive


def hz_to_mel(frequency_hz: np.ndarray) -> np.ndarray:
    """Convert Hz to mel (O'Shaughnessy formula, as in HTK)."""
    frequency_hz = np.asarray(frequency_hz, dtype=np.float64)
    return 2595.0 * np.log10(1.0 + frequency_hz / 700.0)


def mel_to_hz(mel: np.ndarray) -> np.ndarray:
    """Convert mel to Hz (inverse of :func:`hz_to_mel`)."""
    mel = np.asarray(mel, dtype=np.float64)
    return 700.0 * (10.0 ** (mel / 2595.0) - 1.0)


@lru_cache(maxsize=32)
def _cached_filterbank(
    n_filters: int,
    n_fft: int,
    sample_rate: float,
    low_hz: float,
    high_hz: float,
) -> np.ndarray:
    """Build (and cache) one filterbank; result is marked read-only."""
    mel_points = np.linspace(
        hz_to_mel(np.array(low_hz)),
        hz_to_mel(np.array(high_hz)),
        n_filters + 2,
    )
    hz_points = mel_to_hz(mel_points)
    bin_freqs = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate)

    # All n_filters triangles at once: filter i rises over
    # (left_i, center_i) and falls over (center_i, right_i).
    left = hz_points[:-2, np.newaxis]
    center = hz_points[1:-1, np.newaxis]
    right = hz_points[2:, np.newaxis]
    rising = (bin_freqs - left) / np.maximum(center - left, 1e-12)
    falling = (right - bin_freqs) / np.maximum(right - center, 1e-12)
    bank = np.clip(np.minimum(rising, falling), 0.0, None)
    bank.setflags(write=False)
    return bank


def mel_filterbank(
    n_filters: int,
    n_fft: int,
    sample_rate: float,
    low_hz: float = 0.0,
    high_hz: Optional[float] = None,
) -> np.ndarray:
    """Triangular mel filterbank of shape ``(n_filters, n_fft // 2 + 1)``.

    Filters partition [``low_hz``, ``high_hz``] on the mel scale with
    triangular responses whose peaks are unit gain.

    Banks are memoized per parameter tuple and returned as read-only
    arrays; copy before mutating.
    """
    if n_filters <= 0:
        raise ConfigurationError(f"n_filters must be > 0, got {n_filters}")
    if n_fft <= 0:
        raise ConfigurationError(f"n_fft must be > 0, got {n_fft}")
    ensure_positive(sample_rate, "sample_rate")
    nyquist = sample_rate / 2.0
    if high_hz is None:
        high_hz = nyquist
    if not (0 <= low_hz < high_hz <= nyquist):
        raise ConfigurationError(
            f"need 0 <= low_hz < high_hz <= Nyquist ({nyquist}); "
            f"got low_hz={low_hz}, high_hz={high_hz}"
        )
    return _cached_filterbank(
        int(n_filters),
        int(n_fft),
        float(sample_rate),
        float(low_hz),
        float(high_hz),
    )


def _dct_ii_matrix(n_output: int, n_input: int) -> np.ndarray:
    """Orthonormal DCT-II basis, shape ``(n_output, n_input)``."""
    grid = np.arange(n_input)
    basis = np.cos(
        np.pi / n_input * (grid + 0.5)[np.newaxis, :]
        * np.arange(n_output)[:, np.newaxis]
    )
    basis *= np.sqrt(2.0 / n_input)
    basis[0] /= np.sqrt(2.0)
    return basis


def mfcc(
    signal: np.ndarray,
    sample_rate: float,
    n_mfcc: int = 14,
    n_filters: int = 40,
    frame_length_s: float = 0.025,
    hop_length_s: float = 0.010,
    low_hz: float = 0.0,
    high_hz: Optional[float] = 900.0,
    window: str = "hamming",
) -> np.ndarray:
    """Mel-frequency cepstral coefficients per frame.

    Parameters mirror § V-B of the paper: 25 ms frames, 10 ms hop, 40 mel
    channels, 14 cepstral coefficients, filterbank limited to 0–900 Hz so
    the features stay informative for barrier-attenuated sounds.

    Returns an array of shape ``(n_frames, n_mfcc)``.
    """
    samples = ensure_1d(signal)
    ensure_positive(sample_rate, "sample_rate")
    if n_mfcc <= 0 or n_mfcc > n_filters:
        raise ConfigurationError(
            f"n_mfcc must be in [1, n_filters={n_filters}], got {n_mfcc}"
        )
    frame_length = max(int(round(frame_length_s * sample_rate)), 1)
    hop_length = max(int(round(hop_length_s * sample_rate)), 1)

    frames = frame_signal(samples, frame_length, hop_length, pad_final=True)
    tapered = frames * get_window(window, frame_length)[np.newaxis, :]

    n_fft = 1
    while n_fft < frame_length:
        n_fft *= 2
    spectrum = np.fft.rfft(tapered, n=n_fft, axis=1)
    power = spectrum.real**2 + spectrum.imag**2

    bank = mel_filterbank(
        n_filters, n_fft, sample_rate, low_hz=low_hz, high_hz=high_hz
    )
    mel_energy = power @ bank.T
    log_energy = np.log(mel_energy + 1e-10)
    basis = _dct_ii_matrix(n_mfcc, n_filters)
    return log_energy @ basis.T
