"""Participant pool and room assignments (paper § VII-A).

Twenty participants: ten run the experiments in Rooms A and B, five in
Room C, and five in Room D.  Each participant is a synthetic speaker;
the pool also provides the take-turns victim/adversary pairing used for
the attack evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.phonemes.speaker import SpeakerProfile, generate_speakers
from repro.utils.rng import SeedLike, as_generator, child_rng


@dataclass
class ParticipantPool:
    """The evaluation's participant pool with room assignments.

    Parameters
    ----------
    n_participants:
        Pool size (paper: 20; scaled-down campaigns may use fewer).
    seed:
        Seed for speaker generation.
    """

    n_participants: int = 20
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.n_participants < 2:
            raise ConfigurationError(
                "need at least 2 participants (victim + adversary)"
            )
        rng = as_generator(self.seed)
        self.speakers: Tuple[SpeakerProfile, ...] = tuple(
            generate_speakers(
                self.n_participants, rng=child_rng(rng, "speakers")
            )
        )

    def room_assignments(
        self, room_names: Sequence[str] = ("Room A", "Room B", "Room C",
                                           "Room D"),
    ) -> Dict[str, List[SpeakerProfile]]:
        """Assign participants to rooms following the paper's split.

        With a 20-speaker pool: the first ten do Rooms A and B, the next
        five Room C, the last five Room D.  Smaller pools split
        proportionally (at least one speaker per room).
        """
        speakers = list(self.speakers)
        n = len(speakers)
        n_ab = max(n // 2, 1)
        n_c = max((n - n_ab) // 2, 1)
        group_ab = speakers[:n_ab]
        group_c = speakers[n_ab : n_ab + n_c]
        group_d = speakers[n_ab + n_c :] or speakers[-1:]
        mapping = {
            "Room A": group_ab,
            "Room B": group_ab,
            "Room C": group_c,
            "Room D": group_d,
        }
        return {name: mapping[name] for name in room_names}

    def adversaries_for(
        self, victim: SpeakerProfile
    ) -> List[SpeakerProfile]:
        """Everyone except the victim (the take-turns protocol)."""
        return [
            speaker for speaker in self.speakers
            if speaker.speaker_id != victim.speaker_id
        ]
