"""Evaluation harness: metrics, rooms, participants, campaigns.

Reproduces the paper's evaluation methodology (§ VII-A): score
distributions from legitimate commands and the four attacks, ROC/AUC/EER
metrics, the four room environments, and the factor sweeps of Fig. 11.
"""

from repro.eval.metrics import (
    DetectionMetrics,
    auc_from_scores,
    eer_from_scores,
    evaluate_scores,
    roc_curve,
)
from repro.eval.rooms import ROOM_A, ROOM_B, ROOM_C, ROOM_D, ROOMS
from repro.eval.participants import ParticipantPool
from repro.eval.campaign import (
    CampaignConfig,
    CampaignUnit,
    DetectorBank,
    ScoreSet,
    build_campaign_units,
    collect_scores,
    score_campaign_unit,
)
from repro.eval.experiment import (
    ExperimentResult,
    run_attack_experiment,
    run_factor_sweep,
)
from repro.eval.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignStats,
    UnitStats,
)
from repro.eval.reporting import (
    format_roc_summary,
    format_runner_stats,
    format_series,
    format_table,
    sparkline,
)
from repro.eval.stats import (
    BootstrapEstimate,
    bootstrap_auc,
    bootstrap_eer,
    bootstrap_metric,
)

__all__ = [
    "DetectionMetrics",
    "auc_from_scores",
    "eer_from_scores",
    "evaluate_scores",
    "roc_curve",
    "ROOM_A",
    "ROOM_B",
    "ROOM_C",
    "ROOM_D",
    "ROOMS",
    "ParticipantPool",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "CampaignStats",
    "CampaignUnit",
    "DetectorBank",
    "ScoreSet",
    "UnitStats",
    "build_campaign_units",
    "collect_scores",
    "score_campaign_unit",
    "ExperimentResult",
    "run_attack_experiment",
    "run_factor_sweep",
    "format_roc_summary",
    "format_runner_stats",
    "format_series",
    "format_table",
    "sparkline",
    "BootstrapEstimate",
    "bootstrap_auc",
    "bootstrap_eer",
    "bootstrap_metric",
]
