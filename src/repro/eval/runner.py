"""Parallel campaign execution engine.

Every headline experiment funnels through the campaign's room × victim
units, and every unit derives its own seed from ``(config.seed, room,
victim)`` — so units can be scored in any order, in any process, and
still reproduce the serial run bit for bit.  :class:`CampaignRunner`
exploits that: it shards units across a :class:`repro.runtime.Runtime`
(process pool, thread pool, or inline), folds the per-unit
:class:`ScoreSet`s back together in deterministic unit order with
:meth:`ScoreSet.merge`, and records per-unit wall-clock, throughput,
and per-stage pipeline time from the units' :class:`StageEvent`
streams.

Determinism contract
--------------------
For a fixed ``CampaignConfig.seed``, participant pool, rooms, and attack
kinds, ``CampaignRunner(n_workers=k).run(...)`` returns an identical
:class:`ScoreSet` for every ``k`` **and every executor kind** — the
same detectors, the same score lists in the same order.  The regression
suite (``tests/test_eval_runner.py``, ``tests/test_runtime.py``) pins
this.

Fault tolerance
---------------
If the pool cannot spawn (restricted environments, unpicklable detector
banks) or workers die mid-campaign, the runtime's fallback ladder
finishes the remaining units inline in-process; results are unchanged
because units are order-independent.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.acoustics.room import RoomConfig
from repro.attacks.base import AttackKind
from repro.errors import ConfigurationError
from repro.eval.campaign import (
    CampaignConfig,
    CampaignUnit,
    DetectorBank,
    ScoreSet,
    build_campaign_units,
    score_campaign_unit,
)
from repro.eval.participants import ParticipantPool
from repro.phonemes.corpus import SyntheticCorpus
from repro.runtime import (
    INLINE,
    PROCESS,
    THREAD,
    FallbackPolicy,
    Runtime,
    ShmTransport,
    capture_stage_events,
    validate_kind,
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class UnitStats:
    """Wall-clock accounting for one scored campaign unit.

    ``stage_s`` holds the unit's summed per-stage pipeline seconds
    (from the :class:`~repro.runtime.StageEvent` stream its scoring
    emitted), keyed by :data:`repro.core.pipeline.PIPELINE_STAGES`
    names.
    """

    label: str
    wall_s: float
    n_samples: int
    stage_s: Mapping[str, float] = field(default_factory=dict)

    @property
    def samples_per_s(self) -> float:
        """Scored recordings per second inside this unit."""
        if self.wall_s <= 0:
            return float("inf")
        return self.n_samples / self.wall_s


@dataclass
class CampaignStats:
    """Aggregate timing of one campaign run.

    ``wall_s`` is the caller-observed (outer) wall clock; the per-unit
    walls in ``units`` are measured inside the executing process, so in
    parallel runs their sum exceeds ``wall_s`` — the ratio is the
    realized speedup.
    """

    n_workers: int
    mode: str
    wall_s: float = 0.0
    units: List[UnitStats] = field(default_factory=list)

    @property
    def n_units(self) -> int:
        """Number of campaign units executed."""
        return len(self.units)

    @property
    def n_samples(self) -> int:
        """Total recordings scored across all units."""
        return sum(unit.n_samples for unit in self.units)

    @property
    def samples_per_s(self) -> float:
        """End-to-end throughput in scored recordings per second."""
        if self.wall_s <= 0:
            return float("inf")
        return self.n_samples / self.wall_s

    @property
    def unit_wall_s(self) -> float:
        """Summed in-process unit time (serial-equivalent work)."""
        return sum(unit.wall_s for unit in self.units)

    @property
    def stage_totals(self) -> Dict[str, float]:
        """Summed per-stage pipeline seconds across all units."""
        totals: Dict[str, float] = {}
        for unit in self.units:
            for stage, seconds in unit.stage_s.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals


@dataclass(frozen=True)
class CampaignResult:
    """Scores plus execution statistics of one campaign run."""

    scores: ScoreSet
    stats: CampaignStats


# ----------------------------------------------------------------------
# Worker plumbing.  The runtime initializer parks the (read-only)
# detector bank and corpus in module globals so they are pickled once
# per worker instead of once per unit, and so each worker's corpus
# utterance cache stays warm across the units it executes.  The inline
# and thread rungs run the same initializer in-process, so one code
# path serves every executor kind.
# ----------------------------------------------------------------------

_WORKER_DETECTORS: Optional[DetectorBank] = None
_WORKER_CORPUS: Optional[SyntheticCorpus] = None


def _init_worker(detectors: DetectorBank, corpus: SyntheticCorpus) -> None:
    global _WORKER_DETECTORS, _WORKER_CORPUS
    _WORKER_DETECTORS = detectors
    _WORKER_CORPUS = corpus


def _score_unit_in_worker(
    unit: CampaignUnit,
) -> Tuple[ScoreSet, float, Dict[str, float]]:
    """Score one unit, returning its scores, wall time, and per-stage
    pipeline seconds (summed over the unit's recordings)."""
    start = time.perf_counter()
    with capture_stage_events() as captured:
        scores = score_campaign_unit(
            unit, _WORKER_DETECTORS, _WORKER_CORPUS
        )
    return (
        scores,
        time.perf_counter() - start,
        captured.stage_totals(),
    )


class CampaignRunner:
    """Executes campaign units on the unified runtime layer.

    Parameters
    ----------
    n_workers:
        ``1`` runs in-process (serial); ``None`` uses one worker per CPU
        core (``os.cpu_count()``); any other value caps the pool size.
        The worker count never exceeds the number of units.
    executor:
        Executor kind for multi-worker runs: ``"process"`` (default,
        falls back inline if the pool cannot spawn or breaks),
        ``"thread"``, or ``"inline"``.  Single-worker runs are always
        inline.

    Examples
    --------
    >>> runner = CampaignRunner(n_workers=1)
    >>> # result = runner.run(rooms, pool, detectors, kinds, config)
    >>> # result.scores, result.stats.samples_per_s
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        executor: str = PROCESS,
    ) -> None:
        if n_workers is not None and int(n_workers) < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1 (or None), got {n_workers}"
            )
        self.n_workers = None if n_workers is None else int(n_workers)
        self.executor = validate_kind(executor)

    def run(
        self,
        rooms: Sequence[RoomConfig],
        pool: ParticipantPool,
        detectors: DetectorBank,
        attack_kinds: Sequence[AttackKind],
        config: CampaignConfig,
        corpus: Optional[SyntheticCorpus] = None,
    ) -> CampaignResult:
        """Run a full campaign and merge the per-unit score sets."""
        corpus = corpus or SyntheticCorpus(
            speakers=pool.speakers, seed=config.seed
        )
        units = build_campaign_units(rooms, pool, attack_kinds, config)
        score_sets, stats = self.run_units(units, detectors, corpus)
        merged = ScoreSet()
        for scores in score_sets:
            merged.merge(scores)
        return CampaignResult(scores=merged, stats=stats)

    def run_units(
        self,
        units: Sequence[CampaignUnit],
        detectors: DetectorBank,
        corpus: SyntheticCorpus,
    ) -> Tuple[List[ScoreSet], CampaignStats]:
        """Score ``units``, returning per-unit results in input order.

        This is the sharding primitive: callers that need results keyed
        by unit (e.g. factor sweeps fanning several configurations into
        one pool) use this instead of :meth:`run`.
        """
        units = list(units)
        workers = self._resolve_workers(len(units))
        kind = INLINE if workers <= 1 else self.executor
        runtime = Runtime(
            kind,
            n_workers=workers,
            fallback=FallbackPolicy(ladder=(PROCESS, INLINE)),
            initializer=_init_worker,
            initargs=(detectors, corpus),
            # Campaign units are tiny specs, but sweeps that fan large
            # payloads (pre-rendered recordings) through run_units ride
            # shared memory automatically; small payloads pass through
            # the encoder untouched.
            transport=ShmTransport(),
        )
        start = time.perf_counter()
        try:
            outputs = runtime.map_units(_score_unit_in_worker, units)
        finally:
            runtime.shutdown()
        score_sets: List[ScoreSet] = []
        unit_stats: List[UnitStats] = []
        for unit, (scores, wall_s, stage_s) in zip(units, outputs):
            score_sets.append(scores)
            unit_stats.append(
                UnitStats(
                    label=unit.label,
                    wall_s=wall_s,
                    n_samples=unit.n_samples,
                    stage_s=stage_s,
                )
            )
        stats = CampaignStats(
            n_workers=workers,
            mode=self._mode_label(workers, runtime),
            wall_s=time.perf_counter() - start,
            units=unit_stats,
        )
        return score_sets, stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _mode_label(workers: int, runtime: Runtime) -> str:
        """Human-readable execution mode, preserving the historical
        vocabulary (``serial`` / ``process-pool`` /
        ``process-pool+serial-fallback``) plus ``thread-pool``."""
        realized = runtime.realized_kind
        if realized == PROCESS:
            return "process-pool"
        if realized == THREAD:
            return "thread-pool"
        if runtime.fell_back:
            return "process-pool+serial-fallback"
        return "serial"

    def _resolve_workers(self, n_units: int) -> int:
        workers = self.n_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, n_units)) if n_units else 1
