"""Parallel campaign execution engine.

Every headline experiment funnels through the campaign's room × victim
units, and every unit derives its own seed from ``(config.seed, room,
victim)`` — so units can be scored in any order, in any process, and
still reproduce the serial run bit for bit.  :class:`CampaignRunner`
exploits that: it shards units across a :class:`ProcessPoolExecutor`
(or runs them serially), folds the per-unit :class:`ScoreSet`s back
together in deterministic unit order with :meth:`ScoreSet.merge`, and
records per-unit wall-clock and throughput.

Determinism contract
--------------------
For a fixed ``CampaignConfig.seed``, participant pool, rooms, and attack
kinds, ``CampaignRunner(n_workers=k).run(...)`` returns an identical
:class:`ScoreSet` for every ``k`` — the same detectors, the same score
lists in the same order.  The regression suite
(``tests/test_eval_runner.py``) pins this.

Fault tolerance
---------------
If the pool cannot spawn (restricted environments, unpicklable detector
banks) or workers die mid-campaign, the runner logs a warning and
finishes the remaining units serially in-process; results are unchanged
because units are order-independent.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.acoustics.room import RoomConfig
from repro.attacks.base import AttackKind
from repro.errors import ConfigurationError
from repro.eval.campaign import (
    CampaignConfig,
    CampaignUnit,
    DetectorBank,
    ScoreSet,
    build_campaign_units,
    score_campaign_unit,
)
from repro.eval.participants import ParticipantPool
from repro.phonemes.corpus import SyntheticCorpus

logger = logging.getLogger(__name__)

#: Errors that indicate the *pool* (not the scoring) failed; the runner
#: falls back to serial execution when it sees one of these.
_POOL_ERRORS = (BrokenExecutor, OSError, pickle.PicklingError)


@dataclass(frozen=True)
class UnitStats:
    """Wall-clock accounting for one scored campaign unit."""

    label: str
    wall_s: float
    n_samples: int

    @property
    def samples_per_s(self) -> float:
        """Scored recordings per second inside this unit."""
        if self.wall_s <= 0:
            return float("inf")
        return self.n_samples / self.wall_s


@dataclass
class CampaignStats:
    """Aggregate timing of one campaign run.

    ``wall_s`` is the caller-observed (outer) wall clock; the per-unit
    walls in ``units`` are measured inside the executing process, so in
    parallel runs their sum exceeds ``wall_s`` — the ratio is the
    realized speedup.
    """

    n_workers: int
    mode: str
    wall_s: float = 0.0
    units: List[UnitStats] = field(default_factory=list)

    @property
    def n_units(self) -> int:
        """Number of campaign units executed."""
        return len(self.units)

    @property
    def n_samples(self) -> int:
        """Total recordings scored across all units."""
        return sum(unit.n_samples for unit in self.units)

    @property
    def samples_per_s(self) -> float:
        """End-to-end throughput in scored recordings per second."""
        if self.wall_s <= 0:
            return float("inf")
        return self.n_samples / self.wall_s

    @property
    def unit_wall_s(self) -> float:
        """Summed in-process unit time (serial-equivalent work)."""
        return sum(unit.wall_s for unit in self.units)


@dataclass(frozen=True)
class CampaignResult:
    """Scores plus execution statistics of one campaign run."""

    scores: ScoreSet
    stats: CampaignStats


# ----------------------------------------------------------------------
# Worker-process plumbing.  The pool initializer parks the (read-only)
# detector bank and corpus in module globals so they are pickled once
# per worker instead of once per unit, and so each worker's corpus
# utterance cache stays warm across the units it executes.
# ----------------------------------------------------------------------

_WORKER_DETECTORS: Optional[DetectorBank] = None
_WORKER_CORPUS: Optional[SyntheticCorpus] = None


def _init_worker(detectors: DetectorBank, corpus: SyntheticCorpus) -> None:
    global _WORKER_DETECTORS, _WORKER_CORPUS
    _WORKER_DETECTORS = detectors
    _WORKER_CORPUS = corpus


def _score_unit_in_worker(
    unit: CampaignUnit,
) -> Tuple[ScoreSet, float]:
    start = time.perf_counter()
    scores = score_campaign_unit(unit, _WORKER_DETECTORS, _WORKER_CORPUS)
    return scores, time.perf_counter() - start


class CampaignRunner:
    """Executes campaign units serially or across a process pool.

    Parameters
    ----------
    n_workers:
        ``1`` runs in-process (serial); ``None`` uses one worker per CPU
        core (``os.cpu_count()``); any other value caps the pool size.
        The worker count never exceeds the number of units.

    Examples
    --------
    >>> runner = CampaignRunner(n_workers=1)
    >>> # result = runner.run(rooms, pool, detectors, kinds, config)
    >>> # result.scores, result.stats.samples_per_s
    """

    def __init__(self, n_workers: Optional[int] = None) -> None:
        if n_workers is not None and int(n_workers) < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1 (or None), got {n_workers}"
            )
        self.n_workers = None if n_workers is None else int(n_workers)

    def run(
        self,
        rooms: Sequence[RoomConfig],
        pool: ParticipantPool,
        detectors: DetectorBank,
        attack_kinds: Sequence[AttackKind],
        config: CampaignConfig,
        corpus: Optional[SyntheticCorpus] = None,
    ) -> CampaignResult:
        """Run a full campaign and merge the per-unit score sets."""
        corpus = corpus or SyntheticCorpus(
            speakers=pool.speakers, seed=config.seed
        )
        units = build_campaign_units(rooms, pool, attack_kinds, config)
        score_sets, stats = self.run_units(units, detectors, corpus)
        merged = ScoreSet()
        for scores in score_sets:
            merged.merge(scores)
        return CampaignResult(scores=merged, stats=stats)

    def run_units(
        self,
        units: Sequence[CampaignUnit],
        detectors: DetectorBank,
        corpus: SyntheticCorpus,
    ) -> Tuple[List[ScoreSet], CampaignStats]:
        """Score ``units``, returning per-unit results in input order.

        This is the sharding primitive: callers that need results keyed
        by unit (e.g. factor sweeps fanning several configurations into
        one pool) use this instead of :meth:`run`.
        """
        workers = self._resolve_workers(len(units))
        start = time.perf_counter()
        if workers <= 1:
            score_sets, unit_stats = self._run_serial(
                units, detectors, corpus
            )
            mode = "serial"
        else:
            score_sets, unit_stats, mode = self._run_pool(
                units, detectors, corpus, workers
            )
        stats = CampaignStats(
            n_workers=workers,
            mode=mode,
            wall_s=time.perf_counter() - start,
            units=unit_stats,
        )
        return score_sets, stats

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_workers(self, n_units: int) -> int:
        workers = self.n_workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, n_units)) if n_units else 1

    @staticmethod
    def _run_serial(
        units: Sequence[CampaignUnit],
        detectors: DetectorBank,
        corpus: SyntheticCorpus,
        skip: int = 0,
    ) -> Tuple[List[ScoreSet], List[UnitStats]]:
        score_sets: List[ScoreSet] = []
        unit_stats: List[UnitStats] = []
        for unit in list(units)[skip:]:
            unit_start = time.perf_counter()
            score_sets.append(
                score_campaign_unit(unit, detectors, corpus)
            )
            unit_stats.append(
                UnitStats(
                    label=unit.label,
                    wall_s=time.perf_counter() - unit_start,
                    n_samples=unit.n_samples,
                )
            )
        return score_sets, unit_stats

    def _run_pool(
        self,
        units: Sequence[CampaignUnit],
        detectors: DetectorBank,
        corpus: SyntheticCorpus,
        workers: int,
    ) -> Tuple[List[ScoreSet], List[UnitStats], str]:
        score_sets: List[ScoreSet] = []
        unit_stats: List[UnitStats] = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(detectors, corpus),
            ) as executor:
                futures = [
                    executor.submit(_score_unit_in_worker, unit)
                    for unit in units
                ]
                # Collect in submission order: completion order varies
                # between runs, merge order must not.
                for unit, future in zip(units, futures):
                    scores, wall_s = future.result()
                    score_sets.append(scores)
                    unit_stats.append(
                        UnitStats(
                            label=unit.label,
                            wall_s=wall_s,
                            n_samples=unit.n_samples,
                        )
                    )
        except _POOL_ERRORS as error:
            done = len(score_sets)
            logger.warning(
                "process pool failed after %d/%d units (%s: %s); "
                "finishing serially",
                done,
                len(units),
                type(error).__name__,
                error,
            )
            tail_scores, tail_stats = self._run_serial(
                units, detectors, corpus, skip=done
            )
            score_sets.extend(tail_scores)
            unit_stats.extend(tail_stats)
            return score_sets, unit_stats, "process-pool+serial-fallback"
        return score_sets, unit_stats, "process-pool"
