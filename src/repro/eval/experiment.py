"""High-level experiments: Fig. 9/10 ROC studies and Fig. 11 sweeps."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackKind
from repro.acoustics.materials import BarrierMaterial
from repro.acoustics.room import RoomConfig
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import ConfigurationError
from repro.eval.campaign import (
    CampaignConfig,
    CampaignUnit,
    DetectorBank,
    ScoreSet,
    build_campaign_units,
)
from repro.eval.metrics import DetectionMetrics, evaluate_scores, roc_curve
from repro.eval.participants import ParticipantPool
from repro.eval.rooms import ROOMS
from repro.eval.runner import CampaignRunner, CampaignStats
from repro.phonemes.corpus import SyntheticCorpus


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics and raw scores of one attack experiment."""

    attack_kind: AttackKind
    metrics: Dict[str, DetectionMetrics]
    scores: ScoreSet
    stats: Optional[CampaignStats] = None

    def roc(self, detector: str) -> Tuple[np.ndarray, np.ndarray]:
        """(FDR, TDR) ROC series of one detector."""
        _, fdr, tdr = roc_curve(
            self.scores.legit[detector],
            self.scores.attacks[self.attack_kind][detector],
        )
        return fdr, tdr


def _default_pool(seed: int, n_participants: int) -> ParticipantPool:
    return ParticipantPool(n_participants=n_participants, seed=seed)


def _make_runner(
    runner: Optional[CampaignRunner], n_workers: Optional[int]
) -> CampaignRunner:
    if runner is not None:
        return runner
    # Experiments stay serial unless a worker count is requested; an
    # explicit ``CampaignRunner()`` opts into one-worker-per-core.
    return CampaignRunner(n_workers=1 if n_workers is None else n_workers)


def run_attack_experiment(
    attack_kind: AttackKind,
    rooms: Optional[Sequence[RoomConfig]] = None,
    segmenter: Optional[PhonemeSegmenter] = None,
    config: Optional[CampaignConfig] = None,
    pool: Optional[ParticipantPool] = None,
    detectors: Optional[DetectorBank] = None,
    n_workers: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
) -> ExperimentResult:
    """One Fig. 9/10-style experiment: ROC of all detectors vs one attack.

    With no arguments this runs a scaled-down campaign across all four
    rooms using oracle segmentation (training-free, like the paper's
    core detector; the BRNN segmenter can be passed in for the full
    online pipeline).  ``n_workers`` (or a pre-built ``runner``) shards
    the campaign's room × victim units across a process pool; results
    are identical for any worker count.
    """
    config = config or CampaignConfig()
    rooms = list(rooms) if rooms is not None else list(ROOMS.values())
    pool = pool or _default_pool(config.seed, n_participants=8)
    detectors = detectors or DetectorBank(segmenter=segmenter)
    runner = _make_runner(runner, n_workers)
    result = runner.run(rooms, pool, detectors, [attack_kind], config)
    scores = result.scores
    metrics = {
        detector: evaluate_scores(
            scores.legit[detector],
            scores.attacks[attack_kind][detector],
        )
        for detector in detectors.detector_names
    }
    return ExperimentResult(
        attack_kind=attack_kind,
        metrics=metrics,
        scores=scores,
        stats=result.stats,
    )


def _sweep_value_setup(
    factor: str,
    value: object,
    base_config: CampaignConfig,
    rooms: Optional[Sequence[RoomConfig]],
) -> Tuple[str, CampaignConfig, List[RoomConfig]]:
    """Resolve one sweep value into (label, config, rooms)."""
    if factor == "attack_spl":
        config = replace(base_config, attack_spl_db=float(value))
        sweep_rooms = (
            list(rooms) if rooms is not None else list(ROOMS.values())
        )
        label = f"{float(value):.0f}dB"
    elif factor == "barrier_material":
        if not isinstance(value, BarrierMaterial):
            raise ConfigurationError(
                "barrier_material sweep expects BarrierMaterial values"
            )
        template = (
            list(rooms)[0] if rooms is not None else ROOMS["Room A"]
        )
        config = base_config
        sweep_rooms = [replace(template, barrier=value)]
        label = value.name
    elif factor == "barrier_to_va":
        config = replace(base_config, barrier_to_va_m=float(value))
        sweep_rooms = (
            list(rooms) if rooms is not None else list(ROOMS.values())
        )
        label = f"{float(value):.0f}m"
    elif factor == "room":
        if not isinstance(value, RoomConfig):
            raise ConfigurationError(
                "room sweep expects RoomConfig values"
            )
        config = base_config
        sweep_rooms = [value]
        label = value.name
    else:
        raise ConfigurationError(
            f"unknown factor {factor!r}; expected attack_spl, "
            "barrier_material, barrier_to_va, or room"
        )
    return label, config, sweep_rooms


def run_factor_sweep(
    factor: str,
    values: Sequence,
    attack_kinds: Sequence[AttackKind],
    base_config: Optional[CampaignConfig] = None,
    rooms: Optional[Sequence[RoomConfig]] = None,
    segmenter: Optional[PhonemeSegmenter] = None,
    pool: Optional[ParticipantPool] = None,
    detectors: Optional[DetectorBank] = None,
    n_workers: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
) -> Dict[object, Dict[AttackKind, Dict[str, DetectionMetrics]]]:
    """Fig. 11-style sweep of one impacting factor.

    Parameters
    ----------
    factor:
        One of ``"attack_spl"`` (Fig. 11a), ``"barrier_material"``
        (11b), ``"barrier_to_va"`` (11c), ``"room"`` (11d).
    values:
        Factor values: SPLs in dB, :class:`BarrierMaterial` objects,
        distances in meters, or :class:`RoomConfig` objects.
    attack_kinds:
        Attacks to evaluate at each factor value.
    n_workers / runner:
        Shard the sweep across a process pool.  The sweep values form a
        second, outer level of fan-out: the room × victim units of
        *every* value are submitted to one pool together, so the pool
        stays saturated even when individual values have few units.

    Returns
    -------
    dict
        ``{value_label: {attack_kind: {detector: metrics}}}``.
    """
    base_config = base_config or CampaignConfig()
    pool = pool or _default_pool(base_config.seed, n_participants=8)
    detectors = detectors or DetectorBank(segmenter=segmenter)
    runner = _make_runner(runner, n_workers)
    corpus = SyntheticCorpus(
        speakers=pool.speakers, seed=base_config.seed
    )

    # Outer fan-out: expand every sweep value into units up front, run
    # them through one pool, then regroup the per-unit results by value.
    labels: List[str] = []
    units_per_value: List[List[CampaignUnit]] = []
    for value in values:
        label, config, sweep_rooms = _sweep_value_setup(
            factor, value, base_config, rooms
        )
        labels.append(label)
        units_per_value.append(
            build_campaign_units(sweep_rooms, pool, attack_kinds, config)
        )
    all_units = [unit for units in units_per_value for unit in units]
    score_sets, _ = runner.run_units(all_units, detectors, corpus)

    results: Dict[object, Dict[AttackKind, Dict[str, DetectionMetrics]]] = {}
    cursor = 0
    for label, units in zip(labels, units_per_value):
        scores = ScoreSet()
        for unit_scores in score_sets[cursor : cursor + len(units)]:
            scores.merge(unit_scores)
        cursor += len(units)
        results[label] = {
            kind: {
                detector: evaluate_scores(
                    scores.legit[detector],
                    scores.attacks[kind][detector],
                )
                for detector in detectors.detector_names
            }
            for kind in attack_kinds
        }
    return results
