"""High-level experiments: Fig. 9/10 ROC studies and Fig. 11 sweeps."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackKind
from repro.acoustics.materials import BarrierMaterial
from repro.acoustics.room import RoomConfig
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import ConfigurationError
from repro.eval.campaign import (
    CampaignConfig,
    DetectorBank,
    ScoreSet,
    collect_scores,
)
from repro.eval.metrics import DetectionMetrics, evaluate_scores, roc_curve
from repro.eval.participants import ParticipantPool
from repro.eval.rooms import ROOMS


@dataclass(frozen=True)
class ExperimentResult:
    """Metrics and raw scores of one attack experiment."""

    attack_kind: AttackKind
    metrics: Dict[str, DetectionMetrics]
    scores: ScoreSet

    def roc(self, detector: str) -> Tuple[np.ndarray, np.ndarray]:
        """(FDR, TDR) ROC series of one detector."""
        _, fdr, tdr = roc_curve(
            self.scores.legit[detector],
            self.scores.attacks[self.attack_kind][detector],
        )
        return fdr, tdr


def _default_pool(seed: int, n_participants: int) -> ParticipantPool:
    return ParticipantPool(n_participants=n_participants, seed=seed)


def run_attack_experiment(
    attack_kind: AttackKind,
    rooms: Optional[Sequence[RoomConfig]] = None,
    segmenter: Optional[PhonemeSegmenter] = None,
    config: Optional[CampaignConfig] = None,
    pool: Optional[ParticipantPool] = None,
    detectors: Optional[DetectorBank] = None,
) -> ExperimentResult:
    """One Fig. 9/10-style experiment: ROC of all detectors vs one attack.

    With no arguments this runs a scaled-down campaign across all four
    rooms using oracle segmentation (training-free, like the paper's
    core detector; the BRNN segmenter can be passed in for the full
    online pipeline).
    """
    config = config or CampaignConfig()
    rooms = list(rooms) if rooms is not None else list(ROOMS.values())
    pool = pool or _default_pool(config.seed, n_participants=8)
    detectors = detectors or DetectorBank(segmenter=segmenter)
    scores = collect_scores(
        rooms, pool, detectors, [attack_kind], config
    )
    metrics = {
        detector: evaluate_scores(
            scores.legit[detector],
            scores.attacks[attack_kind][detector],
        )
        for detector in detectors.detector_names
    }
    return ExperimentResult(
        attack_kind=attack_kind, metrics=metrics, scores=scores
    )


def run_factor_sweep(
    factor: str,
    values: Sequence,
    attack_kinds: Sequence[AttackKind],
    base_config: Optional[CampaignConfig] = None,
    rooms: Optional[Sequence[RoomConfig]] = None,
    segmenter: Optional[PhonemeSegmenter] = None,
    pool: Optional[ParticipantPool] = None,
    detectors: Optional[DetectorBank] = None,
) -> Dict[object, Dict[AttackKind, Dict[str, DetectionMetrics]]]:
    """Fig. 11-style sweep of one impacting factor.

    Parameters
    ----------
    factor:
        One of ``"attack_spl"`` (Fig. 11a), ``"barrier_material"``
        (11b), ``"barrier_to_va"`` (11c), ``"room"`` (11d).
    values:
        Factor values: SPLs in dB, :class:`BarrierMaterial` objects,
        distances in meters, or :class:`RoomConfig` objects.
    attack_kinds:
        Attacks to evaluate at each factor value.

    Returns
    -------
    dict
        ``{value_label: {attack_kind: {detector: metrics}}}``.
    """
    base_config = base_config or CampaignConfig()
    pool = pool or _default_pool(base_config.seed, n_participants=8)
    detectors = detectors or DetectorBank(segmenter=segmenter)
    results: Dict[object, Dict[AttackKind, Dict[str, DetectionMetrics]]] = {}

    for value in values:
        config = base_config
        if factor == "attack_spl":
            config = replace(base_config, attack_spl_db=float(value))
            sweep_rooms = (
                list(rooms) if rooms is not None else list(ROOMS.values())
            )
            label = f"{float(value):.0f}dB"
        elif factor == "barrier_material":
            if not isinstance(value, BarrierMaterial):
                raise ConfigurationError(
                    "barrier_material sweep expects BarrierMaterial values"
                )
            template = (
                list(rooms)[0] if rooms is not None else ROOMS["Room A"]
            )
            sweep_rooms = [replace(template, barrier=value)]
            label = value.name
        elif factor == "barrier_to_va":
            config = replace(
                base_config, barrier_to_va_m=float(value)
            )
            sweep_rooms = (
                list(rooms) if rooms is not None else list(ROOMS.values())
            )
            label = f"{float(value):.0f}m"
        elif factor == "room":
            if not isinstance(value, RoomConfig):
                raise ConfigurationError(
                    "room sweep expects RoomConfig values"
                )
            sweep_rooms = [value]
            label = value.name
        else:
            raise ConfigurationError(
                f"unknown factor {factor!r}; expected attack_spl, "
                "barrier_material, barrier_to_va, or room"
            )

        scores = collect_scores(
            sweep_rooms, pool, detectors, attack_kinds, config
        )
        results[label] = {
            kind: {
                detector: evaluate_scores(
                    scores.legit[detector],
                    scores.attacks[kind][detector],
                )
                for detector in detectors.detector_names
            }
            for kind in attack_kinds
        }
    return results
