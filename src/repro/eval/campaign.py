"""Data-collection campaign: generate recordings, score them (§ VII-A).

The campaign mirrors the paper's protocol: in each room, every assigned
participant takes a turn as the legitimate user (speaking commands at
several distances and natural volumes) and as the victim of attacks
launched behind the room's barrier at configurable SPLs, with the
remaining participants serving as adversaries.  Every sample is scored
by a bank of detectors (the full system plus the two baselines), and the
resulting score sets feed the ROC/AUC/EER metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import AttackKind
from repro.attacks.hidden_voice import HiddenVoiceAttack
from repro.attacks.random_attack import RandomAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.attacks.synthesis import VoiceSynthesisAttack
from repro.acoustics.room import RoomConfig
from repro.core.baselines import (
    AudioDomainBaseline,
    VibrationBaselineNoSelection,
)
from repro.core.pipeline import DefensePipeline
from repro.core.segmentation import PhonemeSegmenter
from repro.errors import ConfigurationError
from repro.eval.participants import ParticipantPool
from repro.phonemes.commands import VA_COMMANDS, phonemize
from repro.phonemes.corpus import SyntheticCorpus, Utterance
from repro.phonemes.speaker import SpeakerProfile
from repro.utils.rng import (
    SeedLike,
    as_generator,
    child_rng,
    child_seed,
    derive_seed,
)

#: Detector keys used throughout the evaluation.
FULL_SYSTEM = "full_system"
VIBRATION_BASELINE = "vibration_baseline"
AUDIO_BASELINE = "audio_baseline"


@dataclass
class CampaignConfig:
    """Size and condition parameters of a campaign run.

    The defaults are scaled down from the paper's five-month campaign to
    laptop-friendly sizes; benchmarks scale them up via parameters.
    """

    n_commands_per_participant: int = 4
    n_attacks_per_kind: int = 4
    user_spl_range: Tuple[float, float] = (65.0, 75.0)
    user_distances_m: Tuple[float, ...] = (1.0, 2.0, 3.0)
    attack_spl_db: float = 75.0
    barrier_to_va_m: float = 2.0
    barrier_to_wearable_m: float = 2.0
    use_oracle_segmentation: bool = True
    seed: int = 0
    #: Name of a registered :class:`repro.scenarios.ScenarioSpec`.  When
    #: set, every campaign unit builds its :class:`AttackScenario`
    #: through the spec (material override + custom injection channel).
    #: A *name*, not a spec object, so units stay picklable across the
    #: process pool — workers re-resolve it from the registry on import.
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_commands_per_participant <= 0:
            raise ConfigurationError(
                "n_commands_per_participant must be > 0"
            )
        if self.n_attacks_per_kind <= 0:
            raise ConfigurationError("n_attacks_per_kind must be > 0")
        if not self.user_distances_m:
            raise ConfigurationError("user_distances_m must be non-empty")
        if self.scenario is not None:
            from repro.scenarios import get_scenario

            get_scenario(self.scenario)  # raises with the known list


class DetectorBank:
    """The full system plus baselines, scored on the same recordings."""

    def __init__(
        self,
        segmenter: Optional[PhonemeSegmenter],
        pipeline: Optional[DefensePipeline] = None,
        vibration_baseline: Optional[VibrationBaselineNoSelection] = None,
        audio_baseline: Optional[AudioDomainBaseline] = None,
        include_baselines: bool = True,
    ) -> None:
        self.pipeline = pipeline or DefensePipeline(segmenter=segmenter)
        self.include_baselines = include_baselines
        self.vibration_baseline = (
            vibration_baseline or VibrationBaselineNoSelection()
            if include_baselines
            else None
        )
        self.audio_baseline = (
            audio_baseline or AudioDomainBaseline()
            if include_baselines
            else None
        )

    @property
    def detector_names(self) -> List[str]:
        """Keys under which scores are reported."""
        names = [FULL_SYSTEM]
        if self.include_baselines:
            names += [VIBRATION_BASELINE, AUDIO_BASELINE]
        return names

    def score_all(
        self,
        va_recording: np.ndarray,
        wearable_recording: np.ndarray,
        utterance: Optional[Utterance],
        use_oracle: bool,
        rng: SeedLike,
    ) -> Dict[str, float]:
        """Score one recording pair with every detector in the bank."""
        generator = as_generator(rng)
        oracle = utterance if use_oracle else None
        scores = {
            FULL_SYSTEM: self.pipeline.score(
                va_recording,
                wearable_recording,
                rng=child_rng(generator, "full"),
                oracle_utterance=oracle,
            )
        }
        if self.include_baselines:
            scores[VIBRATION_BASELINE] = self.vibration_baseline.score(
                va_recording,
                wearable_recording,
                rng=child_rng(generator, "vib"),
            )
            scores[AUDIO_BASELINE] = self.audio_baseline.score(
                va_recording, wearable_recording
            )
        return scores


@dataclass
class ScoreSet:
    """Scores collected by a campaign, split by detector and attack."""

    legit: Dict[str, List[float]] = field(default_factory=dict)
    attacks: Dict[AttackKind, Dict[str, List[float]]] = field(
        default_factory=dict
    )

    def add_legit(self, scores: Dict[str, float]) -> None:
        """Record one legitimate sample's scores."""
        for detector, value in scores.items():
            self.legit.setdefault(detector, []).append(value)

    def add_attack(
        self, kind: AttackKind, scores: Dict[str, float]
    ) -> None:
        """Record one attack sample's scores."""
        bucket = self.attacks.setdefault(kind, {})
        for detector, value in scores.items():
            bucket.setdefault(detector, []).append(value)

    def merge(self, other: "ScoreSet") -> None:
        """Fold another score set into this one."""
        for detector, values in other.legit.items():
            self.legit.setdefault(detector, []).extend(values)
        for kind, buckets in other.attacks.items():
            target = self.attacks.setdefault(kind, {})
            for detector, values in buckets.items():
                target.setdefault(detector, []).extend(values)


def _make_attack_generators(
    corpus: SyntheticCorpus,
    victim: SpeakerProfile,
    adversary: SpeakerProfile,
    kinds: Sequence[AttackKind],
    rng: np.random.Generator,
) -> Dict[AttackKind, object]:
    generators: Dict[AttackKind, object] = {}
    for kind in kinds:
        if kind is AttackKind.RANDOM:
            generators[kind] = RandomAttack(corpus, adversary)
        elif kind is AttackKind.REPLAY:
            generators[kind] = ReplayAttack(corpus, victim)
        elif kind is AttackKind.SYNTHESIS:
            generators[kind] = VoiceSynthesisAttack(
                corpus, victim, rng=child_rng(rng, "tts")
            )
        elif kind is AttackKind.HIDDEN_VOICE:
            generators[kind] = HiddenVoiceAttack(corpus)
        else:  # pragma: no cover - future kinds
            raise ConfigurationError(f"unsupported attack kind {kind}")
    return generators


@dataclass(frozen=True)
class CampaignUnit:
    """One independently-seeded room × victim cell of a campaign.

    Units are the sharding granularity of the evaluation: every unit
    derives its own seed from ``(config.seed, room, victim)``, so units
    can be scored in any order — or in parallel worker processes — and
    still produce exactly the scores of a serial run.
    """

    room: RoomConfig
    victim: SpeakerProfile
    adversary: SpeakerProfile
    attack_kinds: Tuple[AttackKind, ...]
    config: CampaignConfig
    seed: int

    @property
    def n_samples(self) -> int:
        """Number of scored recordings this unit produces."""
        return self.config.n_commands_per_participant + (
            self.config.n_attacks_per_kind * len(self.attack_kinds)
        )

    @property
    def label(self) -> str:
        """Short human-readable unit identifier."""
        return f"{self.room.name}/{self.victim.speaker_id}"


def build_campaign_units(
    rooms: Sequence[RoomConfig],
    pool: ParticipantPool,
    attack_kinds: Sequence[AttackKind],
    config: CampaignConfig,
) -> List[CampaignUnit]:
    """Expand a campaign into its independently-executable units.

    For each room, each assigned participant takes a turn as victim with
    the next participant in the pool as the adversary (the paper's
    take-turns protocol); the unit order is deterministic and matches
    the serial iteration order of :func:`collect_scores`.
    """
    units: List[CampaignUnit] = []
    assignments = pool.room_assignments([room.name for room in rooms])
    for room in rooms:
        for victim_index, victim in enumerate(assignments[room.name]):
            adversaries = pool.adversaries_for(victim)
            adversary = adversaries[victim_index % len(adversaries)]
            units.append(
                CampaignUnit(
                    room=room,
                    victim=victim,
                    adversary=adversary,
                    attack_kinds=tuple(attack_kinds),
                    config=config,
                    seed=derive_seed(
                        config.seed, room.name, victim.speaker_id
                    ),
                )
            )
    return units


def score_campaign_unit(
    unit: CampaignUnit,
    detectors: DetectorBank,
    corpus: SyntheticCorpus,
) -> ScoreSet:
    """Score one room × victim cell; the campaign's pure unit of work.

    The legitimate and attack passes draw from *separate* generators
    derived from the unit seed, so changing the number of legitimate
    samples can never shift the attack scores (and vice versa).
    """
    if unit.config.scenario is not None:
        from repro.scenarios import get_scenario

        scenario = get_scenario(unit.config.scenario).build_attack_scenario(
            unit.room,
            barrier_to_va_m=unit.config.barrier_to_va_m,
            barrier_to_wearable_m=unit.config.barrier_to_wearable_m,
        )
    else:
        scenario = AttackScenario(
            room_config=unit.room,
            barrier_to_va_m=unit.config.barrier_to_va_m,
            barrier_to_wearable_m=unit.config.barrier_to_wearable_m,
        )
    scores = ScoreSet()
    legit_rng = np.random.default_rng(derive_seed(unit.seed, "legit"))
    attack_rng = np.random.default_rng(derive_seed(unit.seed, "attacks"))
    _score_legitimate(
        scores, scenario, corpus, unit.victim, detectors, unit.config,
        legit_rng,
    )
    _score_attacks(
        scores,
        scenario,
        corpus,
        unit.victim,
        unit.adversary,
        unit.attack_kinds,
        detectors,
        unit.config,
        attack_rng,
    )
    return scores


def collect_scores(
    rooms: Sequence[RoomConfig],
    pool: ParticipantPool,
    detectors: DetectorBank,
    attack_kinds: Sequence[AttackKind],
    config: CampaignConfig,
    corpus: Optional[SyntheticCorpus] = None,
    n_workers: Optional[int] = 1,
) -> ScoreSet:
    """Run a campaign and return every detector's score distributions.

    For each room, each assigned participant speaks
    ``n_commands_per_participant`` commands (legitimate samples) and is
    attacked ``n_attacks_per_kind`` times per attack kind, with the next
    participant in the pool as the adversary.

    ``n_workers`` shards the room × victim units across a process pool
    (``None`` = one worker per CPU core, ``1`` = serial); because every
    unit is independently seeded, the returned scores are identical for
    any worker count.  See :class:`repro.eval.runner.CampaignRunner` for
    the engine and per-unit timing.
    """
    from repro.eval.runner import CampaignRunner

    runner = CampaignRunner(n_workers=n_workers)
    return runner.run(
        rooms, pool, detectors, attack_kinds, config, corpus=corpus
    ).scores


def _score_legitimate(
    scores: ScoreSet,
    scenario: AttackScenario,
    corpus: SyntheticCorpus,
    victim: SpeakerProfile,
    detectors: DetectorBank,
    config: CampaignConfig,
    rng: np.random.Generator,
) -> None:
    for index in range(config.n_commands_per_participant):
        command = VA_COMMANDS[
            int(rng.integers(0, len(VA_COMMANDS)))
        ]
        utterance = corpus.utterance(
            phonemize(command),
            speaker=victim,
            text=command,
            # Integer seed (not a Generator) so the corpus can memoize.
            rng=child_seed(rng, f"legit-utt-{index}"),
        )
        distance = config.user_distances_m[
            index % len(config.user_distances_m)
        ]
        spl = float(rng.uniform(*config.user_spl_range))
        va_rec, wearable_rec = scenario.legitimate_recordings(
            utterance,
            spl_db=spl,
            rng=child_rng(rng, f"legit-rec-{index}"),
            # Per-call distance: mutating the shared scenario here leaked
            # the last legitimate distance into later passes.
            user_to_va_m=distance,
        )
        scores.add_legit(
            detectors.score_all(
                va_rec,
                wearable_rec,
                utterance,
                config.use_oracle_segmentation,
                rng=child_rng(rng, f"legit-score-{index}"),
            )
        )


def _score_attacks(
    scores: ScoreSet,
    scenario: AttackScenario,
    corpus: SyntheticCorpus,
    victim: SpeakerProfile,
    adversary: SpeakerProfile,
    attack_kinds: Sequence[AttackKind],
    detectors: DetectorBank,
    config: CampaignConfig,
    rng: np.random.Generator,
) -> None:
    generators = _make_attack_generators(
        corpus, victim, adversary, attack_kinds, rng
    )
    for kind, generator in generators.items():
        for index in range(config.n_attacks_per_kind):
            attack = generator.generate(
                rng=child_rng(rng, f"{kind.value}-gen-{index}")
            )
            va_rec, wearable_rec = scenario.attack_recordings(
                attack,
                spl_db=config.attack_spl_db,
                rng=child_rng(rng, f"{kind.value}-rec-{index}"),
            )
            scores.add_attack(
                kind,
                detectors.score_all(
                    va_rec,
                    wearable_rec,
                    attack.utterance,
                    config.use_oracle_segmentation,
                    rng=child_rng(rng, f"{kind.value}-score-{index}"),
                ),
            )
