"""Detection metrics: TDR, FDR, ROC, AUC, EER (paper § VII-A).

Convention: a command is flagged as an attack when its correlation score
falls *below* the detection threshold.  Thus:

* **TDR** (true detection rate) — fraction of attack samples whose score
  is below the threshold.
* **FDR** (false detection rate) — fraction of legitimate samples whose
  score is below the threshold.
* The ROC plots TDR against FDR as the threshold sweeps; AUC is its
  integral; EER is the point where FDR equals the miss rate (1 − TDR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError


def _validate(scores_legit, scores_attack) -> Tuple[np.ndarray, np.ndarray]:
    legit = np.asarray(scores_legit, dtype=np.float64).ravel()
    attack = np.asarray(scores_attack, dtype=np.float64).ravel()
    if legit.size == 0 or attack.size == 0:
        raise CalibrationError(
            "need at least one legitimate and one attack score"
        )
    if not (np.all(np.isfinite(legit)) and np.all(np.isfinite(attack))):
        raise CalibrationError("scores must be finite")
    return legit, attack


def roc_curve(
    scores_legit: Sequence[float],
    scores_attack: Sequence[float],
    n_thresholds: int = 101,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve over a uniform threshold grid.

    Returns ``(thresholds, fdr, tdr)``.  The grid spans slightly past
    the observed score range so the curve reaches (0, 0) and (1, 1) —
    the paper sweeps thresholds 0→1 with step 0.01.
    """
    legit, attack = _validate(scores_legit, scores_attack)
    low = min(legit.min(), attack.min()) - 1e-6
    high = max(legit.max(), attack.max()) + 1e-6
    thresholds = np.linspace(low, high, n_thresholds)
    fdr = np.array([(legit < t).mean() for t in thresholds])
    tdr = np.array([(attack < t).mean() for t in thresholds])
    return thresholds, fdr, tdr


def auc_from_scores(
    scores_legit: Sequence[float],
    scores_attack: Sequence[float],
) -> float:
    """Exact area under the ROC curve (Mann–Whitney statistic).

    Equals the probability that a random attack sample scores below a
    random legitimate sample (ties count half).
    """
    legit, attack = _validate(scores_legit, scores_attack)
    # Rank-based computation: O((n+m) log(n+m)), exact.
    combined = np.concatenate([attack, legit])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(combined.size, dtype=np.float64)
    sorted_vals = combined[order]
    # Average ranks for ties.
    i = 0
    while i < sorted_vals.size:
        j = i
        while (
            j + 1 < sorted_vals.size
            and sorted_vals[j + 1] == sorted_vals[i]
        ):
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_attack = ranks[: attack.size].sum()
    n_attack, n_legit = attack.size, legit.size
    u_statistic = rank_sum_attack - n_attack * (n_attack + 1) / 2.0
    # u counts attack>legit pairs; we want attack<legit.
    return float(1.0 - u_statistic / (n_attack * n_legit))


def eer_from_scores(
    scores_legit: Sequence[float],
    scores_attack: Sequence[float],
) -> Tuple[float, float]:
    """Equal error rate and the threshold achieving it.

    Finds the threshold where FDR and the miss rate (1 − TDR) cross,
    interpolating linearly between candidate thresholds.
    """
    legit, attack = _validate(scores_legit, scores_attack)
    candidates = np.unique(np.concatenate([legit, attack]))
    midpoints = np.concatenate(
        [
            [candidates[0] - 1e-9],
            0.5 * (candidates[1:] + candidates[:-1]),
            [candidates[-1] + 1e-9],
        ]
    )
    best_gap = np.inf
    eer = 0.5
    best_threshold = float(midpoints[0])
    for threshold in midpoints:
        fdr = float((legit < threshold).mean())
        fnr = float((attack >= threshold).mean())
        gap = abs(fdr - fnr)
        if gap < best_gap or (
            gap == best_gap and (fdr + fnr) / 2.0 < eer
        ):
            best_gap = gap
            eer = (fdr + fnr) / 2.0
            best_threshold = float(threshold)
    return float(eer), best_threshold


@dataclass(frozen=True)
class DetectionMetrics:
    """Summary metrics of one detector on one score set."""

    auc: float
    eer: float
    eer_threshold: float
    n_legit: int
    n_attack: int

    def __str__(self) -> str:
        return (
            f"AUC {self.auc:.3f}, EER {self.eer * 100:.1f}% "
            f"(threshold {self.eer_threshold:.3f}, "
            f"{self.n_legit} legit / {self.n_attack} attack)"
        )


def evaluate_scores(
    scores_legit: Sequence[float],
    scores_attack: Sequence[float],
) -> DetectionMetrics:
    """Compute AUC and EER for a legit/attack score set."""
    legit, attack = _validate(scores_legit, scores_attack)
    auc = auc_from_scores(legit, attack)
    eer, threshold = eer_from_scores(legit, attack)
    return DetectionMetrics(
        auc=auc,
        eer=eer,
        eer_threshold=threshold,
        n_legit=legit.size,
        n_attack=attack.size,
    )
