"""Plain-text reporting helpers for benchmarks and examples.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers format them consistently without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(
        " | ".join(
            header.ljust(width) for header, width in zip(headers, widths)
        )
    )
    lines.append(separator)
    for row in rendered_rows:
        lines.append(
            " | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    x_values: Sequence[object],
    y_values: Sequence[float],
    title: str = "",
    y_format: str = "{:.3f}",
) -> str:
    """Render an (x, y) series as the rows behind a figure panel."""
    rows = [
        (x, y_format.format(y)) for x, y in zip(x_values, y_values)
    ]
    return format_table([x_label, y_label], rows, title=title)


def format_roc_summary(
    title: str,
    metrics_by_detector: Mapping[str, object],
    paper_auc: Mapping[str, float] = None,
    paper_eer: Mapping[str, float] = None,
) -> str:
    """Render the AUC/EER comparison block of a Fig. 9/10 panel."""
    headers = ["detector", "AUC", "EER"]
    if paper_auc:
        headers += ["paper AUC", "paper EER"]
    rows = []
    for detector, metrics in metrics_by_detector.items():
        row = [
            detector,
            f"{metrics.auc:.3f}",
            f"{metrics.eer * 100:.1f}%",
        ]
        if paper_auc:
            row += [
                f"{paper_auc.get(detector, float('nan')):.3f}",
                f"{paper_eer.get(detector, float('nan')) * 100:.1f}%",
            ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny unicode sparkline for quick visual sanity checks."""
    blocks = "▁▂▃▄▅▆▇█"
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return ""
    if array.size > width:
        indices = np.linspace(0, array.size - 1, width).astype(int)
        array = array[indices]
    low, high = float(array.min()), float(array.max())
    span = high - low if high > low else 1.0
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))]
        for value in array
    )
