"""Plain-text reporting helpers for benchmarks and examples.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers format them consistently without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(
        " | ".join(
            header.ljust(width) for header, width in zip(headers, widths)
        )
    )
    lines.append(separator)
    for row in rendered_rows:
        lines.append(
            " | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    x_values: Sequence[object],
    y_values: Sequence[float],
    title: str = "",
    y_format: str = "{:.3f}",
) -> str:
    """Render an (x, y) series as the rows behind a figure panel."""
    rows = [
        (x, y_format.format(y)) for x, y in zip(x_values, y_values)
    ]
    return format_table([x_label, y_label], rows, title=title)


def format_roc_summary(
    title: str,
    metrics_by_detector: Mapping[str, object],
    paper_auc: Mapping[str, float] = None,
    paper_eer: Mapping[str, float] = None,
) -> str:
    """Render the AUC/EER comparison block of a Fig. 9/10 panel."""
    headers = ["detector", "AUC", "EER"]
    if paper_auc:
        headers += ["paper AUC", "paper EER"]
    rows = []
    for detector, metrics in metrics_by_detector.items():
        row = [
            detector,
            f"{metrics.auc:.3f}",
            f"{metrics.eer * 100:.1f}%",
        ]
        if paper_auc:
            row += [
                f"{paper_auc.get(detector, float('nan')):.3f}",
                f"{paper_eer.get(detector, float('nan')) * 100:.1f}%",
            ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_runner_stats(stats, max_units: int = 12) -> str:
    """Render a :class:`repro.eval.runner.CampaignStats` block.

    Shows the end-to-end wall clock, throughput, and realized speedup
    (summed per-unit time over outer wall time), followed by the
    slowest per-unit rows (all rows when there are at most
    ``max_units``).
    """
    lines = [
        (
            f"campaign: {stats.n_units} units, {stats.n_samples} samples "
            f"in {stats.wall_s:.2f}s "
            f"({stats.samples_per_s:.2f} samples/s, "
            f"{stats.n_workers} worker(s), {stats.mode})"
        )
    ]
    if stats.units and stats.wall_s > 0:
        lines.append(
            f"unit work {stats.unit_wall_s:.2f}s -> speedup "
            f"{stats.unit_wall_s / stats.wall_s:.2f}x"
        )
    stage_totals = getattr(stats, "stage_totals", None) or {}
    if stage_totals:
        from repro.core.pipeline import PIPELINE_STAGES

        ordered = [
            stage for stage in PIPELINE_STAGES if stage in stage_totals
        ] + [
            stage for stage in sorted(stage_totals)
            if stage not in PIPELINE_STAGES
        ]
        lines.append(
            "stages: "
            + ", ".join(
                f"{stage} {stage_totals[stage]:.2f}s"
                for stage in ordered
            )
        )
    units = sorted(stats.units, key=lambda u: u.wall_s, reverse=True)
    shown = units[:max_units]
    if shown:
        rows = [
            (
                unit.label,
                f"{unit.wall_s:.2f}",
                unit.n_samples,
                f"{unit.samples_per_s:.2f}",
            )
            for unit in shown
        ]
        title = (
            "per-unit wall clock"
            if len(shown) == len(units)
            else f"slowest {len(shown)} of {len(units)} units"
        )
        lines.append(
            format_table(
                ["unit", "wall s", "samples", "samples/s"],
                rows,
                title=title,
            )
        )
    return "\n".join(lines)


def format_service_metrics(metrics) -> str:
    """Render a :class:`repro.serve.metrics.ServiceMetrics` snapshot.

    Mirrors :func:`format_runner_stats`: a headline counters block
    followed by a fixed-width latency-percentile table with one row per
    pipeline stage plus queue wait and end-to-end latency (all in
    milliseconds).
    """
    degraded = (
        f" ({metrics.n_degraded} degraded)" if metrics.n_degraded else ""
    )
    lines = [
        (
            f"service: {metrics.n_submitted} submitted, "
            f"{metrics.n_served} served{degraded}, "
            f"{metrics.n_rejected} rejected, {metrics.n_shed} shed, "
            f"{metrics.n_failed} failed"
        ),
        (
            f"batches: {metrics.n_batches} "
            f"(mean size {metrics.mean_batch_size:.2f}); "
            f"queue depth {metrics.queue_depth}, "
            f"pending {metrics.n_pending}; "
            f"{metrics.wall_s:.2f}s wall, "
            f"{metrics.throughput_rps:.2f} req/s"
        ),
    ]
    if getattr(metrics, "n_batched_forwards", 0):
        lines.append(
            f"vectorized: {metrics.n_batched_forwards} batched "
            f"forwards, {metrics.requests_per_forward:.2f} "
            f"requests/forward"
        )
    controller = getattr(metrics, "batch_controller", None)
    if controller is not None:
        p95 = controller.rolling_p95_s
        p95_text = f"{p95 * 1e3:.1f} ms" if p95 == p95 else "n/a"
        lines.append(
            f"adaptive batching: size {controller.batch_size}, "
            f"{controller.n_grow} grows, {controller.n_shrink} shrinks "
            f"({controller.n_decisions} decisions); "
            f"rolling p95 {p95_text}"
        )
    stage_fallbacks = getattr(metrics, "stage_fallbacks", None) or {}
    if stage_fallbacks:
        lines.append(
            "fallbacks: "
            + ", ".join(
                f"{key} x{count}"
                for key, count in sorted(stage_fallbacks.items())
            )
        )
    rows = []

    def add_row(label, summary):
        if summary is None:
            return
        rows.append(
            (
                label,
                summary.count,
                f"{summary.p50_s * 1e3:.1f}",
                f"{summary.p95_s * 1e3:.1f}",
                f"{summary.p99_s * 1e3:.1f}",
            )
        )

    from repro.core.pipeline import PIPELINE_STAGES

    ordered = [
        stage for stage in PIPELINE_STAGES
        if stage in metrics.stage_latency
    ] + [
        stage for stage in sorted(metrics.stage_latency)
        if stage not in PIPELINE_STAGES
    ]
    for stage in ordered:
        add_row(stage, metrics.stage_latency[stage])
    add_row("queue-wait", metrics.queue_wait)
    add_row("total", metrics.total_latency)
    if rows:
        lines.append(
            format_table(
                ["stage", "n", "p50 ms", "p95 ms", "p99 ms"],
                rows,
                title="latency percentiles",
            )
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny unicode sparkline for quick visual sanity checks."""
    blocks = "▁▂▃▄▅▆▇█"
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return ""
    if array.size > width:
        indices = np.linspace(0, array.size - 1, width).astype(int)
        array = array[indices]
    low, high = float(array.min()), float(array.max())
    span = high - low if high > low else 1.0
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))]
        for value in array
    )
