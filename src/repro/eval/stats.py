"""Uncertainty quantification for detection metrics.

The campaign sizes are finite, so AUC/EER point estimates carry sampling
error.  This module provides nonparametric bootstrap confidence
intervals over the legitimate/attack score sets, so benchmark reports
can state "AUC 0.99 [0.96, 1.00]" instead of a bare number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.eval.metrics import auc_from_scores, eer_from_scores
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import quantile_values


@dataclass(frozen=True)
class BootstrapEstimate:
    """A point estimate with a bootstrap confidence interval."""

    value: float
    low: float
    high: float
    confidence: float
    n_bootstrap: int

    def __str__(self) -> str:
        return (
            f"{self.value:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"({self.confidence:.0%} CI, {self.n_bootstrap} resamples)"
        )


def bootstrap_metric(
    legit_scores: Sequence[float],
    attack_scores: Sequence[float],
    metric: Callable[[np.ndarray, np.ndarray], float],
    n_bootstrap: int = 500,
    confidence: float = 0.95,
    rng: SeedLike = None,
) -> BootstrapEstimate:
    """Percentile-bootstrap confidence interval for a score metric.

    Parameters
    ----------
    legit_scores / attack_scores:
        The observed score sets.
    metric:
        Callable mapping ``(legit, attack)`` arrays to a scalar.
    n_bootstrap:
        Number of resamples.
    confidence:
        Interval mass (e.g., 0.95 for a 95 % CI).
    rng:
        Randomness for resampling.
    """
    legit = np.asarray(legit_scores, dtype=np.float64).ravel()
    attack = np.asarray(attack_scores, dtype=np.float64).ravel()
    if legit.size == 0 or attack.size == 0:
        raise CalibrationError("score sets must be non-empty")
    if n_bootstrap <= 0:
        raise CalibrationError("n_bootstrap must be > 0")
    if not 0.0 < confidence < 1.0:
        raise CalibrationError("confidence must lie in (0, 1)")
    generator = as_generator(rng)
    point = float(metric(legit, attack))
    resampled = np.empty(n_bootstrap)
    for index in range(n_bootstrap):
        legit_sample = legit[
            generator.integers(0, legit.size, size=legit.size)
        ]
        attack_sample = attack[
            generator.integers(0, attack.size, size=attack.size)
        ]
        resampled[index] = metric(legit_sample, attack_sample)
    tail = (1.0 - confidence) / 2.0
    low, high = quantile_values(resampled, [tail, 1.0 - tail])
    return BootstrapEstimate(
        value=point,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_bootstrap=n_bootstrap,
    )


def bootstrap_auc(
    legit_scores: Sequence[float],
    attack_scores: Sequence[float],
    n_bootstrap: int = 500,
    confidence: float = 0.95,
    rng: SeedLike = None,
) -> BootstrapEstimate:
    """Bootstrap CI for the AUC."""
    return bootstrap_metric(
        legit_scores,
        attack_scores,
        auc_from_scores,
        n_bootstrap=n_bootstrap,
        confidence=confidence,
        rng=rng,
    )


def bootstrap_eer(
    legit_scores: Sequence[float],
    attack_scores: Sequence[float],
    n_bootstrap: int = 500,
    confidence: float = 0.95,
    rng: SeedLike = None,
) -> BootstrapEstimate:
    """Bootstrap CI for the EER."""
    return bootstrap_metric(
        legit_scores,
        attack_scores,
        lambda l, a: eer_from_scores(l, a)[0],
        n_bootstrap=n_bootstrap,
        confidence=confidence,
        rng=rng,
    )
