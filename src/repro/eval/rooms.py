"""The paper's four evaluation rooms (§ VII-A).

Room A is a residential apartment with a glass window; Rooms B and C are
university offices behind wooden doors; Room D is an office behind a
glass wall.  Sizes follow the paper: 7×6, 7×7, 6×4, and 5×3 meters.
"""

from __future__ import annotations

from typing import Dict

from repro.acoustics.materials import (
    GLASS_WALL,
    GLASS_WINDOW,
    WOODEN_DOOR,
)
from repro.acoustics.room import RoomConfig

ROOM_A = RoomConfig(
    name="Room A",
    width_m=7.0,
    length_m=6.0,
    barrier=GLASS_WINDOW,
    ambient_noise_db=44.0,   # Apartment: quieter than campus offices.
    reflectivity=0.30,       # Furnished; absorbs more.
)

ROOM_B = RoomConfig(
    name="Room B",
    width_m=7.0,
    length_m=7.0,
    barrier=WOODEN_DOOR,
    ambient_noise_db=46.0,
    reflectivity=0.35,
)

ROOM_C = RoomConfig(
    name="Room C",
    width_m=6.0,
    length_m=4.0,
    barrier=WOODEN_DOOR,
    ambient_noise_db=47.0,
    reflectivity=0.35,
)

ROOM_D = RoomConfig(
    name="Room D",
    width_m=5.0,
    length_m=3.0,
    barrier=GLASS_WALL,
    ambient_noise_db=47.0,
    reflectivity=0.45,       # Small glass-walled office: liveliest.
)

#: All four rooms keyed by name.
ROOMS: Dict[str, RoomConfig] = {
    room.name: room for room in (ROOM_A, ROOM_B, ROOM_C, ROOM_D)
}
