"""Channel stages: the composable units of a propagation graph.

A :class:`ChannelStage` is one physical transformation of a signal — a
loudspeaker driver, a barrier, an air path, a conduction path, a sensor.
Stages compose into a :class:`~repro.channels.graph.PropagationChannel`,
which replaces the hardwired loudspeaker → barrier and speaker →
conduction → accelerometer chains that used to live inside
``ThruBarrierChannel`` and ``CrossDomainSensor``.

Design rules
------------
* Every stage is a **frozen dataclass wrapping only other frozen
  dataclasses and primitives**, so a whole channel can be fingerprinted
  by :func:`repro.store.fingerprint.canonical_token` and embedded in
  scenario specs and serve batch keys.
* Randomness policy is declared, not improvised: ``rng_label`` is either
  ``None`` (deterministic stage — receives no generator), the
  :data:`PASSTHROUGH` sentinel (receives the channel's generator
  verbatim, preserving legacy bitwise streams), or a string label
  (receives ``child_rng(generator, label)``).  The channel derives every
  stage stream *up front in stage order*, which is what makes the
  batched path bitwise identical to the sequential one (see PR 9's
  batch-parity contract).
* ``apply_batch`` over a ``(batch, time)`` stack must be bitwise
  identical row-by-row to ``apply``.  Stages with a vectorized kernel
  (loudspeaker, conduction, accelerometer) delegate to it; the rest
  inherit a loop-and-stack fallback that is trivially parity-safe.
* ``chain_input`` is the channel's *original* input signal; stages that
  need the pre-chain drive (the accelerometer's DC-envelope artifact)
  declare ``consumes_chain_input = True``.  Such stages must sit before
  any rate- or length-changing stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.acoustics.barrier import Barrier
from repro.acoustics.loudspeaker import Loudspeaker, LoudspeakerSpec
from repro.acoustics.materials import BarrierMaterial
from repro.acoustics.propagation import propagate
from repro.errors import ConfigurationError, SignalError
from repro.sensing.accelerometer import Accelerometer, AccelerometerSpec
from repro.sensing.conduction import ConductionPath
from repro.utils.validation import ensure_1d, ensure_2d, ensure_positive

#: ``rng_label`` sentinel: the stage receives the channel's generator
#: verbatim instead of a derived child stream.  Used by the barrier stage
#: so the refactored ``ThruBarrierChannel.transmit`` feeds the caller's
#: rng straight through, exactly as the pre-refactor code did.
PASSTHROUGH = "<passthrough>"


@runtime_checkable
class ChannelStage(Protocol):
    """One composable transformation in a propagation channel."""

    def apply(
        self,
        signal: np.ndarray,
        rate: float,
        rng: Optional[np.random.Generator] = None,
        chain_input: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Transform ``signal`` (1-D) sampled at ``rate``."""
        ...

    def apply_batch(
        self,
        signals: np.ndarray,
        rate: float,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
        chain_inputs: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Transform a ``(batch, time)`` stack, bitwise equal per row."""
        ...

    def output_rate(self, rate: float) -> float:
        """Sampling rate of the output given input rate ``rate``."""
        ...


class StageBase:
    """Shared stage behavior: identity rate, loop-and-stack batching."""

    #: Randomness policy — see module docstring.
    rng_label: Optional[str] = None
    #: Whether :meth:`apply` wants the channel's original input signal.
    consumes_chain_input: bool = False

    def output_rate(self, rate: float) -> float:
        return rate

    def apply(
        self,
        signal: np.ndarray,
        rate: float,
        rng: Optional[np.random.Generator] = None,
        chain_input: Optional[np.ndarray] = None,
    ) -> np.ndarray:  # pragma: no cover - subclasses override
        raise NotImplementedError

    def apply_batch(
        self,
        signals: np.ndarray,
        rate: float,
        rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
        chain_inputs: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Row-wise fallback: bitwise-parity-safe by construction."""
        samples = ensure_2d(signals, "signals")
        n_items = samples.shape[0]
        if rngs is None:
            rngs = [None] * n_items
        if len(rngs) != n_items:
            raise ConfigurationError(
                f"need one rng per signal: got {len(rngs)} rngs for "
                f"{n_items} signals"
            )
        chain = (
            ensure_2d(chain_inputs, "chain_inputs")
            if chain_inputs is not None
            else None
        )
        rows = [
            self.apply(
                samples[index],
                rate,
                rng=rngs[index],
                chain_input=None if chain is None else chain[index],
            )
            for index in range(n_items)
        ]
        return np.stack(rows)


# ----------------------------------------------------------------------
# Adapters over the existing physics pieces
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LoudspeakerStage(StageBase):
    """Playback through a driver (band shaping + harmonic distortion)."""

    spec: LoudspeakerSpec

    def apply(self, signal, rate, rng=None, chain_input=None):
        return Loudspeaker(self.spec).play(signal, rate)

    def apply_batch(self, signals, rate, rngs=None, chain_inputs=None):
        return Loudspeaker(self.spec).play_batch(signals, rate)


@dataclass(frozen=True)
class BarrierStage(StageBase):
    """Thru-barrier transmission (Eq. (1)) with structural resonances.

    The stage's randomness policy is :data:`PASSTHROUGH`: the resonance
    ripple consumes the channel's generator directly, preserving the
    exact stream the pre-refactor ``ThruBarrierChannel`` produced.
    """

    material: BarrierMaterial
    thickness_scale: float = 1.0
    resonance_db: float = 1.0

    rng_label = PASSTHROUGH

    def apply(self, signal, rate, rng=None, chain_input=None):
        barrier = Barrier(
            self.material,
            thickness_scale=self.thickness_scale,
            resonance_db=self.resonance_db,
        )
        return barrier.transmit(signal, rate, rng=rng)


@dataclass(frozen=True)
class AirPropagationStage(StageBase):
    """Free-field air path: spherical spreading + air absorption."""

    distance_m: float

    def __post_init__(self) -> None:
        ensure_positive(self.distance_m, "distance_m")

    def apply(self, signal, rate, rng=None, chain_input=None):
        return propagate(signal, rate, self.distance_m)


@dataclass(frozen=True)
class ConductionStage(StageBase):
    """Structural coupling from the wearable's speaker to its sensor."""

    path: ConductionPath = field(default_factory=ConductionPath)

    rng_label = "strap"

    def apply(self, signal, rate, rng=None, chain_input=None):
        return self.path.apply(signal, rate, rng=rng)

    def apply_batch(self, signals, rate, rngs=None, chain_inputs=None):
        return self.path.apply_batch(signals, rate, rngs=rngs)


@dataclass(frozen=True)
class AccelerometerStage(StageBase):
    """MEMS sampling: aliasing, DC artifact, noise injection, LSB.

    Consumes ``chain_input`` (the channel's original audio) as the drive
    signal for the DC-envelope and noise-injection artifacts, so it must
    come before any stage that changes the sampling rate or length.
    """

    spec: AccelerometerSpec = field(default_factory=AccelerometerSpec)

    rng_label = "sense"
    consumes_chain_input = True

    def output_rate(self, rate: float) -> float:
        return self.spec.sample_rate

    def apply(self, signal, rate, rng=None, chain_input=None):
        drive = signal if chain_input is None else chain_input
        return Accelerometer(self.spec).sense(
            signal, rate, drive_audio=drive, rng=rng
        )

    def apply_batch(self, signals, rate, rngs=None, chain_inputs=None):
        drives = signals if chain_inputs is None else chain_inputs
        return Accelerometer(self.spec).sense_batch(
            signals, rate, drive_audios=drives, rngs=rngs
        )


# ----------------------------------------------------------------------
# Ultrasound injection stages (the ``ultrasound-solid`` scenario pack)
# ----------------------------------------------------------------------

#: Ultrasonic transducer: narrow band around the carrier, no audible
#: leakage below ~15 kHz (the attack is inaudible by construction).
ULTRASONIC_TRANSDUCER = LoudspeakerSpec(
    name="ultrasonic transducer",
    low_cut_hz=15_000.0,
    high_cut_hz=23_000.0,
    harmonic_distortion=0.0,
)


@dataclass(frozen=True)
class UltrasoundCarrierStage(StageBase):
    """Amplitude-modulate the command onto an ultrasonic carrier.

    Upsamples the baseband audio by ``oversample`` (16 kHz → 48 kHz for
    the default factor 3) so the carrier fits under Nyquist, then emits
    ``(1 + depth * m(t)) * cos(2π f_c t)`` with ``m`` peak-normalized
    and the result calibrated to ``carrier_spl_db``.  Ultrasonic attack
    transducers are driven very hard (≳110 dB SPL at the source) —
    inaudible because all the energy sits above hearing — which is what
    lets the lossy square-law demodulation still produce an audible
    command on the far side.  Deterministic: the modulator has no
    physical noise source.
    """

    carrier_hz: float = 21_000.0
    oversample: int = 3
    modulation_depth: float = 0.8
    carrier_spl_db: float = 106.0

    def __post_init__(self) -> None:
        ensure_positive(self.carrier_hz, "carrier_hz")
        if self.oversample < 2:
            raise ConfigurationError("oversample must be >= 2")
        if not 0 < self.modulation_depth <= 1:
            raise ConfigurationError("modulation_depth must be in (0, 1]")

    def output_rate(self, rate: float) -> float:
        return rate * self.oversample

    def apply(self, signal, rate, rng=None, chain_input=None):
        from repro.acoustics.spl import scale_to_spl
        from repro.dsp.resample import resample_poly_safe

        samples = ensure_1d(signal)
        ensure_positive(rate, "rate")
        high_rate = rate * self.oversample
        if self.carrier_hz >= high_rate / 2.0:
            raise SignalError(
                f"carrier {self.carrier_hz} Hz exceeds Nyquist at "
                f"oversampled rate {high_rate} Hz"
            )
        upsampled = resample_poly_safe(samples, rate, high_rate)
        peak = float(np.max(np.abs(upsampled))) + 1e-12
        message = upsampled / peak
        t = np.arange(upsampled.size) / high_rate
        carrier = np.cos(2.0 * np.pi * self.carrier_hz * t)
        modulated = (1.0 + self.modulation_depth * message) * carrier
        return scale_to_spl(modulated, self.carrier_spl_db)


@dataclass(frozen=True)
class SolidConductionStage(StageBase):
    """Structure-borne path through the barrier (SUAD-style injection).

    A contact transducer drives the barrier material directly; solids
    damp far less than air at ultrasonic frequencies, so the carrier
    survives where the airborne thru-barrier path would kill it.  The
    model is a flat coupling loss plus a mild frequency- and
    path-length-dependent damping term.
    """

    coupling_loss_db: float = 12.0
    damping_db_per_khz_m: float = 0.25
    path_m: float = 1.0

    def __post_init__(self) -> None:
        if self.coupling_loss_db < 0 or self.damping_db_per_khz_m < 0:
            raise ConfigurationError("solid-path losses must be >= 0 dB")
        ensure_positive(self.path_m, "path_m")

    def gain(self, frequencies: np.ndarray) -> np.ndarray:
        """Linear amplitude gain of the solid path at each frequency."""
        frequencies = np.asarray(frequencies, dtype=np.float64)
        loss_db = self.coupling_loss_db + (
            self.damping_db_per_khz_m * (frequencies / 1000.0) * self.path_m
        )
        return 10.0 ** (-loss_db / 20.0)

    def apply(self, signal, rate, rng=None, chain_input=None):
        samples = ensure_1d(signal)
        ensure_positive(rate, "rate")
        spectrum = np.fft.rfft(samples)
        frequencies = np.fft.rfftfreq(samples.size, d=1.0 / rate)
        return np.fft.irfft(
            spectrum * self.gain(frequencies), n=samples.size
        )


@dataclass(frozen=True)
class NonlinearDemodulationStage(StageBase):
    """Square-law demodulation at the receiving surface.

    Mechanical nonlinearity of the barrier/air interface demodulates the
    AM ultrasound back to baseband (``x + a·x²`` keeps the ``(1+m)²``
    envelope term), which is then low-passed, DC-removed, and decimated
    back to the audio rate — the audible command materializes *inside*
    the room with no airborne path through the barrier.
    """

    oversample: int = 3
    quadratic_gain: float = 0.8
    output_lowpass_hz: float = 7_000.0

    def __post_init__(self) -> None:
        if self.oversample < 2:
            raise ConfigurationError("oversample must be >= 2")
        ensure_positive(self.quadratic_gain, "quadratic_gain")
        ensure_positive(self.output_lowpass_hz, "output_lowpass_hz")

    def output_rate(self, rate: float) -> float:
        return rate / self.oversample

    def apply(self, signal, rate, rng=None, chain_input=None):
        from repro.dsp.filters import butter_lowpass
        from repro.dsp.resample import resample_poly_safe

        samples = ensure_1d(signal)
        ensure_positive(rate, "rate")
        squared = samples + self.quadratic_gain * samples**2
        baseband = butter_lowpass(
            squared, rate, self.output_lowpass_hz, order=6
        )
        baseband = baseband - float(np.mean(baseband))
        return resample_poly_safe(baseband, rate, rate / self.oversample)
