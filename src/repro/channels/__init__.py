"""Composable propagation-channel layer.

Every acoustic path in the system — the adversary's loudspeaker → barrier
injection, the wearable's speaker → conduction → accelerometer replay —
is a :class:`PropagationChannel`: an ordered tuple of
:class:`ChannelStage` objects with a declared randomness policy per
stage.  Scenario packs (``repro.scenarios``) compose new channels from
these stages without editing any core code.
"""

from repro.channels.graph import InjectionChannel, PropagationChannel
from repro.channels.stages import (
    PASSTHROUGH,
    ULTRASONIC_TRANSDUCER,
    AccelerometerStage,
    AirPropagationStage,
    BarrierStage,
    ChannelStage,
    ConductionStage,
    LoudspeakerStage,
    NonlinearDemodulationStage,
    SolidConductionStage,
    StageBase,
    UltrasoundCarrierStage,
)

__all__ = [
    "PASSTHROUGH",
    "ULTRASONIC_TRANSDUCER",
    "AccelerometerStage",
    "AirPropagationStage",
    "BarrierStage",
    "ChannelStage",
    "ConductionStage",
    "InjectionChannel",
    "LoudspeakerStage",
    "NonlinearDemodulationStage",
    "PropagationChannel",
    "SolidConductionStage",
    "StageBase",
    "UltrasoundCarrierStage",
]
