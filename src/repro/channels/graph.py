"""Propagation channel: an ordered composition of channel stages.

:class:`PropagationChannel` folds a signal through a tuple of
:class:`~repro.channels.stages.ChannelStage` objects, threading the
sampling rate, the per-stage randomness streams, and the chain's
original input (for stages like the accelerometer that model artifacts
of the *drive* signal).

The randomness contract is the load-bearing part.  ``apply`` coerces the
caller's seed into a generator once, then derives every stage's stream
**up front, in stage order** — ``None`` for deterministic stages, the
generator itself for :data:`~repro.channels.stages.PASSTHROUGH` stages,
``child_rng(generator, label)`` otherwise.  Because child derivation
consumes exactly one parent draw at derivation time, a caller that
derives further children *after* ``apply``/``apply_batch`` returns (the
sensor's body-motion stream) sees the same parent state the sequential
pre-refactor code produced — which is what keeps the refactor bitwise
invisible.

``apply_batch`` reuses PR 9's bucket strategy: recordings of equal
length form dense ``(batch, time)`` stacks pushed through each stage's
vectorized ``apply_batch``; grouping by *exact* length (never padding)
is what preserves bitwise parity with the sequential path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.acoustics.spl import scale_to_spl
from repro.channels.stages import PASSTHROUGH, ChannelStage
from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator, child_rng
from repro.utils.validation import ensure_1d, ensure_positive


@dataclass(frozen=True)
class PropagationChannel:
    """An ordered, fingerprintable composition of channel stages."""

    stages: Tuple[ChannelStage, ...]
    name: str = "channel"

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError(
                f"channel {self.name!r} needs at least one stage"
            )
        for stage in self.stages:
            if not isinstance(stage, ChannelStage):
                raise ConfigurationError(
                    f"channel {self.name!r}: {stage!r} does not "
                    "implement the ChannelStage protocol"
                )

    def output_rate(self, rate: float) -> float:
        """Sampling rate of the channel output for input rate ``rate``."""
        ensure_positive(rate, "rate")
        for stage in self.stages:
            rate = stage.output_rate(rate)
        return rate

    def derive_streams(
        self, generator: np.random.Generator
    ) -> List[Optional[np.random.Generator]]:
        """Per-stage randomness streams, derived in stage order."""
        streams: List[Optional[np.random.Generator]] = []
        for stage in self.stages:
            label = getattr(stage, "rng_label", None)
            if label is None:
                streams.append(None)
            elif label == PASSTHROUGH:
                streams.append(generator)
            else:
                streams.append(child_rng(generator, label))
        return streams

    def apply(
        self,
        signal: np.ndarray,
        rate: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Fold ``signal`` through every stage in order."""
        samples = ensure_1d(signal)
        ensure_positive(rate, "rate")
        generator = as_generator(rng)
        streams = self.derive_streams(generator)
        current = samples
        current_rate = float(rate)
        for stage, stream in zip(self.stages, streams):
            current = stage.apply(
                current, current_rate, rng=stream, chain_input=samples
            )
            current_rate = stage.output_rate(current_rate)
        return current

    def apply_batch(
        self,
        signals: Sequence[np.ndarray],
        rate: float,
        rngs: Optional[Sequence[SeedLike]] = None,
    ) -> List[np.ndarray]:
        """:meth:`apply` over a batch, bitwise identical per item.

        ``rngs[i]`` is the seed/generator a sequential
        ``apply(signals[i], rate, rng=rngs[i])`` call would receive.
        """
        ensure_positive(rate, "rate")
        items = [ensure_1d(signal) for signal in signals]
        if rngs is None:
            rngs = [None] * len(items)
        if len(rngs) != len(items):
            raise ConfigurationError(
                f"need one rng per signal: got {len(rngs)} rngs for "
                f"{len(items)} signals"
            )
        # Derive every (item, stage) stream up front, in the exact order
        # the sequential path consumes parent draws: item by item, stage
        # by stage within the item.
        per_item_streams = [
            self.derive_streams(as_generator(rng)) for rng in rngs
        ]

        buckets: Dict[int, List[int]] = {}
        for index, samples in enumerate(items):
            buckets.setdefault(samples.size, []).append(index)

        results: List[Optional[np.ndarray]] = [None] * len(items)
        for indices in buckets.values():
            stack = np.stack([items[index] for index in indices])
            current = stack
            current_rate = float(rate)
            for position, stage in enumerate(self.stages):
                current = stage.apply_batch(
                    current,
                    current_rate,
                    rngs=[
                        per_item_streams[index][position]
                        for index in indices
                    ],
                    chain_inputs=stack,
                )
                current_rate = stage.output_rate(current_rate)
            for row, index in enumerate(indices):
                results[index] = current[row]
        output = [result for result in results if result is not None]
        if len(output) != len(items):  # pragma: no cover - invariant
            raise RuntimeError("apply_batch dropped an item")
        return output


@dataclass(frozen=True)
class InjectionChannel:
    """An attack-side channel: SPL calibration + a propagation graph.

    Exposes the same ``transmit(waveform, sample_rate, spl_db, rng)``
    interface as the classic ``ThruBarrierChannel``, so scenario packs
    can swap in arbitrary injection graphs (ultrasonic solid-conduction
    paths, multi-barrier chains) without touching ``AttackScenario``.
    """

    channel: PropagationChannel

    def transmit(
        self,
        waveform: np.ndarray,
        sample_rate: float,
        spl_db: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Sound field just inside the room for playback at ``spl_db``."""
        calibrated = scale_to_spl(waveform, spl_db)
        return self.channel.apply(calibrated, sample_rate, rng=rng)
