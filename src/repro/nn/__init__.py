"""Neural-network substrate implemented from scratch on numpy.

Provides the pieces the paper's phoneme segmenter needs: an LSTM cell
with full backpropagation through time, a bidirectional wrapper (BRNN),
a dense output layer, softmax cross-entropy, the Adam optimizer, and a
small sequence-model container with save/load.
"""

from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.lstm import LSTMLayer
from repro.nn.bidirectional import BidirectionalLSTM
from repro.nn.dense import Dense
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.adam import Adam
from repro.nn.model import SequenceClassifier
from repro.nn.data import pad_sequences, iterate_minibatches

__all__ = [
    "glorot_uniform",
    "orthogonal",
    "LSTMLayer",
    "BidirectionalLSTM",
    "Dense",
    "softmax",
    "softmax_cross_entropy",
    "Adam",
    "SequenceClassifier",
    "pad_sequences",
    "iterate_minibatches",
]
