"""Weight initializers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def glorot_uniform(
    shape: Tuple[int, ...],
    rng: SeedLike = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense weight matrices."""
    if len(shape) < 2:
        raise ConfigurationError(
            f"glorot_uniform needs a >=2-D shape, got {shape}"
        )
    generator = as_generator(rng)
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=shape)


def orthogonal(
    shape: Tuple[int, int],
    rng: SeedLike = None,
) -> np.ndarray:
    """Orthogonal initialization (standard for recurrent kernels)."""
    if len(shape) != 2:
        raise ConfigurationError(
            f"orthogonal needs a 2-D shape, got {shape}"
        )
    generator = as_generator(rng)
    rows, cols = shape
    size = max(rows, cols)
    matrix = generator.standard_normal((size, size))
    q, r = np.linalg.qr(matrix)
    q = q * np.sign(np.diag(r))
    return q[:rows, :cols].copy()
