"""LSTM layer with full backpropagation through time (numpy).

Implements the standard LSTM cell (gates i, f, o and candidate g) over
batch-first sequences of shape ``(batch, time, features)``.  The layer
caches forward activations so :meth:`backward` can compute exact BPTT
gradients; parameters are exposed as a flat dict for the optimizer.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.utils.rng import SeedLike, as_generator, child_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class LSTMLayer:
    """Unidirectional LSTM over batch-first sequences.

    Parameters
    ----------
    input_dim:
        Feature dimension of the input sequences.
    hidden_dim:
        Number of LSTM units (the paper uses 64).
    rng:
        Seed for weight initialization.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: SeedLike = None,
    ) -> None:
        if input_dim <= 0 or hidden_dim <= 0:
            raise ModelError(
                f"dims must be > 0, got input={input_dim}, "
                f"hidden={hidden_dim}"
            )
        generator = as_generator(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        gate_dim = 4 * hidden_dim
        self.params: Dict[str, np.ndarray] = {
            "W": glorot_uniform(
                (input_dim, gate_dim), rng=child_rng(generator, "W")
            ),
            "U": np.concatenate(
                [
                    orthogonal(
                        (hidden_dim, hidden_dim),
                        rng=child_rng(generator, f"U{k}"),
                    )
                    for k in range(4)
                ],
                axis=1,
            ),
            "b": np.zeros(gate_dim),
        }
        # Forget-gate bias starts positive so gradients flow early on.
        self.params["b"][hidden_dim : 2 * hidden_dim] = 1.0
        self.grads: Dict[str, np.ndarray] = {
            key: np.zeros_like(value) for key, value in self.params.items()
        }
        self._cache: Optional[dict] = None

    def forward(
        self,
        inputs: np.ndarray,
        training: bool = True,
        mask: Optional[np.ndarray] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Run the LSTM over ``inputs`` of shape (batch, time, input_dim).

        Returns hidden states of shape (batch, time, hidden_dim).  With
        ``training=True`` (the default) activations are cached for
        :meth:`backward`; ``training=False`` selects the inference fast
        path (:meth:`forward_inference`), which supports ``mask`` and
        ``dtype``.
        """
        if not training:
            return self.forward_inference(inputs, mask=mask, dtype=dtype)
        if mask is not None or dtype is not None:
            raise ModelError(
                "mask/dtype are inference-only options; call forward "
                "with training=False"
            )
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[2] != self.input_dim:
            raise ModelError(
                f"expected (batch, time, {self.input_dim}) input, got "
                f"{inputs.shape}"
            )
        batch, time, _ = inputs.shape
        hidden = self.hidden_dim
        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.zeros((batch, time, hidden))
        cache = {
            "x": inputs,
            "i": np.zeros((batch, time, hidden)),
            "f": np.zeros((batch, time, hidden)),
            "o": np.zeros((batch, time, hidden)),
            "g": np.zeros((batch, time, hidden)),
            "c": np.zeros((batch, time, hidden)),
            "tanh_c": np.zeros((batch, time, hidden)),
            "h_prev": np.zeros((batch, time, hidden)),
            "c_prev": np.zeros((batch, time, hidden)),
        }
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        for t in range(time):
            cache["h_prev"][:, t] = h
            cache["c_prev"][:, t] = c
            gates = inputs[:, t] @ W + h @ U + b
            i = _sigmoid(gates[:, :hidden])
            f = _sigmoid(gates[:, hidden : 2 * hidden])
            g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
            o = _sigmoid(gates[:, 3 * hidden :])
            c = f * c + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            hs[:, t] = h
            cache["i"][:, t] = i
            cache["f"][:, t] = f
            cache["g"][:, t] = g
            cache["o"][:, t] = o
            cache["c"][:, t] = c
            cache["tanh_c"][:, t] = tanh_c
        self._cache = cache
        return hs

    def forward_inference(
        self,
        inputs: np.ndarray,
        mask: Optional[np.ndarray] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Inference-only forward: no BPTT caches, optional masking.

        Differences from the training forward:

        * none of the ~9 per-timestep ``(batch, time, hidden)`` BPTT
          cache arrays are allocated, and no instance state is written
          — concurrent calls on a shared layer are safe;
        * the input projection ``x @ W`` is hoisted out of the time
          loop into one flat ``(batch * time, input_dim)`` matmul;
        * ``mask`` (shape ``(batch, time)``, truthy = valid frame)
          freezes the hidden and cell state across padded frames via
          exact ``np.where`` selection, so right-padded batch members
          produce the same hidden states at their valid frames as an
          unpadded run;
        * ``dtype`` (e.g. ``np.float32``) selects an opt-in
          reduced-precision compute path — parameters and inputs are
          cast once up front.

        The float64 path keeps the training forward's operation order
        (``(x @ W + h @ U) + b`` and identical gate nonlinearities), so
        for a given matmul kernel the numbers match the training
        forward bitwise.
        """
        compute_dtype = np.dtype(dtype) if dtype is not None else (
            np.dtype(np.float64)
        )
        inputs = np.asarray(inputs, dtype=compute_dtype)
        if inputs.ndim != 3 or inputs.shape[2] != self.input_dim:
            raise ModelError(
                f"expected (batch, time, {self.input_dim}) input, got "
                f"{inputs.shape}"
            )
        batch, time, _ = inputs.shape
        hidden = self.hidden_dim
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        if compute_dtype != np.float64:
            W = W.astype(compute_dtype)
            U = U.astype(compute_dtype)
            b = b.astype(compute_dtype)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (batch, time):
                raise ModelError(
                    f"mask shape {mask.shape} does not match "
                    f"({batch}, {time})"
                )
        # One flat input projection for every (batch, frame) pair.
        x_proj = (
            inputs.reshape(batch * time, self.input_dim) @ W
        ).reshape(batch, time, 4 * hidden)
        h = np.zeros((batch, hidden), dtype=compute_dtype)
        c = np.zeros((batch, hidden), dtype=compute_dtype)
        hs = np.empty((batch, time, hidden), dtype=compute_dtype)
        for t in range(time):
            gates = x_proj[:, t] + h @ U + b
            i = _sigmoid(gates[:, :hidden])
            f = _sigmoid(gates[:, hidden : 2 * hidden])
            g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
            o = _sigmoid(gates[:, 3 * hidden :])
            c_new = f * c + i * g
            h_new = o * np.tanh(c_new)
            if mask is None:
                c, h = c_new, h_new
            else:
                valid = mask[:, t, np.newaxis]
                c = np.where(valid, c_new, c)
                h = np.where(valid, h_new, h)
            hs[:, t] = h
        return hs

    def backward(self, grad_hs: np.ndarray) -> np.ndarray:
        """BPTT given upstream gradients on every hidden state.

        Accumulates parameter gradients in :attr:`grads` and returns the
        gradient with respect to the inputs.
        """
        if self._cache is None:
            raise ModelError("backward called before forward")
        cache = self._cache
        inputs = cache["x"]
        batch, time, _ = inputs.shape
        hidden = self.hidden_dim
        grad_hs = np.asarray(grad_hs, dtype=np.float64)
        if grad_hs.shape != (batch, time, hidden):
            raise ModelError(
                f"grad_hs shape {grad_hs.shape} does not match "
                f"({batch}, {time}, {hidden})"
            )
        W, U = self.params["W"], self.params["U"]
        dW = np.zeros_like(W)
        dU = np.zeros_like(U)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(inputs)
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))
        for t in reversed(range(time)):
            i = cache["i"][:, t]
            f = cache["f"][:, t]
            g = cache["g"][:, t]
            o = cache["o"][:, t]
            tanh_c = cache["tanh_c"][:, t]
            c_prev = cache["c_prev"][:, t]
            h_prev = cache["h_prev"][:, t]

            dh = grad_hs[:, t] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f

            d_gates = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            dW += inputs[:, t].T @ d_gates
            dU += h_prev.T @ d_gates
            db += d_gates.sum(axis=0)
            dx[:, t] = d_gates @ W.T
            dh_next = d_gates @ U.T
        self.grads["W"] += dW
        self.grads["U"] += dU
        self.grads["b"] += db
        self._cache = None
        return dx

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for key in self.grads:
            self.grads[key][...] = 0.0
