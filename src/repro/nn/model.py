"""Sequence classifier: BRNN + dense softmax head, with training loop.

This is the paper's phoneme-detection architecture (§ V-B): a
bidirectional LSTM over MFCC frames, a 2-neuron dense layer, softmax
cross-entropy, trained with Adam.  Class count is a parameter so the same
container serves the binary effective-phoneme detector and any richer
phoneme classifier built on top.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelError
from repro.nn.adam import Adam
from repro.nn.bidirectional import BidirectionalLSTM
from repro.nn.data import iterate_minibatches
from repro.nn.dense import Dense
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.utils.rng import SeedLike, as_generator, child_rng

#: Reserved archive key that stores (input_dim, hidden_dim, n_classes).
META_KEY = "_meta"


def pack_param_arrays(
    params: Dict[str, np.ndarray],
    input_dim: int,
    hidden_dim: int,
    n_classes: int,
    extras: Optional[Dict[str, np.ndarray]] = None,
) -> Dict[str, np.ndarray]:
    """Flat array dict ready for ``np.savez``: params + architecture meta.

    Shared by :meth:`SequenceClassifier.save` and
    :meth:`repro.core.segmentation.PhonemeSegmenter.save`, which adds
    its feature statistics via ``extras``.
    """
    arrays = dict(params)
    arrays[META_KEY] = np.array(
        [input_dim, hidden_dim, n_classes], dtype=np.int64
    )
    if extras:
        arrays.update(extras)
    return arrays


def read_meta(archive, source: object) -> Tuple[int, int, int]:
    """(input_dim, hidden_dim, n_classes) recorded in an archive."""
    if META_KEY not in archive:
        raise ModelError(f"missing {META_KEY!r} in {source}")
    meta = np.asarray(archive[META_KEY]).ravel()
    if meta.size != 3:
        raise ModelError(
            f"malformed {META_KEY!r} in {source}: expected "
            f"(input_dim, hidden_dim, n_classes), got {meta.size} values"
        )
    return int(meta[0]), int(meta[1]), int(meta[2])


def restore_param_arrays(
    archive,
    params: Dict[str, np.ndarray],
    source: object,
    expected_meta: Optional[Tuple[int, int, int]] = None,
) -> Tuple[int, int, int]:
    """Copy archived weights into ``params`` in place, validating shape.

    ``expected_meta`` pins the live model's architecture: a saved
    (input_dim, hidden_dim, n_classes) that differs raises
    :class:`ModelError` instead of silently loading incompatible
    weights.  Returns the archive's meta triple.
    """
    meta = read_meta(archive, source)
    if expected_meta is not None and meta != tuple(expected_meta):
        raise ModelError(
            f"architecture mismatch loading {source}: saved "
            f"(input_dim, hidden_dim, n_classes)={meta} but the model "
            f"was built with {tuple(expected_meta)}"
        )
    for key, target in params.items():
        if key not in archive:
            raise ModelError(f"missing parameter {key!r} in {source}")
        value = np.asarray(archive[key])
        if value.shape != target.shape:
            raise ModelError(
                f"parameter {key!r} in {source} has shape "
                f"{value.shape}, expected {target.shape}"
            )
        target[...] = value
    return meta


class SequenceClassifier:
    """Per-frame sequence classifier (BRNN → dense → softmax).

    Parameters
    ----------
    input_dim:
        Feature dimension per frame (14 MFCCs in the paper).
    hidden_dim:
        LSTM units per direction (64 in the paper).
    n_classes:
        Output classes (2 for effective-phoneme detection).
    rng:
        Seed for weight initialization.

    Examples
    --------
    >>> model = SequenceClassifier(input_dim=4, hidden_dim=8, rng=0)
    >>> import numpy as np
    >>> x = np.zeros((2, 5, 4))
    >>> model.predict_proba(x).shape
    (2, 5, 2)
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 64,
        n_classes: int = 2,
        rng: SeedLike = None,
    ) -> None:
        if n_classes < 2:
            raise ModelError(f"n_classes must be >= 2, got {n_classes}")
        generator = as_generator(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.n_classes = n_classes
        self.brnn = BidirectionalLSTM(
            input_dim, hidden_dim, rng=child_rng(generator, "brnn")
        )
        self.head = Dense(
            hidden_dim, n_classes, rng=child_rng(generator, "head")
        )
        self._trained = False

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def forward(
        self,
        inputs: np.ndarray,
        training: bool = True,
        mask: Optional[np.ndarray] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Per-frame logits, shape ``(batch, time, n_classes)``.

        ``training=False`` runs the allocation-light inference path:
        no BPTT caches, no instance-state writes (safe to share the
        model across threads), an optional frame-validity ``mask`` for
        right-padded batches, and an opt-in reduced-precision
        ``dtype`` (e.g. ``np.float32``).

        Batch-size-independence: OpenBLAS dispatches single-row
        matmuls to a different kernel than multi-row ones, whose
        results can differ in the last ulp.  The inference path
        therefore mirrors a singleton batch to two identical rows (and
        flattens every matmul over the batch*time axis), so a sequence
        scored alone produces bitwise the same frames as the same
        sequence scored inside any larger batch.
        """
        if training:
            if mask is not None or dtype is not None:
                raise ModelError(
                    "mask/dtype are inference-only options; call "
                    "forward with training=False"
                )
            hidden = self.brnn.forward(
                np.asarray(inputs, dtype=np.float64)
            )
            return self.head.forward(hidden)
        inputs = np.asarray(inputs)
        if inputs.ndim != 3:
            raise ModelError(
                f"expected (batch, time, features) input, got "
                f"{inputs.shape}"
            )
        mirrored = inputs.shape[0] == 1
        if mirrored:
            inputs = np.concatenate([inputs, inputs], axis=0)
            if mask is not None:
                mask = np.concatenate([mask, mask], axis=0)
        hidden = self.brnn.forward(
            inputs, training=False, mask=mask, dtype=dtype
        )
        logits = self.head.forward(hidden, training=False, dtype=dtype)
        return logits[:1] if mirrored else logits

    def predict_proba(
        self,
        inputs: np.ndarray,
        mask: Optional[np.ndarray] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Per-frame class probabilities (inference fast path)."""
        return softmax(
            self.forward(inputs, training=False, mask=mask, dtype=dtype)
        )

    def predict(
        self,
        inputs: np.ndarray,
        mask: Optional[np.ndarray] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Per-frame argmax labels, shape ``(batch, time)``."""
        return np.argmax(
            self.forward(inputs, training=False, mask=mask, dtype=dtype),
            axis=-1,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def train_step(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        optimizer: Adam,
        mask: Optional[np.ndarray] = None,
    ) -> float:
        """One forward/backward/update pass; returns the batch loss.

        ``mask`` (same shape as ``labels``) zeroes the loss contribution
        of padded frames.
        """
        logits = self.forward(inputs)
        loss, grad = softmax_cross_entropy(logits, labels)
        if mask is not None:
            mask = np.asarray(mask, dtype=np.float64)
            if mask.shape != labels.shape:
                raise ModelError(
                    f"mask shape {mask.shape} != labels {labels.shape}"
                )
            scale = float(mask.mean()) + 1e-12
            grad = grad * mask[..., np.newaxis] / scale
            # Recompute the displayed loss over unmasked frames only.
            probabilities = softmax(logits)
            flat = probabilities.reshape(-1, self.n_classes)
            picked = flat[np.arange(flat.shape[0]), labels.reshape(-1)]
            losses = -np.log(picked + 1e-12).reshape(labels.shape)
            loss = float((losses * mask).sum() / (mask.sum() + 1e-12))
        self.brnn.zero_grads()
        self.head.zero_grads()
        grad_hidden = self.head.backward(grad)
        self.brnn.backward(grad_hidden)
        params = self.params
        optimizer.update(params, self.grads)
        return loss

    def fit(
        self,
        sequences: Sequence[np.ndarray],
        labels: Sequence[np.ndarray],
        epochs: int = 5,
        batch_size: int = 16,
        learning_rate: float = 1e-2,
        rng: SeedLike = None,
        verbose: bool = False,
    ) -> List[float]:
        """Train on variable-length sequences with per-frame labels.

        Sequences are bucketed into padded minibatches with loss masking.
        Returns the mean loss per epoch.
        """
        generator = as_generator(rng)
        optimizer = Adam(learning_rate=learning_rate)
        history = []
        for epoch in range(epochs):
            epoch_losses = []
            for batch_x, batch_y, batch_mask in iterate_minibatches(
                sequences, labels, batch_size,
                rng=child_rng(generator, f"epoch{epoch}"),
            ):
                loss = self.train_step(
                    batch_x, batch_y, optimizer, mask=batch_mask
                )
                epoch_losses.append(loss)
            mean_loss = float(np.mean(epoch_losses))
            history.append(mean_loss)
            if verbose:  # pragma: no cover - logging only
                print(f"epoch {epoch + 1}/{epochs}: loss {mean_loss:.4f}")
        self._trained = True
        return history

    # ------------------------------------------------------------------
    # Parameters and persistence
    # ------------------------------------------------------------------

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Flat parameter dict across all layers."""
        merged = {
            f"brnn_{key}": value for key, value in self.brnn.params.items()
        }
        merged.update(
            {f"head_{key}": value for key, value in self.head.params.items()}
        )
        return merged

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        """Flat gradient dict matching :attr:`params`."""
        merged = {
            f"brnn_{key}": value for key, value in self.brnn.grads.items()
        }
        merged.update(
            {f"head_{key}": value for key, value in self.head.grads.items()}
        )
        return merged

    def save(self, path: Union[str, Path]) -> None:
        """Serialize architecture + weights to an ``.npz`` file."""
        path = Path(path)
        np.savez(
            path,
            **pack_param_arrays(
                self.params,
                self.input_dim,
                self.hidden_dim,
                self.n_classes,
            ),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SequenceClassifier":
        """Restore a model saved with :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise ModelError(f"model file not found: {path}")
        with np.load(path) as archive:
            input_dim, hidden_dim, n_classes = read_meta(archive, path)
            model = cls(
                input_dim=input_dim,
                hidden_dim=hidden_dim,
                n_classes=n_classes,
            )
            restore_param_arrays(archive, model.params, path)
        model._trained = True
        return model
