"""Dense (fully connected) layer applied per time step."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import glorot_uniform
from repro.utils.rng import SeedLike


class Dense:
    """Affine map ``y = x @ W + b`` over the last axis."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        rng: SeedLike = None,
    ) -> None:
        if input_dim <= 0 or output_dim <= 0:
            raise ModelError(
                f"dims must be > 0, got input={input_dim}, "
                f"output={output_dim}"
            )
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.params: Dict[str, np.ndarray] = {
            "W": glorot_uniform((input_dim, output_dim), rng=rng),
            "b": np.zeros(output_dim),
        }
        self.grads: Dict[str, np.ndarray] = {
            key: np.zeros_like(value) for key, value in self.params.items()
        }
        self._cache: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Apply the affine map; caches inputs for :meth:`backward`."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape[-1] != self.input_dim:
            raise ModelError(
                f"expected last dim {self.input_dim}, got {inputs.shape}"
            )
        self._cache = inputs
        return inputs @ self.params["W"] + self.params["b"]

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return input gradients."""
        if self._cache is None:
            raise ModelError("backward called before forward")
        inputs = self._cache
        flat_in = inputs.reshape(-1, self.input_dim)
        flat_grad = np.asarray(grad_outputs, dtype=np.float64).reshape(
            -1, self.output_dim
        )
        self.grads["W"] += flat_in.T @ flat_grad
        self.grads["b"] += flat_grad.sum(axis=0)
        self._cache = None
        return (flat_grad @ self.params["W"].T).reshape(inputs.shape)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for key in self.grads:
            self.grads[key][...] = 0.0
