"""Dense (fully connected) layer applied per time step."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import glorot_uniform
from repro.utils.rng import SeedLike


class Dense:
    """Affine map ``y = x @ W + b`` over the last axis."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        rng: SeedLike = None,
    ) -> None:
        if input_dim <= 0 or output_dim <= 0:
            raise ModelError(
                f"dims must be > 0, got input={input_dim}, "
                f"output={output_dim}"
            )
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.params: Dict[str, np.ndarray] = {
            "W": glorot_uniform((input_dim, output_dim), rng=rng),
            "b": np.zeros(output_dim),
        }
        self.grads: Dict[str, np.ndarray] = {
            key: np.zeros_like(value) for key, value in self.params.items()
        }
        self._cache: Optional[np.ndarray] = None

    def forward(
        self,
        inputs: np.ndarray,
        training: bool = True,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Apply the affine map.

        With ``training=True`` (default) the inputs are cached for
        :meth:`backward`.  ``training=False`` skips the cache (no
        instance state is written, so concurrent inference on a shared
        layer is safe) and runs the matmul on the 2-D flattened view so
        every call — whatever its batch/time shape — exercises the same
        BLAS kernel family; ``dtype`` opts in to reduced-precision
        compute.
        """
        if not training:
            compute_dtype = np.dtype(dtype) if dtype is not None else (
                np.dtype(np.float64)
            )
            inputs = np.asarray(inputs, dtype=compute_dtype)
            if inputs.shape[-1] != self.input_dim:
                raise ModelError(
                    f"expected last dim {self.input_dim}, "
                    f"got {inputs.shape}"
                )
            W, b = self.params["W"], self.params["b"]
            if compute_dtype != np.float64:
                W = W.astype(compute_dtype)
                b = b.astype(compute_dtype)
            flat = inputs.reshape(-1, self.input_dim)
            return (flat @ W + b).reshape(
                inputs.shape[:-1] + (self.output_dim,)
            )
        if dtype is not None:
            raise ModelError(
                "dtype is an inference-only option; call forward with "
                "training=False"
            )
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape[-1] != self.input_dim:
            raise ModelError(
                f"expected last dim {self.input_dim}, got {inputs.shape}"
            )
        self._cache = inputs
        return inputs @ self.params["W"] + self.params["b"]

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return input gradients."""
        if self._cache is None:
            raise ModelError("backward called before forward")
        inputs = self._cache
        flat_in = inputs.reshape(-1, self.input_dim)
        flat_grad = np.asarray(grad_outputs, dtype=np.float64).reshape(
            -1, self.output_dim
        )
        self.grads["W"] += flat_in.T @ flat_grad
        self.grads["b"] += flat_grad.sum(axis=0)
        self._cache = None
        return (flat_grad @ self.params["W"].T).reshape(inputs.shape)

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for key in self.grads:
            self.grads[key][...] = 0.0
