"""Losses and probability utilities."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ModelError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponent = np.exp(shifted)
    return exponent / exponent.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy over integer labels + gradient w.r.t. logits.

    Parameters
    ----------
    logits:
        Array of shape ``(..., n_classes)``.
    labels:
        Integer labels of shape ``(...)`` matching logits' leading axes.

    Returns
    -------
    (loss, grad):
        Scalar mean loss, and gradient of the same shape as ``logits``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if logits.shape[:-1] != labels.shape:
        raise ModelError(
            f"labels shape {labels.shape} does not match logits leading "
            f"shape {logits.shape[:-1]}"
        )
    probabilities = softmax(logits)
    flat_probs = probabilities.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1)
    n = flat_labels.size
    picked = flat_probs[np.arange(n), flat_labels]
    loss = float(-np.mean(np.log(picked + 1e-12)))
    grad_flat = flat_probs.copy()
    grad_flat[np.arange(n), flat_labels] -= 1.0
    grad = (grad_flat / n).reshape(logits.shape)
    return loss, grad
