"""Batching utilities for variable-length labelled sequences."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.utils.rng import SeedLike, as_generator


def pad_sequences(
    sequences: Sequence[np.ndarray],
    labels: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad sequences/labels to a common length with a validity mask.

    Returns ``(x, y, mask)`` where ``x`` has shape
    ``(batch, max_time, features)``, ``y`` and ``mask`` have shape
    ``(batch, max_time)``; padded label positions are 0 with mask 0.
    """
    if len(sequences) != len(labels):
        raise ModelError(
            f"{len(sequences)} sequences but {len(labels)} label arrays"
        )
    if not sequences:
        raise ModelError("need at least one sequence")
    feature_dim = np.asarray(sequences[0]).shape[-1]
    max_time = max(np.asarray(seq).shape[0] for seq in sequences)
    batch = len(sequences)
    x = np.zeros((batch, max_time, feature_dim))
    y = np.zeros((batch, max_time), dtype=np.int64)
    mask = np.zeros((batch, max_time))
    for index, (sequence, label) in enumerate(zip(sequences, labels)):
        sequence = np.asarray(sequence, dtype=np.float64)
        label = np.asarray(label, dtype=np.int64)
        if sequence.shape[0] != label.shape[0]:
            raise ModelError(
                f"sequence {index}: {sequence.shape[0]} frames but "
                f"{label.shape[0]} labels"
            )
        length = sequence.shape[0]
        x[index, :length] = sequence
        y[index, :length] = label
        mask[index, :length] = 1.0
    return x, y, mask


def iterate_minibatches(
    sequences: Sequence[np.ndarray],
    labels: Sequence[np.ndarray],
    batch_size: int,
    rng: SeedLike = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield shuffled padded minibatches ``(x, y, mask)``.

    Sequences are sorted into length-adjacent buckets before batching to
    limit padding waste, then bucket order is shuffled.
    """
    if batch_size <= 0:
        raise ModelError(f"batch_size must be > 0, got {batch_size}")
    generator = as_generator(rng)
    order = np.argsort([np.asarray(seq).shape[0] for seq in sequences])
    batches = [
        order[start : start + batch_size]
        for start in range(0, len(order), batch_size)
    ]
    generator.shuffle(batches)
    for batch_indices in batches:
        batch_sequences = [sequences[i] for i in batch_indices]
        batch_labels = [labels[i] for i in batch_indices]
        yield pad_sequences(batch_sequences, batch_labels)
