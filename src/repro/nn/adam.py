"""Adam optimizer (Kingma & Ba), operating on flat parameter dicts."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


class Adam:
    """Adam with bias correction; the paper trains its BRNN with ADAM."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be > 0")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigurationError("betas must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._step = 0

    def update(
        self,
        params: Dict[str, np.ndarray],
        grads: Dict[str, np.ndarray],
    ) -> None:
        """Apply one Adam step in place.

        ``params`` and ``grads`` must share keys; parameter arrays are
        modified in place so layers holding references see the update.
        """
        if set(params) != set(grads):
            raise ConfigurationError(
                "params and grads must have identical keys"
            )
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for key, gradient in grads.items():
            if key not in self._m:
                self._m[key] = np.zeros_like(gradient)
                self._v[key] = np.zeros_like(gradient)
            self._m[key] = (
                self.beta1 * self._m[key] + (1 - self.beta1) * gradient
            )
            self._v[key] = (
                self.beta2 * self._v[key] + (1 - self.beta2) * gradient**2
            )
            m_hat = self._m[key] / correction1
            v_hat = self._v[key] / correction2
            params[key] -= (
                self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            )
