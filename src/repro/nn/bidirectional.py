"""Bidirectional LSTM (BRNN) wrapper.

Implements Eq. (4) of the paper: a forward LSTM reads the sequence
left-to-right, a backward LSTM reads it right-to-left, and the temporal
representation at each frame is the *sum* of the two hidden states
(``h_t = h→_t + h←_t``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.lstm import LSTMLayer
from repro.utils.rng import SeedLike, as_generator, child_rng


class BidirectionalLSTM:
    """Forward + backward LSTM whose outputs are summed per frame."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: SeedLike = None,
    ) -> None:
        generator = as_generator(rng)
        self.forward_layer = LSTMLayer(
            input_dim, hidden_dim, rng=child_rng(generator, "fwd")
        )
        self.backward_layer = LSTMLayer(
            input_dim, hidden_dim, rng=child_rng(generator, "bwd")
        )
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

    def forward(
        self,
        inputs: np.ndarray,
        training: bool = True,
        mask: Optional[np.ndarray] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        """Sum of forward-pass and time-reversed-pass hidden states.

        ``training=False`` selects both layers' inference fast path
        (no BPTT caches, no instance-state writes).  ``mask`` marks
        valid frames of right-padded sequences: the backward layer
        sees the reversed mask, so its recurrence stays at the initial
        state across the (now leading) padding and enters the last
        valid frame with exactly the state an unpadded run would have.
        ``dtype`` opts in to reduced-precision compute (inference
        only).
        """
        if training:
            if mask is not None or dtype is not None:
                raise ModelError(
                    "mask/dtype are inference-only options; call "
                    "forward with training=False"
                )
            inputs = np.asarray(inputs, dtype=np.float64)
            h_forward = self.forward_layer.forward(inputs)
            h_backward = self.backward_layer.forward(inputs[:, ::-1])
            return h_forward + h_backward[:, ::-1]
        inputs = np.asarray(inputs)
        reversed_mask = None
        if mask is not None:
            reversed_mask = np.asarray(mask, dtype=bool)[:, ::-1]
        h_forward = self.forward_layer.forward_inference(
            inputs, mask=mask, dtype=dtype
        )
        h_backward = self.backward_layer.forward_inference(
            inputs[:, ::-1], mask=reversed_mask, dtype=dtype
        )
        return h_forward + h_backward[:, ::-1]

    def backward(self, grad_hs: np.ndarray) -> np.ndarray:
        """Backprop through both directions; returns input gradients."""
        dx_forward = self.forward_layer.backward(grad_hs)
        dx_backward = self.backward_layer.backward(grad_hs[:, ::-1])
        return dx_forward + dx_backward[:, ::-1]

    def zero_grads(self) -> None:
        """Reset both directions' accumulated gradients."""
        self.forward_layer.zero_grads()
        self.backward_layer.zero_grads()

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Flat parameter dict with direction-prefixed keys."""
        merged = {}
        for key, value in self.forward_layer.params.items():
            merged[f"fwd_{key}"] = value
        for key, value in self.backward_layer.params.items():
            merged[f"bwd_{key}"] = value
        return merged

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        """Flat gradient dict matching :attr:`params`."""
        merged = {}
        for key, value in self.forward_layer.grads.items():
            merged[f"fwd_{key}"] = value
        for key, value in self.backward_layer.grads.items():
            merged[f"bwd_{key}"] = value
        return merged
