"""``repro fleet`` — serve and load-test the sharded fleet.

Subcommands
-----------
``serve``
    Start an N-shard fleet, answer a short self-test of Zipf-user
    traffic, and print the fleet metrics snapshot.
``loadgen``
    Drive a fleet with heavy-tailed open-loop Zipf-user traffic and
    print the client report plus the fleet metrics snapshot.  Exits
    non-zero if any routed request failed to reach a terminal outcome
    (the ``make fleet-smoke`` zero-dropped-on-shutdown assertion).

Both build the fleet in-process.  ``--engine sim`` uses the
calibrated-delay shard engine (scaling/SLO behaviour without the DSP
cost); ``--engine service`` runs real warm verification services per
shard.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.errors import ConfigurationError


def add_fleet_parser(subparsers) -> None:
    """Attach the ``fleet`` command tree to the root CLI parser."""
    fleet = subparsers.add_parser(
        "fleet", help="user-sharded async serving fleet"
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--shards", type=int, default=2,
        help="service shards in the fleet",
    )
    common.add_argument(
        "--engine", choices=["sim", "service"], default="sim",
        help=(
            "shard engine: sim (calibrated-delay capacity model) or "
            "service (real warm verification workers)"
        ),
    )
    common.add_argument(
        "--workers", type=int, default=1,
        help="initial warm workers per shard",
    )
    common.add_argument(
        "--max-workers", type=int, default=4,
        help=(
            "autoscaling ceiling per shard "
            "(equal to --workers disables growth)"
        ),
    )
    common.add_argument(
        "--users", type=int, default=100_000,
        help="synthetic user population size",
    )
    common.add_argument(
        "--zipf-s", type=float, default=1.1, metavar="S",
        help="Zipf exponent of user activity",
    )
    common.add_argument(
        "--rate", type=float, default=100.0, metavar="RPS",
        help="mean open-loop arrival rate",
    )
    common.add_argument(
        "--slo-p95-ms", type=float, default=150.0, metavar="MS",
        help="rolling-p95 SLO target per shard",
    )
    common.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="fleet-wide per-request deadline",
    )
    common.add_argument(
        "--failover", type=int, default=1,
        help="neighbor shards tried when the owner is down",
    )
    common.add_argument(
        "--queue-capacity", type=int, default=16,
        help="per-shard admission-queue bound",
    )
    common.add_argument(
        "--service-time-ms", type=float, default=6.0, metavar="MS",
        help="sim engine: per-request service time",
    )
    common.add_argument(
        "--segmenter", choices=["none", "fast", "rd"], default="rd",
        help=(
            "service engine: segmenter backend workers warm up with"
        ),
    )
    common.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help=(
            "artifact-store directory: per-user profiles (and "
            "segmenter weights) are published/loaded there "
            "(default: $REPRO_STORE_DIR)"
        ),
    )
    common.add_argument("--seed", type=int, default=0)
    actions = fleet.add_subparsers(dest="fleet_command", required=True)

    serve = actions.add_parser(
        "serve", help="start a fleet and answer a short self-test",
        parents=[common],
    )
    serve.add_argument(
        "--requests", type=int, default=24,
        help="self-test requests to answer before exiting",
    )

    loadgen = actions.add_parser(
        "loadgen", help="heavy-tailed Zipf-user load against a fleet",
        parents=[common],
    )
    loadgen.add_argument(
        "--requests", type=int, default=200,
        help="total requests to issue",
    )
    loadgen.add_argument(
        "--alpha", type=float, default=2.5,
        help="Pareto shape of interarrival gaps (> 1)",
    )
    loadgen.add_argument(
        "--priority-fraction", type=float, default=0.1,
        help="fraction of requests marked protected-priority",
    )


def _build_front_door(args: argparse.Namespace):
    """Front door + shard factory from the parsed common flags."""
    from repro.fleet.frontdoor import FleetConfig, FleetFrontDoor
    from repro.fleet.profiles import registry_profile_loader
    from repro.fleet.shard import (
        SimulatedEngineConfig,
        service_shard_factory,
        simulated_shard_factory,
    )
    from repro.fleet.slo import Autoscaler, AutoscalerConfig, SloConfig
    from repro.store.cli import resolve_store_dir

    slo = SloConfig(target_p95_s=args.slo_p95_ms / 1e3)
    autoscaler_config = AutoscalerConfig(
        min_workers=min(args.workers, args.max_workers),
        max_workers=max(args.workers, args.max_workers),
    )

    def autoscaler_factory() -> Autoscaler:
        return Autoscaler(autoscaler_config, slo)

    if args.engine == "sim":
        factory = simulated_shard_factory(
            engine_config=SimulatedEngineConfig(
                n_workers=args.workers,
                service_time_s=args.service_time_ms / 1e3,
                queue_capacity=args.queue_capacity,
            ),
            slo=slo,
            autoscaler_factory=autoscaler_factory,
        )
    else:
        from repro.serve import PipelineSpec, ServiceConfig

        store_dir = resolve_store_dir(args.store_dir)
        if args.segmenter == "none":
            spec = PipelineSpec(use_segmenter=False)
        elif args.segmenter == "rd":
            spec = PipelineSpec(segmenter_backend="rd")
        else:
            spec = PipelineSpec(
                segmenter_seed=args.seed,
                n_speakers=2,
                n_per_phoneme=3,
                epochs=3,
                store_dir=store_dir,
            )
        profile_loader = None
        if store_dir is not None:
            from repro.store import ModelRegistry

            profile_loader = registry_profile_loader(
                ModelRegistry(store_dir)
            )
        factory = service_shard_factory(
            spec,
            ServiceConfig(
                n_workers=args.workers,
                queue_capacity=args.queue_capacity,
                backpressure="reject",
                default_deadline_s=args.deadline,
            ),
            profile_loader=profile_loader,
            slo=slo,
            autoscaler_factory=autoscaler_factory,
        )
    config = FleetConfig(
        n_shards=args.shards,
        failover=args.failover,
        default_deadline_s=args.deadline,
        slo=slo,
    )
    return FleetFrontDoor(factory, config)


def _print_outcome(report, metrics) -> int:
    from repro.fleet.metrics import format_fleet_metrics

    degraded = (
        f" ({report.n_degraded} degraded)" if report.n_degraded else ""
    )
    print(
        f"fleet: {report.n_issued} issued, "
        f"{report.n_served} served{degraded}, "
        f"{report.n_rerouted} rerouted, "
        f"{report.n_rejected} rejected, {report.n_shed} shed, "
        f"{report.n_failed} failed in {report.wall_s:.2f}s "
        f"({report.throughput_rps:.2f} req/s)"
    )
    if report.latencies_s:
        print(
            "latency p50/p95/p99: "
            f"{report.latency_percentile(50) * 1e3:.1f} / "
            f"{report.latency_percentile(95) * 1e3:.1f} / "
            f"{report.latency_percentile(99) * 1e3:.1f} ms"
        )
    print(format_fleet_metrics(metrics))
    if metrics.n_unresolved != 0:
        print(
            f"error: {metrics.n_unresolved} request(s) never reached "
            "a terminal outcome (dropped on shutdown?)"
        )
        return 1
    return 0


def _run(args: argparse.Namespace, loadgen_config) -> int:
    from repro.fleet.loadgen import run_fleet_loadgen

    try:
        front_door = _build_front_door(args)
    except ConfigurationError as error:
        raise SystemExit(f"error: {error}") from None
    print(
        f"Starting {args.shards} shard(s) x {args.workers} worker(s) "
        f"({args.engine} engine)..."
    )
    with front_door:
        report = run_fleet_loadgen(front_door, loadgen_config)
        metrics = front_door.metrics()
    return _print_outcome(report, metrics)


def cmd_fleet(args: argparse.Namespace) -> int:
    """Dispatch one ``fleet`` subcommand; returns the exit code."""
    from repro.fleet.loadgen import FleetLoadgenConfig

    try:
        if args.fleet_command == "serve":
            config = FleetLoadgenConfig(
                n_requests=args.requests,
                users=args.users,
                zipf_s=args.zipf_s,
                rate_rps=args.rate,
                seed=args.seed,
                deadline_s=args.deadline,
                pool_size=min(args.requests, 6),
            )
        else:
            config = FleetLoadgenConfig(
                n_requests=args.requests,
                users=args.users,
                zipf_s=args.zipf_s,
                rate_rps=args.rate,
                pareto_alpha=args.alpha,
                priority_fraction=args.priority_fraction,
                seed=args.seed,
                deadline_s=args.deadline,
            )
    except ConfigurationError as error:
        raise SystemExit(f"error: {error}") from None
    return _run(args, config)
