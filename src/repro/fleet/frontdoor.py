"""Asyncio front door: user-affine routing over the shard fleet.

The front door is the fleet's single entry point.  It owns a
consistent-hash ring over N :class:`~repro.fleet.shard.ServiceShard`
instances and, per request:

1. resolves the user's preference list on the ring (owner first,
   then the failover walk),
2. applies the SLO shedding valve *before* dispatch, so overload is
   refused with a retry-after hint instead of queued into a breach,
3. looks up the user's serving profile in the target shard's LRU,
4. submits to the shard's engine and awaits the response under the
   fleet-wide deadline,
5. on :class:`~repro.errors.ShardUnavailableError`, degrades to the
   next shard on the preference list; when the walk is exhausted the
   request is rejected with retry-after — never silently dropped.

The event loop runs on a dedicated background thread so synchronous
callers (the load generator, tests, the CLI) drive the fleet through
:meth:`FleetFrontDoor.submit_threadsafe` /
:meth:`FleetFrontDoor.verify`.  Every accepted request is tracked
in-flight; :meth:`FleetFrontDoor.stop` drains them before tearing the
loop down, which is the "zero dropped on shutdown" guarantee the
smoke target asserts.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import (
    ConfigurationError,
    ServiceOverloadError,
    ShardUnavailableError,
)
from repro.fleet.hashing import DEFAULT_VNODES, ConsistentHashRing
from repro.fleet.metrics import FleetMetrics, FleetMetricsCollector
from repro.fleet.profiles import UserProfile
from repro.fleet.shard import ServiceShard
from repro.fleet.slo import SheddingPolicy, SloConfig
from repro.serve.request import (
    RequestStatus,
    VerificationRequest,
    VerificationResponse,
)
from repro.utils.rng import derive_seed


@dataclass
class FleetConfig:
    """Front-door configuration.

    Attributes
    ----------
    n_shards:
        Shards built at :meth:`FleetFrontDoor.start` (ids
        ``shard-0 .. shard-{n-1}``).
    vnodes:
        Virtual nodes per shard on the ring.
    failover:
        Extra preference-list shards tried when the owner is down.
    default_deadline_s:
        Fleet-wide deadline applied to requests that carry none.
    deadline_grace_s:
        Extra wait past the deadline before the front door gives up
        on an in-flight request.  Engines degrade late requests
        rather than drop them, so a small grace converts most
        would-be timeouts into (degraded) verdicts.
    slo:
        Shedding target shared by the valve and the shards' windows.
    autoscale_interval_s:
        Period of the background autoscale tick (0 disables it).
    apply_profiles:
        Whether to personalize verdicts with per-user thresholds.
    """

    n_shards: int = 2
    vnodes: int = DEFAULT_VNODES
    failover: int = 1
    default_deadline_s: Optional[float] = None
    deadline_grace_s: float = 0.25
    slo: SloConfig = field(default_factory=SloConfig)
    autoscale_interval_s: float = 0.5
    apply_profiles: bool = True

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.failover < 0:
            raise ConfigurationError(
                f"failover must be >= 0, got {self.failover}"
            )
        if (
            self.default_deadline_s is not None
            and self.default_deadline_s <= 0
        ):
            raise ConfigurationError(
                f"default_deadline_s must be > 0 (or None), "
                f"got {self.default_deadline_s}"
            )
        if self.deadline_grace_s < 0:
            raise ConfigurationError(
                f"deadline_grace_s must be >= 0, "
                f"got {self.deadline_grace_s}"
            )
        if self.autoscale_interval_s < 0:
            raise ConfigurationError(
                f"autoscale_interval_s must be >= 0, "
                f"got {self.autoscale_interval_s}"
            )


@dataclass
class FleetRequest:
    """One verification job addressed to a *user*, not a shard.

    The front door derives the shard from ``user_id`` via the ring.
    ``seed`` defaults to a deterministic function of ``(user_id,
    request_id)`` so replaying a request anywhere in the fleet yields
    the same verdict.
    """

    user_id: str
    va_audio: np.ndarray
    wearable_audio: np.ndarray
    priority: int = 0
    request_id: str = ""
    seed: Optional[int] = None
    audio_rate: float = 16_000.0
    deadline_s: Optional[float] = None
    wearer_moving: bool = False

    def __post_init__(self) -> None:
        if not self.user_id:
            raise ConfigurationError("user_id must be non-empty")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return int(self.seed)
        return derive_seed(
            0, "fleet-request", self.user_id, self.request_id
        )


@dataclass
class FleetResponse:
    """Fleet-level answer for one request.

    ``total_s`` is the caller-observed latency (routing, queueing,
    failover and profile application included).  ``retry_after_s`` is
    set on every refusal (SLO shed, engine shed, rejection, fleet
    deadline) so callers can back off instead of hammering a hot
    shard.
    """

    request_id: str
    user_id: str
    status: RequestStatus
    shard_id: Optional[str] = None
    verdict: object = None
    degraded: bool = False
    rerouted: bool = False
    retry_after_s: Optional[float] = None
    queue_wait_s: float = 0.0
    total_s: float = 0.0
    error: Optional[str] = None
    profile_threshold: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.SERVED


class FleetFrontDoor:
    """User-sharded async serving tier over N verification shards.

    Parameters
    ----------
    shard_factory:
        ``shard_id -> ServiceShard`` (see
        :func:`repro.fleet.shard.service_shard_factory` /
        :func:`repro.fleet.shard.simulated_shard_factory`).
    config:
        Fleet-level knobs; shard-level ones live in the factory.
    """

    def __init__(
        self,
        shard_factory: Callable[[str], ServiceShard],
        config: Optional[FleetConfig] = None,
    ) -> None:
        self.config = config or FleetConfig()
        self._shard_factory = shard_factory
        self.shards: Dict[str, ServiceShard] = {}
        self.ring = ConsistentHashRing(vnodes=self.config.vnodes)
        self.collector = FleetMetricsCollector()
        self._shedder = SheddingPolicy(self.config.slo)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._autoscale_future: Optional["asyncio.Task"] = None
        self._lifecycle_lock = threading.Lock()
        self._started = False
        self._accepting = False
        self._inflight = 0
        self._drained = threading.Condition()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Build and warm the shards, then start the routing loop."""
        with self._lifecycle_lock:
            if self._started:
                return
            for index in range(self.config.n_shards):
                shard_id = f"shard-{index}"
                shard = self._shard_factory(shard_id)
                self.shards[shard_id] = shard
                self.ring.add(shard_id)
            for shard in self.shards.values():
                shard.start()
            self._loop = asyncio.new_event_loop()
            ready = threading.Event()
            self._thread = threading.Thread(
                target=self._run_loop,
                args=(ready,),
                name="fleet-frontdoor",
                daemon=True,
            )
            self._thread.start()
            ready.wait()
            if self.config.autoscale_interval_s > 0 and any(
                shard.autoscaler is not None
                for shard in self.shards.values()
            ):
                self._autoscale_future = (
                    asyncio.run_coroutine_threadsafe(
                        self._start_autoscale_task(), self._loop
                    ).result()
                )
            self._started = True
            self._accepting = True

    def _run_loop(self, ready: threading.Event) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(ready.set)
        self._loop.run_forever()

    def stop(self) -> None:
        """Drain in-flight requests, then tear everything down.

        Idempotent and safe to call concurrently.  New submissions
        are refused the moment stop begins; requests already accepted
        all resolve before the loop and the shards go away.
        """
        with self._lifecycle_lock:
            if not self._started:
                return
            self._accepting = False
            with self._drained:
                while self._inflight > 0:
                    self._drained.wait(timeout=0.1)
            assert self._loop is not None and self._thread is not None
            if self._autoscale_future is not None:
                task = self._autoscale_future
                self._autoscale_future = None
                # Cancel on-loop and await it, so the loop never stops
                # with a pending task (and never logs about one).
                asyncio.run_coroutine_threadsafe(
                    self._cancel_task(task), self._loop
                ).result()
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
            self._loop.close()
            self._loop = None
            self._thread = None
            for shard in self.shards.values():
                shard.stop()
            self._started = False

    def __enter__(self) -> "FleetFrontDoor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission surfaces
    # ------------------------------------------------------------------

    def submit_threadsafe(
        self, request: FleetRequest
    ) -> "Future[FleetResponse]":
        """Submit from any thread; the future resolves exactly once.

        The in-flight count is bumped *before* the coroutine is
        scheduled, so a concurrent :meth:`stop` always waits for this
        request.
        """
        if not self._accepting or self._loop is None:
            raise ConfigurationError(
                "front door is not accepting requests "
                "(not started, or stopping)"
            )
        self._enter_flight()
        try:
            return asyncio.run_coroutine_threadsafe(
                self._submit_tracked(request), self._loop
            )
        except Exception:
            self._exit_flight()
            raise

    def verify(self, request: FleetRequest) -> FleetResponse:
        """Blocking convenience wrapper over
        :meth:`submit_threadsafe`."""
        return self.submit_threadsafe(request).result()

    async def submit(self, request: FleetRequest) -> FleetResponse:
        """Async submission for callers already on the fleet loop."""
        if not self._accepting:
            raise ConfigurationError(
                "front door is not accepting requests "
                "(not started, or stopping)"
            )
        self._enter_flight()
        return await self._submit_tracked(request)

    def metrics(self) -> FleetMetrics:
        """Fleet snapshot with per-shard rollups."""
        return self.collector.snapshot(self.shards)

    # ------------------------------------------------------------------
    # In-flight tracking
    # ------------------------------------------------------------------

    def _enter_flight(self) -> None:
        with self._drained:
            self._inflight += 1

    def _exit_flight(self) -> None:
        with self._drained:
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.notify_all()

    async def _submit_tracked(
        self, request: FleetRequest
    ) -> FleetResponse:
        try:
            return await self._route(request)
        finally:
            self._exit_flight()

    # ------------------------------------------------------------------
    # Routing core
    # ------------------------------------------------------------------

    async def _route(self, request: FleetRequest) -> FleetResponse:
        start = time.monotonic()
        self.collector.record_routed()
        config = self.config
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else config.default_deadline_s
        )
        candidates = self.ring.preference(
            request.user_id, 1 + config.failover
        )
        owner = candidates[0]
        for shard_id in candidates:
            shard = self.shards[shard_id]
            if not shard.available:
                continue
            if self._shedder.should_shed(shard.window, request.priority):
                self.collector.record_shed_slo()
                return FleetResponse(
                    request_id=request.request_id,
                    user_id=request.user_id,
                    status=RequestStatus.SHED,
                    shard_id=shard_id,
                    retry_after_s=config.slo.retry_after_s,
                    total_s=time.monotonic() - start,
                    error=(
                        f"SLO shed: shard {shard_id} rolling p95 "
                        f"above {config.slo.target_p95_s:.3f}s target"
                    ),
                )
            profile: Optional[UserProfile] = None
            if config.apply_profiles:
                # LRU hit for the hot Zipf head; a cold miss derives
                # (or store-loads) inline, which is sub-millisecond
                # for derivation and rare enough not to matter for
                # the store path.
                profile = shard.profiles.get(request.user_id)
            verification = VerificationRequest(
                va_audio=request.va_audio,
                wearable_audio=request.wearable_audio,
                seed=request.resolved_seed(),
                request_id=request.request_id,
                audio_rate=request.audio_rate,
                deadline_s=deadline_s,
                wearer_moving=request.wearer_moving,
            )
            try:
                engine_future = shard.submit(verification)
            except ServiceOverloadError as error:
                self.collector.record_rejected()
                return FleetResponse(
                    request_id=request.request_id,
                    user_id=request.user_id,
                    status=RequestStatus.REJECTED,
                    shard_id=shard_id,
                    retry_after_s=config.slo.retry_after_s,
                    total_s=time.monotonic() - start,
                    error=str(error),
                )
            except ShardUnavailableError:
                continue
            timeout = None
            if deadline_s is not None:
                elapsed = time.monotonic() - start
                timeout = (
                    max(0.0, deadline_s - elapsed)
                    + config.deadline_grace_s
                )
            try:
                # shield(): a fleet timeout must not cancel the
                # engine-side future — the worker that picked the
                # request up will still resolve it (and a cancelled
                # concurrent future would blow up its set_result).
                response = await asyncio.wait_for(
                    asyncio.shield(
                        asyncio.wrap_future(engine_future)
                    ),
                    timeout,
                )
            except asyncio.TimeoutError:
                self.collector.record_failed()
                return FleetResponse(
                    request_id=request.request_id,
                    user_id=request.user_id,
                    status=RequestStatus.FAILED,
                    shard_id=shard_id,
                    retry_after_s=config.slo.retry_after_s,
                    total_s=time.monotonic() - start,
                    error=(
                        f"fleet deadline {deadline_s:.3f}s exceeded "
                        f"(+{config.deadline_grace_s:.3f}s grace)"
                    ),
                )
            return self._finish(
                request=request,
                response=response,
                shard_id=shard_id,
                rerouted=shard_id != owner,
                profile=profile,
                start=start,
            )
        # Preference walk exhausted: every candidate shard was down.
        self.collector.record_rejected()
        return FleetResponse(
            request_id=request.request_id,
            user_id=request.user_id,
            status=RequestStatus.REJECTED,
            shard_id=None,
            retry_after_s=config.slo.retry_after_s,
            total_s=time.monotonic() - start,
            error=(
                f"no available shard for user {request.user_id!r} "
                f"(tried {', '.join(candidates)})"
            ),
        )

    def _finish(
        self,
        request: FleetRequest,
        response: VerificationResponse,
        shard_id: str,
        rerouted: bool,
        profile: Optional[UserProfile],
        start: float,
    ) -> FleetResponse:
        total_s = time.monotonic() - start
        verdict = response.verdict
        threshold = None
        if (
            response.status is RequestStatus.SERVED
            and profile is not None
            and verdict is not None
            and profile.threshold is not None
        ):
            # Personalize post-hoc: the shared pipeline scores, the
            # user's own threshold decides.  Keeping the threshold
            # out of the batch key preserves micro-batching.
            threshold = profile.threshold
            verdict = dataclasses.replace(
                verdict, is_attack=profile.decide(verdict.score)
            )
        if response.status is RequestStatus.SERVED:
            self.collector.record_served(
                total_s=total_s,
                degraded=response.degraded,
                rerouted=rerouted,
            )
            retry_after = None
        elif response.status is RequestStatus.SHED:
            self.collector.record_shed_engine()
            retry_after = self.config.slo.retry_after_s
        else:
            self.collector.record_failed()
            retry_after = self.config.slo.retry_after_s
        return FleetResponse(
            request_id=request.request_id,
            user_id=request.user_id,
            status=response.status,
            shard_id=shard_id,
            verdict=verdict,
            degraded=response.degraded,
            rerouted=rerouted,
            retry_after_s=retry_after,
            queue_wait_s=response.queue_wait_s,
            total_s=total_s,
            error=response.error,
            profile_threshold=threshold,
        )

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------

    async def _start_autoscale_task(self) -> "asyncio.Task":
        return asyncio.get_event_loop().create_task(
            self._autoscale_loop()
        )

    @staticmethod
    async def _cancel_task(task: "asyncio.Task") -> None:
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def _autoscale_loop(self) -> None:
        interval = self.config.autoscale_interval_s
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(interval)
            # Resizes warm a replacement pool, which can take a
            # moment — run off-loop so routing latency never pays it.
            await loop.run_in_executor(None, self._autoscale_tick_all)

    def _autoscale_tick_all(self) -> None:
        now = time.monotonic()
        for shard in self.shards.values():
            try:
                shard.autoscale_tick(now)
            except Exception:
                # An autoscale failure (e.g. a shard dying mid-tick)
                # must not kill the background loop; the shard's
                # submit path reports the failure to callers.
                continue
