"""Fleet-wide metrics: front-door accounting + per-shard rollups.

The front door owns a :class:`FleetMetricsCollector` that counts every
request's fleet-level outcome (served, rerouted, SLO-shed, rejected
with retry-after, failed) and samples end-to-end latency as seen by
the *caller* — queueing, failover walks and profile application
included, which is the latency the SLO is written against.  A
:meth:`~FleetMetricsCollector.snapshot` folds in each shard's own
:class:`~repro.serve.metrics.ServiceMetrics`, rolling SLO window,
profile-cache counters, and applied scale events, so one
:class:`FleetMetrics` value answers both "is the fleet healthy" and
"which shard is why".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.serve.metrics import LatencySummary, ServiceMetrics


@dataclass(frozen=True)
class ShardStatus:
    """One shard's contribution to a fleet snapshot."""

    shard_id: str
    available: bool
    n_workers: int
    rolling_p95_s: float
    window_samples: int
    n_scale_events: int
    profile_cache: Mapping[str, int]
    service: ServiceMetrics


@dataclass(frozen=True)
class FleetMetrics:
    """Frozen fleet-level snapshot.

    Attributes
    ----------
    n_routed:
        Requests that entered the front door.
    n_served / n_degraded:
        Requests answered with a verdict (degraded ⊆ served).
    n_rerouted:
        Served requests that were answered by a failover shard, not
        their ring owner.
    n_shed_slo / n_shed_engine:
        Refused before dispatch by the SLO valve vs. evicted by an
        engine's ``shed-oldest`` queue.
    n_rejected:
        Refused with a retry-after hint (engine queue full, or no
        available shard on the preference walk).
    n_failed:
        Fleet-level failures (deadline exceeded fleet-wide, engine
        errors).
    wall_s / throughput_rps:
        Time since the collector started and served requests/second.
    latency:
        Caller-observed end-to-end percentiles over served requests.
    shards:
        Per-shard status blocks, keyed by shard id.
    stage_fallbacks:
        Union of the shards' ``stage:fallback`` counters.
    """

    n_routed: int
    n_served: int
    n_degraded: int
    n_rerouted: int
    n_shed_slo: int
    n_shed_engine: int
    n_rejected: int
    n_failed: int
    wall_s: float
    throughput_rps: float
    latency: Optional[LatencySummary]
    shards: Mapping[str, ShardStatus] = field(default_factory=dict)
    stage_fallbacks: Mapping[str, int] = field(default_factory=dict)

    @property
    def n_resolved(self) -> int:
        """Requests that reached a terminal fleet-level outcome."""
        return (
            self.n_served
            + self.n_shed_slo
            + self.n_shed_engine
            + self.n_rejected
            + self.n_failed
        )

    @property
    def n_unresolved(self) -> int:
        """Routed requests without a terminal outcome (should be 0
        after a drained shutdown — the smoke target asserts on it)."""
        return self.n_routed - self.n_resolved


class FleetMetricsCollector:
    """Thread-safe accumulator behind the front door."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self.n_routed = 0
        self.n_served = 0
        self.n_degraded = 0
        self.n_rerouted = 0
        self.n_shed_slo = 0
        self.n_shed_engine = 0
        self.n_rejected = 0
        self.n_failed = 0
        self._latencies: List[float] = []

    def record_routed(self) -> None:
        with self._lock:
            self.n_routed += 1

    def record_served(
        self,
        total_s: float,
        degraded: bool = False,
        rerouted: bool = False,
    ) -> None:
        with self._lock:
            self.n_served += 1
            if degraded:
                self.n_degraded += 1
            if rerouted:
                self.n_rerouted += 1
            self._latencies.append(float(total_s))

    def record_shed_slo(self) -> None:
        with self._lock:
            self.n_shed_slo += 1

    def record_shed_engine(self) -> None:
        with self._lock:
            self.n_shed_engine += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.n_rejected += 1

    def record_failed(self) -> None:
        with self._lock:
            self.n_failed += 1

    def snapshot(self, shards: Mapping[str, object] = ()) -> FleetMetrics:
        """Freeze the fleet counters, folding in per-shard status.

        ``shards`` maps shard id to a
        :class:`~repro.fleet.shard.ServiceShard` (typed loosely to
        avoid an import cycle).
        """
        statuses: Dict[str, ShardStatus] = {}
        fallbacks: Dict[str, int] = {}
        for shard_id, shard in dict(shards).items():
            service = shard.metrics()
            for key, count in service.stage_fallbacks.items():
                fallbacks[key] = fallbacks.get(key, 0) + count
            statuses[shard_id] = ShardStatus(
                shard_id=shard_id,
                available=shard.available,
                n_workers=shard.engine.n_workers,
                rolling_p95_s=shard.window.p95(),
                window_samples=len(shard.window),
                n_scale_events=len(shard.scale_events),
                profile_cache=shard.profiles.stats(),
                service=service,
            )
        with self._lock:
            wall_s = time.monotonic() - self._started_at
            return FleetMetrics(
                n_routed=self.n_routed,
                n_served=self.n_served,
                n_degraded=self.n_degraded,
                n_rerouted=self.n_rerouted,
                n_shed_slo=self.n_shed_slo,
                n_shed_engine=self.n_shed_engine,
                n_rejected=self.n_rejected,
                n_failed=self.n_failed,
                wall_s=wall_s,
                throughput_rps=(
                    self.n_served / wall_s if wall_s > 0 else 0.0
                ),
                latency=LatencySummary.from_samples(self._latencies),
                shards=statuses,
                stage_fallbacks=dict(fallbacks),
            )


def format_fleet_metrics(metrics: FleetMetrics) -> str:
    """Plain-text fleet report (style of ``format_service_metrics``)."""
    lines = [
        "fleet metrics",
        f"  routed      {metrics.n_routed}",
        (
            f"  served      {metrics.n_served}"
            f"  (degraded {metrics.n_degraded}, "
            f"rerouted {metrics.n_rerouted})"
        ),
        (
            f"  refused     shed-slo {metrics.n_shed_slo}, "
            f"shed-engine {metrics.n_shed_engine}, "
            f"rejected {metrics.n_rejected}, "
            f"failed {metrics.n_failed}"
        ),
        f"  unresolved  {metrics.n_unresolved}",
        (
            f"  throughput  {metrics.throughput_rps:.1f} rps "
            f"over {metrics.wall_s:.2f}s"
        ),
    ]
    if metrics.latency is not None:
        lines.append(
            f"  latency     p50 {metrics.latency.p50_s * 1e3:.1f} ms"
            f"  p95 {metrics.latency.p95_s * 1e3:.1f} ms"
            f"  p99 {metrics.latency.p99_s * 1e3:.1f} ms"
            f"  (n={metrics.latency.count})"
        )
    for shard_id in sorted(metrics.shards):
        status = metrics.shards[shard_id]
        cache = status.profile_cache
        p95_ms = status.rolling_p95_s * 1e3
        lines.append(
            f"  {shard_id:<12} "
            f"{'up' if status.available else 'DOWN':<4} "
            f"workers={status.n_workers} "
            f"served={status.service.n_served} "
            f"p95={p95_ms:.1f}ms "
            f"scale-events={status.n_scale_events} "
            f"cache={cache.get('hits', 0)}h/"
            f"{cache.get('misses', 0)}m"
        )
    if metrics.stage_fallbacks:
        pairs = ", ".join(
            f"{key}={count}"
            for key, count in sorted(metrics.stage_fallbacks.items())
        )
        lines.append(f"  fallbacks   {pairs}")
    return "\n".join(lines)
