"""Consistent-hash ring mapping user ids to service shards.

The fleet's scaling unit is the user: each wearer has their own
calibration profile and phoneme table, so all of a user's requests
should land on the shard that has their profile cached.  A consistent
hash ring gives that affinity *and* minimal disruption when the fleet
resizes: each shard owns many pseudo-random points ("virtual nodes")
on a 2^64 ring, a key is owned by the first shard point at or after
its hash, and adding or removing one shard only reassigns the keys
whose owning arc changed — every remapped key moves to (join) or from
(leave) the changed shard, never between two unchanged shards.  The
property suite pins both guarantees: load balance within tolerance
across 10^5 keys, and the minimal-remap invariant on join/leave.

Hashing uses ``blake2b``, so placements are stable across processes
and Python versions (``PYTHONHASHSEED`` never matters) — the front
door, the benchmark, and any offline capacity model all agree on the
same ownership map.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Virtual nodes per shard.  More points smooth the load distribution
#: (relative imbalance shrinks like 1/sqrt(vnodes)); 128 keeps the
#: 10^5-key max/mean ratio comfortably under 1.35 for small fleets.
DEFAULT_VNODES = 128


def _point(label: str) -> int:
    """Position of ``label`` on the 2^64 ring (stable across runs)."""
    digest = hashlib.blake2b(
        label.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Shard-selection ring with virtual nodes.

    Parameters
    ----------
    shard_ids:
        Initial shard identifiers (order-insensitive; the ring layout
        depends only on the id strings).
    vnodes:
        Virtual nodes per shard (>= 1).

    Examples
    --------
    >>> ring = ConsistentHashRing(["shard-0", "shard-1"])
    >>> ring.owner("user-42") in {"shard-0", "shard-1"}
    True
    """

    def __init__(
        self,
        shard_ids: Sequence[str] = (),
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if int(vnodes) < 1:
            raise ConfigurationError(
                f"vnodes must be >= 1, got {vnodes}"
            )
        self.vnodes = int(vnodes)
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._shards: Dict[str, Tuple[int, ...]] = {}
        for shard_id in shard_ids:
            self.add(shard_id)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def shard_ids(self) -> List[str]:
        """Current members, sorted for stable iteration."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add(self, shard_id: str) -> None:
        """Join ``shard_id``; only keys it now owns are remapped."""
        if not shard_id:
            raise ConfigurationError("shard_id must be non-empty")
        if shard_id in self._shards:
            raise ConfigurationError(
                f"shard {shard_id!r} is already on the ring"
            )
        points = []
        for replica in range(self.vnodes):
            point = _point(f"{shard_id}#{replica}")
            # blake2b collisions across distinct labels are
            # effectively impossible; skip the point rather than
            # silently stealing another shard's vnode if one occurs.
            if point in self._owners:  # pragma: no cover
                continue
            self._owners[point] = shard_id
            bisect.insort(self._points, point)
            points.append(point)
        self._shards[shard_id] = tuple(points)

    def remove(self, shard_id: str) -> None:
        """Leave ``shard_id``; only keys it owned are remapped."""
        points = self._shards.pop(shard_id, None)
        if points is None:
            raise ConfigurationError(
                f"shard {shard_id!r} is not on the ring"
            )
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard that owns ``key``."""
        if not self._shards:
            raise ConfigurationError("ring has no shards")
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def preference(self, key: str, count: int) -> List[str]:
        """Up to ``count`` distinct shards in ring order from ``key``.

        The first entry is :meth:`owner`; the rest are the failover
        targets the front door walks when a shard is down.  Walking the
        ring (instead of, say, sorting shard ids) keeps the failover
        assignment as evenly spread as primary ownership.
        """
        if not self._shards:
            raise ConfigurationError("ring has no shards")
        if count < 1:
            raise ConfigurationError(
                f"count must be >= 1, got {count}"
            )
        found: List[str] = []
        start = bisect.bisect_right(self._points, _point(key))
        n_points = len(self._points)
        for step in range(n_points):
            point = self._points[(start + step) % n_points]
            shard_id = self._owners[point]
            if shard_id not in found:
                found.append(shard_id)
                if len(found) == count:
                    break
        return found

    def ownership_counts(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys owned per shard (diagnostics and the balance tests)."""
        counts = {shard_id: 0 for shard_id in self._shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
