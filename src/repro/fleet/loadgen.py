"""Fleet load generator: heavy-tailed open-loop Zipf-user traffic.

Extends the single-service generator
(:mod:`repro.serve.loadgen`) to the fleet's scale model: requests are
attributed to a population of 10^5+ synthetic users whose activity
follows a Zipf law (a few chatty wearers, a long quiet tail), and
arrive open-loop with Pareto (heavy-tailed) interarrival gaps — load
keeps arriving whether or not the fleet keeps up, which is exactly
when the SLO valve and the autoscaler earn their keep.

Everything is derived per request index from the configured seed
(:class:`~repro.serve.loadgen.UserActivityModel`), so a run's user
stream, arrival schedule, and request seeds are fully reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.frontdoor import FleetFrontDoor, FleetRequest, FleetResponse
from repro.serve.loadgen import (
    RecordingPool,
    UserActivityModel,
    build_recording_pool,
)
from repro.serve.request import RequestStatus
from repro.utils.rng import derive_seed
from repro.utils.stats import percentile as _shared_percentile


@dataclass
class FleetLoadgenConfig:
    """Shape of one fleet load-generation run.

    Attributes
    ----------
    n_requests:
        Total requests issued.
    users / zipf_s:
        Synthetic-user population and its Zipf skew (the fleet's
        scale target is ``users >= 10**5``).
    rate_rps / pareto_alpha:
        Mean offered rate and the Pareto shape of the interarrival
        gaps (smaller alpha ⇒ burstier; must be > 1).
    priority_fraction:
        Fraction of requests marked protected-priority (never
        SLO-shed), drawn deterministically per index.
    seed / pool_size / attack_fraction / deadline_s:
        As in :class:`~repro.serve.loadgen.LoadgenConfig`.
    """

    n_requests: int = 200
    users: int = 100_000
    zipf_s: float = 1.1
    rate_rps: float = 200.0
    pareto_alpha: float = 2.5
    priority_fraction: float = 0.1
    seed: int = 0
    pool_size: int = 6
    attack_fraction: float = 0.5
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigurationError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.users < 1:
            raise ConfigurationError(
                f"users must be >= 1, got {self.users}"
            )
        if not self.zipf_s >= 0:
            raise ConfigurationError(
                f"zipf_s must be >= 0, got {self.zipf_s}"
            )
        if not self.rate_rps > 0:
            raise ConfigurationError(
                f"rate_rps must be > 0, got {self.rate_rps}"
            )
        if not self.pareto_alpha > 1:
            raise ConfigurationError(
                f"pareto_alpha must be > 1, got {self.pareto_alpha}"
            )
        if not 0.0 <= self.priority_fraction <= 1.0:
            raise ConfigurationError(
                f"priority_fraction must lie in [0, 1], "
                f"got {self.priority_fraction}"
            )
        if self.pool_size < 1:
            raise ConfigurationError(
                f"pool_size must be >= 1, got {self.pool_size}"
            )
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise ConfigurationError(
                f"attack_fraction must lie in [0, 1], "
                f"got {self.attack_fraction}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )

    def user_model(self) -> UserActivityModel:
        return UserActivityModel(
            users=self.users, zipf_s=self.zipf_s, seed=self.seed
        )


@dataclass
class FleetLoadgenReport:
    """Client-side tallies of one fleet loadgen run.

    ``n_issued == n_served + n_rejected + n_shed + n_failed`` holds
    after :func:`run_fleet_loadgen` returns — every accepted request
    resolves exactly once (the integration suite pins this through a
    mid-run shard failure).
    """

    n_issued: int = 0
    n_served: int = 0
    n_degraded: int = 0
    n_rerouted: int = 0
    n_rejected: int = 0
    n_shed: int = 0
    n_failed: int = 0
    wall_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Served requests per second of loadgen wall clock."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_served / self.wall_s

    def latency_percentile(self, percentile: float) -> float:
        """Caller-observed latency percentile over served requests."""
        return _shared_percentile(self.latencies_s, percentile)

    def account(self, response: FleetResponse) -> None:
        """Fold one fleet response into the tallies."""
        if response.status is RequestStatus.SERVED:
            self.n_served += 1
            if response.degraded:
                self.n_degraded += 1
            if response.rerouted:
                self.n_rerouted += 1
            self.latencies_s.append(response.total_s)
        elif response.status is RequestStatus.SHED:
            self.n_shed += 1
        elif response.status is RequestStatus.REJECTED:
            self.n_rejected += 1
        else:
            self.n_failed += 1


def make_fleet_request(
    config: FleetLoadgenConfig,
    pool: RecordingPool,
    users: UserActivityModel,
    index: int,
) -> FleetRequest:
    """The ``index``-th request of the run (pure in the config)."""
    va, wearable, is_attack = pool.pair(index)
    user = users.user_id(index)
    kind = "attack" if is_attack else "legit"
    priority_rng = np.random.default_rng(
        derive_seed(config.seed, "priority", index)
    )
    priority = (
        1 if priority_rng.random() < config.priority_fraction else 0
    )
    return FleetRequest(
        user_id=user,
        va_audio=va,
        wearable_audio=wearable,
        priority=priority,
        request_id=f"{user}/{kind}-{index}",
        seed=derive_seed(config.seed, "request", user, index),
        deadline_s=config.deadline_s,
    )


def run_fleet_loadgen(
    front_door: FleetFrontDoor,
    config: Optional[FleetLoadgenConfig] = None,
    pool: Optional[RecordingPool] = None,
) -> FleetLoadgenReport:
    """Drive a started front door with Zipf-user heavy-tailed traffic.

    Open-loop: request ``index`` is issued at the cumulative sum of
    the model's Pareto gaps, regardless of completions.  Returns the
    client-side report; compare with ``front_door.metrics()`` for the
    fleet-side view (their terminal counts agree request-for-request).
    """
    config = config or FleetLoadgenConfig()
    pool = pool or build_recording_pool(
        seed=config.seed,
        pool_size=config.pool_size,
        attack_fraction=config.attack_fraction,
    )
    users = config.user_model()
    report = FleetLoadgenReport()
    futures = []
    start = time.monotonic()
    next_at = start
    for index in range(config.n_requests):
        next_at += users.interarrival_s(
            index, config.rate_rps, alpha=config.pareto_alpha
        )
        delay = next_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        request = make_fleet_request(config, pool, users, index)
        report.n_issued += 1
        futures.append(front_door.submit_threadsafe(request))
    for future in futures:
        report.account(future.result())
    report.wall_s = time.monotonic() - start
    return report
