"""SLO machinery: rolling latency windows, shedding, autoscaling.

Three small, individually-testable pieces:

* :class:`RollingLatencyWindow` — a bounded sample window with a
  cheap rolling p95, fed by the shard on every completed request.
* :class:`SheddingPolicy` — the front door's overload valve.  When a
  shard's rolling p95 exceeds the SLO target, low-priority requests
  are shed *before* they join the queue (with a retry-after hint), so
  the work that is admitted still finishes inside the SLO.  Shedding
  is a correctness feature here: BarrierBypass-style attack floods
  arrive exactly when verification latency matters most.
* :class:`Autoscaler` — a pure decision function from a shard's load
  snapshot to a target warm-worker count, with hysteresis so the pool
  does not thrash.  The shard applies the decision via
  ``engine.scale_to``.

All three are clock-free value objects (callers pass ``now``), so the
test suite drives them deterministically.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.errors import ConfigurationError
from repro.utils.stats import percentile


@dataclass(frozen=True)
class SloConfig:
    """Service-level objective of the fleet.

    Attributes
    ----------
    target_p95_s:
        Rolling p95 the fleet must hold.
    window:
        Samples in each shard's rolling window.
    min_samples:
        Below this many samples the window is considered cold and
        never triggers shedding (avoids shedding on startup noise).
    protected_priority:
        Requests with priority >= this are never SLO-shed.
    retry_after_s:
        Hint returned with shed/rejected responses.
    """

    target_p95_s: float = 0.15
    window: int = 256
    min_samples: int = 20
    protected_priority: int = 1
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.target_p95_s > 0:
            raise ConfigurationError(
                f"target_p95_s must be > 0, got {self.target_p95_s}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {self.window}"
            )
        if self.min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if not self.retry_after_s > 0:
            raise ConfigurationError(
                f"retry_after_s must be > 0, got {self.retry_after_s}"
            )


class RollingLatencyWindow:
    """Thread-safe bounded window of latency samples with rolling p95."""

    def __init__(self, window: int = 256) -> None:
        if int(window) < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {window}"
            )
        self._samples: Deque[float] = deque(maxlen=int(window))
        self._lock = threading.Lock()

    def record(self, latency_s: float) -> None:
        with self._lock:
            self._samples.append(float(latency_s))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def p95(self) -> float:
        """Rolling p95 (NaN while empty, matching the stats helpers)."""
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, 95)


class SheddingPolicy:
    """SLO-driven admission valve.

    ``should_shed`` is called by the front door before dispatching a
    request to its shard: it sheds exactly when (a) the shard's window
    is warm, (b) its rolling p95 exceeds the target, and (c) the
    request's priority is below the protected band.  High-priority
    work is therefore never SLO-shed; it can still be refused by the
    engine's own bounded queue, which is the hard capacity limit.
    """

    def __init__(self, config: Optional[SloConfig] = None) -> None:
        self.config = config or SloConfig()

    def should_shed(
        self, window: RollingLatencyWindow, priority: int
    ) -> bool:
        config = self.config
        if priority >= config.protected_priority:
            return False
        if len(window) < config.min_samples:
            return False
        return window.p95() > config.target_p95_s


@dataclass(frozen=True)
class AutoscalerConfig:
    """Shard-level warm-worker autoscaling bounds and thresholds.

    Scale up by one worker when the queue backlog per worker exceeds
    ``backlog_high`` (or the rolling p95 breaches the SLO target);
    scale down by one when backlog per worker falls under
    ``backlog_low`` *and* the p95 is comfortably inside the target.
    ``cooldown_s`` spaces decisions so a resize's effect is observed
    before the next one.
    """

    min_workers: int = 1
    max_workers: int = 4
    backlog_high: float = 4.0
    backlog_low: float = 0.5
    headroom: float = 0.5
    cooldown_s: float = 2.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ConfigurationError(
                f"max_workers must be >= min_workers, "
                f"got {self.max_workers} < {self.min_workers}"
            )
        if not self.backlog_high > self.backlog_low >= 0:
            raise ConfigurationError(
                f"need backlog_high > backlog_low >= 0, got "
                f"{self.backlog_high} / {self.backlog_low}"
            )
        if not 0 < self.headroom <= 1:
            raise ConfigurationError(
                f"headroom must lie in (0, 1], got {self.headroom}"
            )
        if self.cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )


@dataclass(frozen=True)
class ShardLoad:
    """One shard's load snapshot, as the autoscaler sees it."""

    n_workers: int
    queue_depth: int
    rolling_p95_s: float
    window_samples: int


class Autoscaler:
    """Pure target-worker-count policy with cooldown hysteresis."""

    def __init__(
        self,
        config: Optional[AutoscalerConfig] = None,
        slo: Optional[SloConfig] = None,
    ) -> None:
        self.config = config or AutoscalerConfig()
        self.slo = slo or SloConfig()
        self._last_decision_at: Optional[float] = None

    def target_workers(self, load: ShardLoad, now: float) -> int:
        """Desired pool size; equals ``load.n_workers`` for "hold".

        Moves one worker at a time: a resize swaps the warm pool, so
        large jumps are both unnecessary and wasteful.
        """
        config = self.config
        current = max(
            config.min_workers,
            min(load.n_workers, config.max_workers),
        )
        if (
            self._last_decision_at is not None
            and now - self._last_decision_at < config.cooldown_s
        ):
            return current
        backlog_per_worker = load.queue_depth / max(load.n_workers, 1)
        window_warm = load.window_samples >= self.slo.min_samples
        p95_breach = (
            window_warm and load.rolling_p95_s > self.slo.target_p95_s
        )
        p95_healthy = not window_warm or (
            load.rolling_p95_s
            <= self.slo.target_p95_s * self.config.headroom
        )
        target = current
        if (
            backlog_per_worker > config.backlog_high or p95_breach
        ) and current < config.max_workers:
            target = current + 1
        elif (
            backlog_per_worker < config.backlog_low
            and p95_healthy
            and current > config.min_workers
        ):
            target = current - 1
        if target != current:
            self._last_decision_at = now
        return target
