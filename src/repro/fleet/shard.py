"""Service shards: one verification engine + profile cache per shard.

A :class:`ServiceShard` is the fleet's unit of capacity and failure:
it owns an engine (a warm :class:`~repro.serve.service.
VerificationService` in production, a :class:`SimulatedShardEngine`
for fleet-tier benchmarks), an in-shard LRU
:class:`~repro.fleet.profiles.ProfileCache`, a rolling latency window
feeding the SLO machinery, and an optional
:class:`~repro.fleet.slo.Autoscaler` that resizes the engine's warm
pool as load moves.

Engines implement the small :class:`ShardEngine` protocol.  The
simulated engine models one shard *machine* — a bounded queue in
front of N worker slots with a deterministic per-request service
time — so the fleet benchmark can measure the serving tier itself
(routing, queueing, shedding, scaling) at 10^5-user scale on one box,
where running the full DSP pipeline per request would only measure a
single CPU.  Its metrics come from the same
:class:`~repro.serve.metrics.MetricsCollector` the real service uses,
so fleet rollups are uniform across engines.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.pipeline import DefenseVerdict
from repro.errors import (
    ConfigurationError,
    ServiceOverloadError,
    ShardUnavailableError,
)
from repro.fleet.profiles import ProfileCache
from repro.fleet.slo import (
    Autoscaler,
    RollingLatencyWindow,
    ShardLoad,
    SloConfig,
)
from repro.serve.metrics import MetricsCollector, ServiceMetrics
from repro.serve.queue import BackpressurePolicy, BoundedRequestQueue
from repro.serve.request import (
    RequestStatus,
    VerificationRequest,
    VerificationResponse,
)
from repro.serve.service import VerificationService

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - 3.7 fallback unused here
    from typing_extensions import Protocol, runtime_checkable  # type: ignore


@runtime_checkable
class ShardEngine(Protocol):
    """What a shard needs from its verification engine."""

    def start(self) -> None:
        """Warm up; must be called before :meth:`submit`."""

    def stop(self) -> None:
        """Drain and shut down (idempotent)."""

    def submit(
        self, request: VerificationRequest
    ) -> "Future[VerificationResponse]":
        """Admit one request; the future resolves exactly once."""

    def metrics(self) -> ServiceMetrics:
        """Counters/percentiles snapshot (fleet rollup input)."""

    def scale_to(self, n_workers: int) -> None:
        """Resize the warm worker pool (autoscaler hook)."""

    @property
    def n_workers(self) -> int:
        """Current worker count."""
        ...


class ServiceEngine:
    """The production engine: a warm :class:`VerificationService`.

    The fleet forces a non-blocking backpressure policy (``reject`` or
    ``shed-oldest``): a ``block`` submit would stall the front door's
    event loop, and fleet-tier overload handling wants an immediate
    refusal it can convert into a retry-after response.
    """

    def __init__(self, service: VerificationService) -> None:
        policy = service.config.backpressure
        if policy is BackpressurePolicy.BLOCK:
            raise ConfigurationError(
                "fleet shards need a non-blocking backpressure policy "
                "('reject' or 'shed-oldest'); 'block' would stall the "
                "front door"
            )
        self.service = service

    def start(self) -> None:
        self.service.start()

    def stop(self) -> None:
        self.service.stop()

    def submit(
        self, request: VerificationRequest
    ) -> "Future[VerificationResponse]":
        return self.service.submit(request)

    def metrics(self) -> ServiceMetrics:
        return self.service.metrics()

    def scale_to(self, n_workers: int) -> None:
        self.service.resize_workers(n_workers)

    @property
    def n_workers(self) -> int:
        return self.service.n_workers


@dataclass
class SimulatedEngineConfig:
    """Capacity model of one simulated shard machine.

    ``service_time_s`` is the deterministic per-request execution
    time; per-request jitter (±``jitter`` relative) is derived from
    the request seed, so a simulated run is exactly reproducible.
    Throughput capacity is ``n_workers / service_time_s``.
    """

    n_workers: int = 1
    service_time_s: float = 0.006
    jitter: float = 0.1
    queue_capacity: int = 16
    backpressure: BackpressurePolicy = BackpressurePolicy.REJECT

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if not self.service_time_s > 0:
            raise ConfigurationError(
                f"service_time_s must be > 0, got {self.service_time_s}"
            )
        if not 0 <= self.jitter < 1:
            raise ConfigurationError(
                f"jitter must lie in [0, 1), got {self.jitter}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.backpressure is BackpressurePolicy.BLOCK:
            raise ConfigurationError(
                "simulated shards need a non-blocking policy"
            )


@dataclass
class _SimEntry:
    request: VerificationRequest
    future: "Future[VerificationResponse]"
    submitted_at: float


class SimulatedShardEngine:
    """Calibrated-delay shard engine for fleet-tier benchmarks.

    Each of ``n_workers`` worker threads pulls from a bounded queue
    and "executes" a request by sleeping its deterministic service
    time, then resolves the future with a synthetic SERVED response
    (degraded when the deadline had already expired at execution
    start, mirroring the real service's full-recording fallback).
    Sleeping workers scale near-linearly with shard count on any core
    count, which is the point: the benchmark measures the fleet tier,
    not the DSP.

    On :meth:`stop` the queue closes and the workers drain everything
    still queued before exiting — a submitted request always resolves
    (the ``make fleet-smoke`` zero-dropped-on-shutdown assertion).
    """

    def __init__(
        self, config: Optional[SimulatedEngineConfig] = None
    ) -> None:
        self.config = config or SimulatedEngineConfig()
        self.metrics_collector = MetricsCollector()
        self._queue: "BoundedRequestQueue[_SimEntry]" = (
            BoundedRequestQueue(
                capacity=self.config.queue_capacity,
                policy=self.config.backpressure,
            )
        )
        self._threads: List[threading.Thread] = []
        self._target = self.config.n_workers
        self._lock = threading.Lock()
        self._started = False
        self._next_worker = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for _ in range(self.config.n_workers):
                self._spawn_locked()

    def _spawn_locked(self) -> None:
        index = self._next_worker
        self._next_worker += 1
        thread = threading.Thread(
            target=self._worker_loop,
            args=(index,),
            name=f"sim-shard-worker-{index}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def stop(self) -> None:
        with self._lock:
            if not self._started:
                return
            self._started = False
            threads = list(self._threads)
            self._threads.clear()
        self._queue.close()
        for thread in threads:
            thread.join()

    def scale_to(self, n_workers: int) -> None:
        """Grow or shrink the worker-slot count.

        Growth spawns threads immediately; shrink is cooperative —
        surplus workers exit after their current request (their slot
        index falls off the target).
        """
        if int(n_workers) < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        with self._lock:
            if not self._started:
                raise ConfigurationError("engine not started")
            alive = sum(
                1 for thread in self._threads if thread.is_alive()
            )
            self._target = int(n_workers)
            for _ in range(self._target - alive):
                self._spawn_locked()

    @property
    def n_workers(self) -> int:
        with self._lock:
            if not self._started:
                return self.config.n_workers
            return self._target

    # -- serving --------------------------------------------------------

    def submit(
        self, request: VerificationRequest
    ) -> "Future[VerificationResponse]":
        with self._lock:
            if not self._started:
                raise ConfigurationError(
                    "engine not started; call start()"
                )
        self.metrics_collector.record_submitted()
        entry = _SimEntry(
            request=request,
            future=Future(),
            submitted_at=time.monotonic(),
        )
        try:
            shed = self._queue.put(entry)
        except ServiceOverloadError:
            self.metrics_collector.record_rejected()
            raise
        if shed is not None:
            self.metrics_collector.record_shed()
            shed.future.set_result(
                VerificationResponse(
                    request_id=shed.request.request_id,
                    status=RequestStatus.SHED,
                    total_s=time.monotonic() - shed.submitted_at,
                    error="shed by backpressure policy 'shed-oldest'",
                )
            )
        return entry.future

    def metrics(self) -> ServiceMetrics:
        return self.metrics_collector.snapshot(
            queue_depth=self._queue.depth
        )

    # -- internals ------------------------------------------------------

    @staticmethod
    def _mix(seed: int) -> int:
        """Splitmix-style 64-bit scramble of the request seed."""
        mixed = (int(seed) * 0x9E3779B97F4A7C15) & (2**64 - 1)
        mixed ^= mixed >> 31
        return mixed

    def _service_time_s(self, request: VerificationRequest) -> float:
        base = self.config.service_time_s
        if not self.config.jitter:
            return base
        unit = (self._mix(request.seed) & 0xFFFFFF) / float(0x1000000)
        return base * (1.0 + self.config.jitter * (2.0 * unit - 1.0))

    def _verdict(self, request: VerificationRequest) -> DefenseVerdict:
        """Synthetic verdict: a deterministic score in [-1, 1].

        Carrying a score (rather than ``verdict=None``) lets the
        front door exercise per-user threshold application against
        simulated shards exactly as against real ones.
        """
        bits = (self._mix(request.seed) >> 24) & 0xFFFFFF
        score = 2.0 * (bits / float(0x1000000)) - 1.0
        return DefenseVerdict(
            score=score,
            is_attack=None,
            n_segments=0,
            analyzed_duration_s=0.0,
            sync_delay_s=0.0,
        )

    def _worker_loop(self, index: int) -> None:
        while True:
            with self._lock:
                if index >= self._target and self._started:
                    return
            entry = self._queue.get(timeout_s=0.05)
            if entry is None:
                if self._queue.closed:
                    return
                continue
            self._serve(entry)

    def _serve(self, entry: _SimEntry) -> None:
        if not entry.future.set_running_or_notify_cancel():
            return  # caller cancelled while queued; nothing to resolve
        started = time.monotonic()
        queue_wait_s = started - entry.submitted_at
        request = entry.request
        degraded = (
            request.deadline_s is not None
            and queue_wait_s >= request.deadline_s
        )
        time.sleep(self._service_time_s(request))
        now = time.monotonic()
        total_s = now - entry.submitted_at
        self.metrics_collector.record_served(
            total_s=total_s,
            queue_wait_s=queue_wait_s,
            stage_timings_s={},
            degraded=degraded,
        )
        entry.future.set_result(
            VerificationResponse(
                request_id=request.request_id,
                status=RequestStatus.SERVED,
                verdict=self._verdict(request),
                degraded=degraded,
                queue_wait_s=queue_wait_s,
                total_s=total_s,
            )
        )


@dataclass
class ScaleEvent:
    """One applied autoscaling decision (diagnostics/metrics)."""

    at_s: float
    from_workers: int
    to_workers: int


class ServiceShard:
    """One fleet shard: engine + profiles + SLO window + autoscaler."""

    def __init__(
        self,
        shard_id: str,
        engine: ShardEngine,
        profiles: Optional[ProfileCache] = None,
        slo: Optional[SloConfig] = None,
        autoscaler: Optional[Autoscaler] = None,
    ) -> None:
        if not shard_id:
            raise ConfigurationError("shard_id must be non-empty")
        self.shard_id = shard_id
        self.engine = engine
        # ``is not None``, not ``or``: an empty ProfileCache has
        # len() == 0 and would be falsy, silently dropping a
        # store-backed cache in favor of a derivation-only default.
        self.profiles = (
            profiles if profiles is not None else ProfileCache()
        )
        slo = slo or SloConfig()
        self.window = RollingLatencyWindow(window=slo.window)
        self.autoscaler = autoscaler
        self.scale_events: List[ScaleEvent] = []
        self._scale_lock = threading.Lock()
        self._running = False
        self._failed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        self.engine.start()
        self._running = True
        self._failed = False

    def stop(self) -> None:
        self._running = False
        self.engine.stop()

    def fail(self) -> None:
        """Mark the shard down and stop its engine (tests/chaos)."""
        self._failed = True
        self._running = False
        self.engine.stop()

    @property
    def available(self) -> bool:
        return self._running and not self._failed

    # -- serving --------------------------------------------------------

    def submit(
        self, request: VerificationRequest
    ) -> "Future[VerificationResponse]":
        """Admit one request to this shard's engine.

        Raises :class:`ShardUnavailableError` when the shard is down
        (the front door's cue to walk the failover preference list)
        and re-raises :class:`ServiceOverloadError` when the engine's
        bounded queue refuses the request (the front door answers
        that with a retry-after, not a reroute — rerouting overload
        would cascade a hotspot across the fleet).
        """
        if not self.available:
            raise ShardUnavailableError(
                f"shard {self.shard_id} is not available"
            )
        try:
            future = self.engine.submit(request)
        except ServiceOverloadError:
            raise
        except Exception as error:
            self._failed = True
            raise ShardUnavailableError(
                f"shard {self.shard_id} engine failed: "
                f"{type(error).__name__}: {error}"
            ) from error
        future.add_done_callback(self._record_latency)
        return future

    def _record_latency(
        self, future: "Future[VerificationResponse]"
    ) -> None:
        if future.cancelled() or future.exception() is not None:
            return
        response = future.result()
        if response.status is RequestStatus.SERVED:
            self.window.record(response.total_s)

    def metrics(self) -> ServiceMetrics:
        return self.engine.metrics()

    # -- autoscaling ----------------------------------------------------

    def autoscale_tick(self, now: float) -> Optional[ScaleEvent]:
        """Apply one autoscaling decision; returns the event if any.

        Serialized by a lock so a slow resize (warming a replacement
        pool) is never stacked under a second decision.
        """
        if self.autoscaler is None or not self.available:
            return None
        with self._scale_lock:
            snapshot = self.engine.metrics()
            load = ShardLoad(
                n_workers=self.engine.n_workers,
                queue_depth=snapshot.queue_depth,
                rolling_p95_s=self.window.p95(),
                window_samples=len(self.window),
            )
            target = self.autoscaler.target_workers(load, now)
            if target == load.n_workers:
                return None
            self.engine.scale_to(target)
            event = ScaleEvent(
                at_s=now,
                from_workers=load.n_workers,
                to_workers=target,
            )
            self.scale_events.append(event)
            return event


def service_shard_factory(
    spec,
    config,
    profiles_capacity: int = 4096,
    profile_loader: Optional[Callable[[str], object]] = None,
    slo: Optional[SloConfig] = None,
    autoscaler_factory: Optional[Callable[[], Autoscaler]] = None,
) -> Callable[[str], ServiceShard]:
    """``shard_id -> ServiceShard`` over real verification services.

    Every shard gets its own :class:`VerificationService` (own queue,
    scheduler, warm pool) built from one shared ``(PipelineSpec,
    ServiceConfig)`` pair, plus its own profile cache and autoscaler
    instance.
    """

    def build(shard_id: str) -> ServiceShard:
        import copy

        service = VerificationService(spec, copy.deepcopy(config))
        return ServiceShard(
            shard_id,
            ServiceEngine(service),
            profiles=ProfileCache(
                capacity=profiles_capacity, loader=profile_loader
            ),
            slo=slo,
            autoscaler=(
                autoscaler_factory() if autoscaler_factory else None
            ),
        )

    return build


def simulated_shard_factory(
    engine_config: Optional[SimulatedEngineConfig] = None,
    profiles_capacity: int = 4096,
    slo: Optional[SloConfig] = None,
    autoscaler_factory: Optional[Callable[[], Autoscaler]] = None,
) -> Callable[[str], ServiceShard]:
    """``shard_id -> ServiceShard`` over simulated engines (benchmarks)."""

    def build(shard_id: str) -> ServiceShard:
        import copy

        config = copy.deepcopy(engine_config) or SimulatedEngineConfig()
        return ServiceShard(
            shard_id,
            SimulatedShardEngine(config),
            profiles=ProfileCache(capacity=profiles_capacity),
            slo=slo,
            autoscaler=(
                autoscaler_factory() if autoscaler_factory else None
            ),
        )

    return build
