"""Per-user serving profiles: calibration + phoneme table per wearer.

Cross-domain verification is inherently per-user (WearID makes the
same observation): each wearer gets their own operating threshold and
their own sensitive-phoneme subset.  A :class:`UserProfile` bundles
both; profiles are derived deterministically from ``(user_id, base
seed)`` by :func:`derive_user_profile`, persisted through
:meth:`repro.store.ModelRegistry.user_profile` (reusing the store's
one-trainer-many-loaders locking so N shards cold-starting on one user
compute the profile exactly once), and held in an in-shard
:class:`ProfileCache` LRU so the hot Zipf head never touches the store
twice.

The per-user phoneme subset doubles as a hardening measure: an
attacker who learns *the paper's* 31-phoneme table still does not know
which subset a given victim's defense correlates on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.phonemes.inventory import PAPER_SELECTED_PHONEMES
from repro.utils.rng import derive_seed

#: Default operating threshold the per-user offset perturbs.  Matches
#: the EER neighborhood the campaign calibration lands in on the
#: synthetic corpus.
DEFAULT_BASE_THRESHOLD = 0.25

#: Half-width of the deterministic per-user threshold perturbation.
DEFAULT_THRESHOLD_JITTER = 0.05

#: Sensitive phonemes kept per user (out of the paper's 31).
DEFAULT_PHONEMES_PER_USER = 24


@dataclass(frozen=True)
class UserProfile:
    """One wearer's serving profile.

    Attributes
    ----------
    user_id:
        The wearer this profile belongs to.
    threshold:
        Personal correlation threshold (scores below ⇒ attack), or
        ``None`` for score-only serving.
    phonemes:
        The user's sensitive-phoneme subset, sorted.
    seed:
        Base seed the profile was derived from (provenance).
    """

    user_id: str
    threshold: Optional[float]
    phonemes: Tuple[str, ...]
    seed: int

    def __post_init__(self) -> None:
        if (
            self.threshold is not None
            and not -1.0 <= self.threshold <= 1.0
        ):
            raise ConfigurationError(
                f"threshold must lie in [-1, 1], got {self.threshold}"
            )

    def decide(self, score: float) -> Optional[bool]:
        """Personal verdict for a correlation ``score``.

        ``None`` when the profile carries no threshold (score-only).
        """
        if self.threshold is None:
            return None
        return bool(score < self.threshold)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict (exact: floats round-trip via repr)."""
        return {
            "user_id": self.user_id,
            "threshold": self.threshold,
            "phonemes": list(self.phonemes),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "UserProfile":
        """Inverse of :meth:`to_dict` (artifact-store load path)."""
        try:
            threshold = payload["threshold"]
            return cls(
                user_id=str(payload["user_id"]),
                threshold=(
                    None if threshold is None else float(threshold)
                ),
                phonemes=tuple(
                    str(symbol) for symbol in payload["phonemes"]
                ),
                seed=int(payload["seed"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed user-profile payload: {error}"
            ) from None


@dataclass(frozen=True)
class ProfileRecipe:
    """Deterministic derivation recipe shared by every shard.

    Part of the profile artifact's store identity: two fleets with the
    same recipe and base seed read each other's published profiles;
    changing any knob re-derives from scratch.
    """

    seed: int = 0
    base_threshold: Optional[float] = DEFAULT_BASE_THRESHOLD
    threshold_jitter: float = DEFAULT_THRESHOLD_JITTER
    phonemes_per_user: int = DEFAULT_PHONEMES_PER_USER

    def __post_init__(self) -> None:
        if not 1 <= self.phonemes_per_user <= len(
            PAPER_SELECTED_PHONEMES
        ):
            raise ConfigurationError(
                f"phonemes_per_user must lie in "
                f"[1, {len(PAPER_SELECTED_PHONEMES)}], "
                f"got {self.phonemes_per_user}"
            )
        if self.threshold_jitter < 0:
            raise ConfigurationError(
                f"threshold_jitter must be >= 0, "
                f"got {self.threshold_jitter}"
            )

    def to_recipe_dict(self) -> Dict[str, object]:
        """The registry-fingerprint view of this recipe."""
        return {
            "seed": int(self.seed),
            "base_threshold": self.base_threshold,
            "threshold_jitter": float(self.threshold_jitter),
            "phonemes_per_user": int(self.phonemes_per_user),
        }


def derive_user_profile(
    user_id: str, recipe: Optional[ProfileRecipe] = None
) -> UserProfile:
    """Pure per-user profile derivation.

    The threshold is the recipe's base plus a deterministic
    ``[-jitter, +jitter]`` offset, and the phoneme table is a
    deterministic subset of the paper's 31 selected phonemes — both
    keyed by ``(recipe.seed, user_id)`` only, so any shard (or any
    process) derives bitwise the same profile.
    """
    recipe = recipe or ProfileRecipe()
    rng = np.random.default_rng(
        derive_seed(recipe.seed, "user-profile", user_id)
    )
    if recipe.base_threshold is None:
        threshold = None
    else:
        offset = (2.0 * rng.random() - 1.0) * recipe.threshold_jitter
        threshold = float(
            np.clip(recipe.base_threshold + offset, -1.0, 1.0)
        )
    inventory = sorted(PAPER_SELECTED_PHONEMES)
    chosen = rng.choice(
        len(inventory), size=recipe.phonemes_per_user, replace=False
    )
    phonemes = tuple(sorted(inventory[index] for index in chosen))
    return UserProfile(
        user_id=str(user_id),
        threshold=threshold,
        phonemes=phonemes,
        seed=int(recipe.seed),
    )


class ProfileCache:
    """Thread-safe in-shard LRU over user profiles.

    Parameters
    ----------
    capacity:
        Profiles kept (>= 1).  The Zipf head fits in a small cache:
        with s = 1.1 the hottest ~1% of users carry most traffic.
    loader:
        ``user_id -> UserProfile``.  Defaults to the pure
        :func:`derive_user_profile`; shards with a store configured
        pass a :class:`repro.store.ModelRegistry`-backed loader so
        profiles are computed once fleet-wide and shared on disk.
    """

    def __init__(
        self,
        capacity: int = 4096,
        loader: Optional[Callable[[str], UserProfile]] = None,
        recipe: Optional[ProfileRecipe] = None,
    ) -> None:
        if int(capacity) < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self.recipe = recipe or ProfileRecipe()
        self._loader = loader or (
            lambda user_id: derive_user_profile(user_id, self.recipe)
        )
        self._entries: "OrderedDict[str, UserProfile]" = OrderedDict()
        self._lock = threading.Lock()
        self.n_hits = 0
        self.n_misses = 0
        self.n_evicted = 0

    def get(self, user_id: str) -> UserProfile:
        """The user's profile, loading (and possibly evicting) on miss."""
        with self._lock:
            profile = self._entries.get(user_id)
            if profile is not None:
                self.n_hits += 1
                self._entries.move_to_end(user_id)
                return profile
            self.n_misses += 1
        # Load outside the lock: a store round-trip (or derivation)
        # must not serialize every other user's cache hit.
        profile = self._loader(user_id)
        with self._lock:
            self._entries[user_id] = profile
            self._entries.move_to_end(user_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.n_evicted += 1
        return profile

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current size."""
        with self._lock:
            return {
                "hits": self.n_hits,
                "misses": self.n_misses,
                "evicted": self.n_evicted,
                "size": len(self._entries),
            }


def registry_profile_loader(
    registry, recipe: Optional[ProfileRecipe] = None
) -> Callable[[str], UserProfile]:
    """Store-backed loader for :class:`ProfileCache`.

    Wraps :meth:`repro.store.ModelRegistry.user_profile`: the first
    shard to need a user's profile derives and publishes it under the
    entry's cross-process lock; every other shard (and every later
    fleet start) loads the published bytes.
    """
    recipe = recipe or ProfileRecipe()

    def load(user_id: str) -> UserProfile:
        document, _ = registry.user_profile(
            user_id,
            recipe.to_recipe_dict(),
            lambda: derive_user_profile(user_id, recipe).to_dict(),
        )
        return UserProfile.from_dict(document)

    return load
