"""User-sharded async serving tier over the verification service.

``repro.fleet`` scales :mod:`repro.serve` from one service to a fleet
of shards, keyed by *user*: a consistent-hash ring gives each wearer
a home shard (so their calibration profile and phoneme table stay
cached where their requests land), an asyncio front door routes,
fails over, and enforces fleet-wide deadlines, and each shard runs
SLO-driven shedding plus warm-worker autoscaling.  See DESIGN.md §8.
"""

from repro.fleet.frontdoor import (
    FleetConfig,
    FleetFrontDoor,
    FleetRequest,
    FleetResponse,
)
from repro.fleet.hashing import DEFAULT_VNODES, ConsistentHashRing
from repro.fleet.loadgen import (
    FleetLoadgenConfig,
    FleetLoadgenReport,
    make_fleet_request,
    run_fleet_loadgen,
)
from repro.fleet.metrics import (
    FleetMetrics,
    FleetMetricsCollector,
    ShardStatus,
    format_fleet_metrics,
)
from repro.fleet.profiles import (
    ProfileCache,
    ProfileRecipe,
    UserProfile,
    derive_user_profile,
    registry_profile_loader,
)
from repro.fleet.shard import (
    ScaleEvent,
    ServiceEngine,
    ServiceShard,
    ShardEngine,
    SimulatedEngineConfig,
    SimulatedShardEngine,
    service_shard_factory,
    simulated_shard_factory,
)
from repro.fleet.slo import (
    Autoscaler,
    AutoscalerConfig,
    RollingLatencyWindow,
    ShardLoad,
    SheddingPolicy,
    SloConfig,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ConsistentHashRing",
    "DEFAULT_VNODES",
    "FleetConfig",
    "FleetFrontDoor",
    "FleetLoadgenConfig",
    "FleetLoadgenReport",
    "FleetMetrics",
    "FleetMetricsCollector",
    "FleetRequest",
    "FleetResponse",
    "ProfileCache",
    "ProfileRecipe",
    "RollingLatencyWindow",
    "ScaleEvent",
    "ServiceEngine",
    "ServiceShard",
    "ShardEngine",
    "ShardLoad",
    "ShardStatus",
    "SheddingPolicy",
    "SimulatedEngineConfig",
    "SimulatedShardEngine",
    "SloConfig",
    "UserProfile",
    "derive_user_profile",
    "format_fleet_metrics",
    "make_fleet_request",
    "registry_profile_loader",
    "run_fleet_loadgen",
    "service_shard_factory",
    "simulated_shard_factory",
]
