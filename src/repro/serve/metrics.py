"""Service metrics: latency percentiles, throughput, refusal counts.

A :class:`MetricsCollector` accumulates per-request observations behind
a lock; :meth:`MetricsCollector.snapshot` freezes them into a
:class:`ServiceMetrics` value object that
:func:`repro.eval.reporting.format_service_metrics` renders in the same
plain-text style as the campaign runner's stats block.

Stage-level observability arrives as :class:`repro.runtime.StageEvent`
streams from the workers (:meth:`MetricsCollector.record_stage_events`)
— the same protocol the campaign runner aggregates — so fallback
annotations (deadline skips, full-recording degrades, runtime ladder
demotions) are counted uniformly across the serving and evaluation
surfaces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.runtime import StageEvent
from repro.serve.batching import BatchControllerStats
from repro.utils.stats import (
    REPORTED_PERCENTILES as _REPORTED_PERCENTILES,
    percentile_values,
)

#: Percentiles reported for every latency distribution.
REPORTED_PERCENTILES: Tuple[int, ...] = tuple(
    int(p) for p in _REPORTED_PERCENTILES
)


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99 (seconds) plus count for one latency distribution."""

    count: int
    p50_s: float
    p95_s: float
    p99_s: float

    @classmethod
    def from_samples(
        cls, samples: List[float]
    ) -> Optional["LatencySummary"]:
        if not samples:
            return None
        p50, p95, p99 = percentile_values(samples, REPORTED_PERCENTILES)
        return cls(
            count=len(samples),
            p50_s=float(p50),
            p95_s=float(p95),
            p99_s=float(p99),
        )


@dataclass(frozen=True)
class ServiceMetrics:
    """Frozen snapshot of the service's counters and distributions.

    Attributes
    ----------
    n_submitted / n_served / n_degraded / n_rejected / n_shed /
    n_failed:
        Request accounting.  Every submitted request lands in exactly
        one of served / rejected / shed / failed (degraded requests are
        a subset of served).
    n_batches / mean_batch_size:
        Micro-batching effectiveness.
    queue_depth / n_pending:
        Requests currently queued / awaiting batch formation at
        snapshot time.
    wall_s / throughput_rps:
        Time since service start and served requests per second.
    total_latency / queue_wait:
        End-to-end and queued-time percentiles.
    stage_latency:
        Percentiles per pipeline stage (see
        :data:`repro.core.pipeline.PIPELINE_STAGES`).
    """

    n_submitted: int
    n_served: int
    n_degraded: int
    n_rejected: int
    n_shed: int
    n_failed: int
    n_batches: int
    mean_batch_size: float
    queue_depth: int
    n_pending: int
    wall_s: float
    throughput_rps: float
    total_latency: Optional[LatencySummary]
    queue_wait: Optional[LatencySummary]
    stage_latency: Mapping[str, LatencySummary] = field(
        default_factory=dict
    )
    #: Vectorized model calls: micro-batches served by one shared
    #: masked BLSTM forward (`DefensePipeline.analyze_batch`), and the
    #: mean number of requests amortized per such forward.
    n_batched_forwards: int = 0
    requests_per_forward: float = 0.0
    #: ``{"stage:fallback": count}`` over the workers' StageEvent
    #: streams — deadline skips, full-recording degrades, and runtime
    #: ladder demotions, all through one protocol.
    stage_fallbacks: Mapping[str, int] = field(default_factory=dict)
    #: Adaptive batch-size controller snapshot (``None`` when the
    #: service runs with a fixed batch size).
    batch_controller: Optional[BatchControllerStats] = None

    @property
    def n_resolved(self) -> int:
        """Requests that reached a terminal status."""
        return (
            self.n_served + self.n_rejected + self.n_shed + self.n_failed
        )


class MetricsCollector:
    """Thread-safe accumulator behind the service's metrics endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self.n_submitted = 0
        self.n_served = 0
        self.n_degraded = 0
        self.n_rejected = 0
        self.n_shed = 0
        self.n_failed = 0
        self.n_batches = 0
        self.n_batched_requests = 0
        self.n_batched_forwards = 0
        self.n_batched_forward_requests = 0
        self._total_latencies: List[float] = []
        self._queue_waits: List[float] = []
        self._stage_latencies: Dict[str, List[float]] = {}
        self._stage_fallbacks: Dict[str, int] = {}

    def record_submitted(self) -> None:
        with self._lock:
            self.n_submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.n_rejected += 1

    def record_shed(self) -> None:
        with self._lock:
            self.n_shed += 1

    def record_failed(self) -> None:
        with self._lock:
            self.n_failed += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.n_batches += 1
            self.n_batched_requests += size

    def record_batched_forward(self, size: int) -> None:
        """One vectorized model forward that served ``size`` requests."""
        with self._lock:
            self.n_batched_forwards += 1
            self.n_batched_forward_requests += size

    def record_stage_events(
        self, events: Iterable[StageEvent]
    ) -> None:
        """Fold a worker's :class:`StageEvent` stream into the counters.

        Fallback annotations become ``stage:fallback`` counts; stage
        wall times are *not* re-recorded here (they arrive once via
        :meth:`record_served`'s timing dict, which the pipeline derives
        from the same events).
        """
        with self._lock:
            for event in events:
                if event.fallback is not None:
                    key = f"{event.stage}:{event.fallback}"
                    self._stage_fallbacks[key] = (
                        self._stage_fallbacks.get(key, 0) + 1
                    )

    def record_served(
        self,
        total_s: float,
        queue_wait_s: float,
        stage_timings_s: Mapping[str, float],
        degraded: bool,
    ) -> None:
        with self._lock:
            self.n_served += 1
            if degraded:
                self.n_degraded += 1
            self._total_latencies.append(total_s)
            self._queue_waits.append(queue_wait_s)
            for stage, seconds in stage_timings_s.items():
                self._stage_latencies.setdefault(stage, []).append(
                    seconds
                )

    def snapshot(
        self,
        queue_depth: int = 0,
        n_pending: int = 0,
        batch_controller: Optional[BatchControllerStats] = None,
    ) -> ServiceMetrics:
        """Freeze the current counters into a :class:`ServiceMetrics`."""
        with self._lock:
            wall_s = time.monotonic() - self._started_at
            mean_batch = (
                self.n_batched_requests / self.n_batches
                if self.n_batches
                else 0.0
            )
            return ServiceMetrics(
                n_submitted=self.n_submitted,
                n_served=self.n_served,
                n_degraded=self.n_degraded,
                n_rejected=self.n_rejected,
                n_shed=self.n_shed,
                n_failed=self.n_failed,
                n_batches=self.n_batches,
                mean_batch_size=mean_batch,
                queue_depth=queue_depth,
                n_pending=n_pending,
                wall_s=wall_s,
                throughput_rps=(
                    self.n_served / wall_s if wall_s > 0 else 0.0
                ),
                total_latency=LatencySummary.from_samples(
                    self._total_latencies
                ),
                queue_wait=LatencySummary.from_samples(
                    self._queue_waits
                ),
                stage_latency={
                    stage: LatencySummary.from_samples(samples)
                    for stage, samples in self._stage_latencies.items()
                    if samples
                },
                n_batched_forwards=self.n_batched_forwards,
                requests_per_forward=(
                    self.n_batched_forward_requests
                    / self.n_batched_forwards
                    if self.n_batched_forwards
                    else 0.0
                ),
                stage_fallbacks=dict(self._stage_fallbacks),
                batch_controller=batch_controller,
            )
