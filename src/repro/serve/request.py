"""Request/response types of the online verification service.

A :class:`VerificationRequest` carries the two device recordings plus
scenario metadata for one voice command; the service answers with a
:class:`VerificationResponse` holding the :class:`DefenseVerdict` and
per-stage wall-clock timings.  Requests are grouped into micro-batches
by :attr:`VerificationRequest.batch_key` — only requests with the same
audio rate and pipeline-affecting flags may share a batch, because they
are executed by the same warm pipeline instance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.pipeline import DefenseVerdict
from repro.errors import ConfigurationError
from repro.phonemes.corpus import Utterance


class RequestStatus(enum.Enum):
    """Terminal outcome of one verification request."""

    SERVED = "served"
    REJECTED = "rejected"
    SHED = "shed"
    FAILED = "failed"


@dataclass
class VerificationRequest:
    """One online verification job.

    Attributes
    ----------
    va_audio / wearable_audio:
        The voice assistant's and wearable's recordings of the command.
    seed:
        Integer seed for the request's cross-domain sensing replays.
        The verdict is a pure function of (pipeline spec, recordings,
        seed), so the same request is answered identically by any
        worker in any batch — and by a direct
        :meth:`repro.core.pipeline.DefensePipeline.verify` call.
    request_id:
        Caller-chosen identifier echoed in the response.
    audio_rate:
        Sampling rate of both recordings.
    deadline_s:
        Relative deadline from submission.  A request still unserved
        when it expires is *not* dropped: the worker degrades to the
        full-recording fallback path (segmentation skipped) so the
        caller always gets a verdict.
    wearer_moving:
        Simulate body-motion interference during the wearable replay
        (changes the pipeline configuration, hence part of the batch
        key).
    oracle_utterance:
        Optional ground-truth alignment for ablation-style serving.
    """

    va_audio: np.ndarray
    wearable_audio: np.ndarray
    seed: int = 0
    request_id: str = ""
    audio_rate: float = 16_000.0
    deadline_s: Optional[float] = None
    wearer_moving: bool = False
    oracle_utterance: Optional[Utterance] = None

    def __post_init__(self) -> None:
        if self.audio_rate <= 0:
            raise ConfigurationError(
                f"audio_rate must be > 0, got {self.audio_rate}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )
        self.va_audio = np.asarray(self.va_audio, dtype=np.float64)
        self.wearable_audio = np.asarray(
            self.wearable_audio, dtype=np.float64
        )

    @property
    def batch_key(self) -> Tuple[float, bool]:
        """Batch-compatibility class of this request.

        Requests in one micro-batch run through one pipeline instance,
        so everything that selects the pipeline configuration must be
        part of this key.
        """
        return (float(self.audio_rate), bool(self.wearer_moving))


@dataclass
class VerificationResponse:
    """Service answer for one request.

    Attributes
    ----------
    request_id:
        Echo of the request's identifier.
    status:
        Terminal outcome.  ``SERVED`` always carries a verdict;
        ``REJECTED``/``SHED`` never do.
    verdict:
        The defense's decision for served requests.
    degraded:
        The request missed its deadline and was answered via the
        full-recording fallback (segmentation skipped).
    stage_timings_s:
        Per-pipeline-stage wall-clock seconds (see
        :data:`repro.core.pipeline.PIPELINE_STAGES`).
    queue_wait_s / total_s:
        Time spent queued, and submission-to-response latency.
    error:
        Failure description for ``FAILED``/``SHED``/``REJECTED``.
    """

    request_id: str
    status: RequestStatus
    verdict: Optional[DefenseVerdict] = None
    degraded: bool = False
    stage_timings_s: Dict[str, float] = field(default_factory=dict)
    queue_wait_s: float = 0.0
    total_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the request produced a verdict."""
        return self.status is RequestStatus.SERVED
