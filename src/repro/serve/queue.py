"""Bounded request queue with configurable backpressure.

The queue is the service's admission-control point: when producers
outrun the worker pool, the configured :class:`BackpressurePolicy`
decides whether ``put`` blocks for space, rejects the newcomer with
:class:`~repro.errors.ServiceOverloadError`, or sheds the oldest queued
entry to make room.  Counters are maintained so the metrics snapshot
can report exactly how much load was refused — the property suite pins
``enqueued == admitted`` and ``shed`` arithmetic against the queue
bound.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from repro.errors import ConfigurationError, ServiceOverloadError

T = TypeVar("T")


class BackpressurePolicy(enum.Enum):
    """What ``put`` does when the queue is at capacity."""

    #: Wait (up to ``block_timeout_s``) for a consumer to make room;
    #: raise :class:`ServiceOverloadError` if the wait times out.
    BLOCK = "block"
    #: Refuse the new entry immediately with
    #: :class:`ServiceOverloadError`.
    REJECT = "reject"
    #: Evict the oldest queued entry and admit the new one; the evicted
    #: entry is returned to the caller so its future can be resolved.
    SHED_OLDEST = "shed-oldest"


class BoundedRequestQueue(Generic[T]):
    """Thread-safe FIFO with a hard capacity and backpressure counters.

    Parameters
    ----------
    capacity:
        Maximum number of queued entries (>= 1).
    policy:
        Behaviour at capacity (see :class:`BackpressurePolicy`).
    block_timeout_s:
        Longest a ``BLOCK``-policy ``put`` may wait; ``None`` waits
        forever.
    """

    def __init__(
        self,
        capacity: int,
        policy: BackpressurePolicy = BackpressurePolicy.BLOCK,
        block_timeout_s: Optional[float] = None,
    ) -> None:
        if int(capacity) < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        if block_timeout_s is not None and block_timeout_s < 0:
            raise ConfigurationError(
                f"block_timeout_s must be >= 0 (or None), "
                f"got {block_timeout_s}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self.block_timeout_s = block_timeout_s
        self._entries: Deque[T] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.n_enqueued = 0
        self.n_rejected = 0
        self.n_shed = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def put(self, entry: T) -> Optional[T]:
        """Admit ``entry``, applying the backpressure policy.

        Returns the entry evicted to make room (``SHED_OLDEST`` only),
        or ``None``.  Raises :class:`ServiceOverloadError` when the
        entry cannot be admitted (``REJECT``, or a ``BLOCK`` timeout)
        and when the queue has been closed.
        """
        with self._lock:
            if self._closed:
                raise ServiceOverloadError("queue is closed")
            if len(self._entries) >= self.capacity:
                shed = self._make_room()
            else:
                shed = None
            self._entries.append(entry)
            self.n_enqueued += 1
            self._not_empty.notify()
            return shed

    def _make_room(self) -> Optional[T]:
        """Resolve a full queue per policy; caller holds the lock."""
        if self.policy is BackpressurePolicy.REJECT:
            self.n_rejected += 1
            raise ServiceOverloadError(
                f"queue full ({self.capacity} entries, policy=reject)"
            )
        if self.policy is BackpressurePolicy.SHED_OLDEST:
            self.n_shed += 1
            return self._entries.popleft()
        # BLOCK: wait for a consumer.
        deadline = (
            None
            if self.block_timeout_s is None
            else time.monotonic() + self.block_timeout_s
        )
        while len(self._entries) >= self.capacity:
            if self._closed:
                raise ServiceOverloadError("queue closed while blocked")
            if deadline is None:
                self._not_full.wait()
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._not_full.wait(remaining):
                    if len(self._entries) < self.capacity:
                        break
                    self.n_rejected += 1
                    raise ServiceOverloadError(
                        f"queue full after blocking "
                        f"{self.block_timeout_s:.3f}s"
                    )
        return None

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def get(self, timeout_s: Optional[float] = None) -> Optional[T]:
        """Pop the oldest entry, waiting up to ``timeout_s``.

        Returns ``None`` on timeout or when the queue is closed and
        drained.
        """
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        with self._lock:
            while not self._entries:
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._not_empty.wait(remaining)
            entry = self._entries.popleft()
            self._not_full.notify()
            return entry

    def drain(self) -> List[T]:
        """Pop every queued entry at once (shutdown path)."""
        with self._lock:
            entries = list(self._entries)
            self._entries.clear()
            self._not_full.notify_all()
            return entries

    def close(self) -> None:
        """Refuse future ``put``s and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def depth(self) -> int:
        """Current number of queued entries."""
        with self._lock:
            return len(self._entries)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed
