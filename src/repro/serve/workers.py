"""Warm persistent worker pool for the verification service.

Workers are expensive to make ready: the defense's bidirectional-LSTM
segmenter must be trained before the first verdict.  The pool therefore
trains **once per worker at startup** via a pool initializer — not per
request, as the one-shot CLI paths used to — and keeps the resulting
:class:`~repro.core.pipeline.DefensePipeline` instances alive across
batches.  Per-request determinism is preserved: a verdict depends only
on the pipeline spec, the recordings, and the request's integer seed,
so any worker (thread or process, warm or cold) returns bitwise the
same answer as a direct ``DefensePipeline.verify`` call.

Execution runs on the unified :class:`repro.runtime.Runtime`:

``thread``
    Workers share this process's memoized segmenter (training happens
    once per process).  LSTM inference is read-only, so sharing is
    safe.
``process``
    Each worker process builds the warm pipeline in its initializer.
    A warm-up probe forces spawn/initializer failures to surface at
    start, where the runtime's fallback ladder demotes to threads —
    the same ladder :class:`repro.eval.runner.CampaignRunner` rides.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.detector import DetectorConfig
from repro.core.hardening import HardeningConfig
from repro.core.pipeline import (
    BatchAnalysisItem,
    DefenseConfig,
    DefensePipeline,
)
from repro.core.rate_distortion import RateDistortionSegmenter
from repro.core.segmentation import default_segmenter
from repro.core.segmenter import Segmenter
from repro.errors import ConfigurationError
from repro.runtime import (
    PROCESS,
    THREAD,
    FallbackPolicy,
    Runtime,
    ShmTransport,
    StageEvent,
    capture_stage_events,
)
from repro.serve.batching import Batch
from repro.serve.request import VerificationRequest
from repro.utils.rng import stable_fingerprint

logger = logging.getLogger(__name__)


#: Segmenter backend names a :class:`PipelineSpec` accepts.
BACKEND_BLSTM = "blstm"
BACKEND_RD = "rd"
SEGMENTER_BACKENDS = (BACKEND_BLSTM, BACKEND_RD)


@dataclass(frozen=True)
class PipelineSpec:
    """Picklable recipe for building a warm verification pipeline.

    Attributes
    ----------
    use_segmenter:
        Use a phoneme segmenter (the full system); ``False`` serves
        the no-selection fallback only.
    segmenter_backend:
        ``"blstm"`` — the paper's trained BLSTM frame classifier, or
        ``"rd"`` — the training-free rate-distortion backend.  The RD
        backend has no trained state: workers spin up instantly, skip
        the artifact store entirely, and its identity is config-only.
    segmenter_seed:
        Seed of the segmenter training recipe (BLSTM backend only).
    n_speakers / n_per_phoneme / epochs:
        Training-set sizing (scaled down for smokes, paper-sized for
        real serving; BLSTM backend only).
    threshold:
        Optional detector threshold; ``None`` reports scores only.
    threshold_jitter:
        Randomized-defense knob: per-session uniform jitter (±) applied
        to the decision threshold (requires ``threshold``).  ``0.0``
        deploys the paper's deterministic detector.
    subset_fraction:
        Randomized-defense knob: fraction of the sensitive-phoneme set
        each session's segmentation restricts itself to.  ``1.0``
        disables subset hardening.
    min_audio_s:
        Minimum concatenated-segment material before the pipeline
        falls back to full recordings.
    store_dir:
        Artifact-store directory workers consult before training (a
        plain string so the spec stays picklable for process-pool
        initializers); ``None`` trains in-process as before.  Ignored
        by the RD backend — there is nothing to load.
    scenario:
        Name of a registered :class:`repro.scenarios.ScenarioSpec`
        selecting the replay-side channel graph (the wearable sensor
        model) workers serve with.  A *name*, not a spec, so the spec
        stays picklable; workers re-resolve it from the registry.
        Part of the fingerprint — different channel graphs produce
        different verdicts and must never share a batch class.
    """

    use_segmenter: bool = True
    segmenter_backend: str = BACKEND_BLSTM
    segmenter_seed: int = 0
    n_speakers: int = 8
    n_per_phoneme: int = 12
    epochs: int = 12
    threshold: Optional[float] = None
    threshold_jitter: float = 0.0
    subset_fraction: float = 1.0
    min_audio_s: float = 0.25
    store_dir: Optional[str] = None
    scenario: Optional[str] = None

    def __post_init__(self) -> None:
        if self.segmenter_backend not in SEGMENTER_BACKENDS:
            raise ConfigurationError(
                f"segmenter_backend must be one of {SEGMENTER_BACKENDS}, "
                f"got {self.segmenter_backend!r}"
            )
        if self.scenario is not None:
            from repro.scenarios import get_scenario

            get_scenario(self.scenario)  # raises with the known list
        # Build the hardening config eagerly so invalid knobs fail at
        # spec construction, not in a worker initializer.
        self.hardening

    @property
    def hardening(self) -> Optional[HardeningConfig]:
        """The spec's randomized defenses (``None`` when both are off)."""
        if self.threshold_jitter == 0.0 and self.subset_fraction == 1.0:
            return None
        if self.threshold_jitter and self.threshold is None:
            raise ConfigurationError(
                "threshold_jitter requires a detector threshold"
            )
        return HardeningConfig(
            threshold_jitter=self.threshold_jitter,
            subset_fraction=self.subset_fraction,
        )

    @property
    def fingerprint(self) -> int:
        """Stable config hash (part of the batch-compatibility key).

        ``store_dir`` is deliberately excluded: where the weights come
        from never changes a verdict (store loads are bitwise identical
        to fresh training), so it must not split batch classes.  The RD
        backend fingerprints config-only: the training-recipe fields
        (seed, corpus sizing, epochs) never touch an RD verdict, so
        specs differing only there share one batch class.
        """
        if self.use_segmenter and self.segmenter_backend == BACKEND_RD:
            return stable_fingerprint(
                self.use_segmenter,
                self.segmenter_backend,
                self.threshold,
                self.threshold_jitter,
                self.subset_fraction,
                self.min_audio_s,
                self.scenario,
            )
        return stable_fingerprint(
            self.use_segmenter,
            self.segmenter_backend,
            self.segmenter_seed,
            self.n_speakers,
            self.n_per_phoneme,
            self.epochs,
            self.threshold,
            self.threshold_jitter,
            self.subset_fraction,
            self.min_audio_s,
            self.scenario,
        )

    def build_segmenter(
        self, audio_rate: float = 16_000.0
    ) -> Optional[Segmenter]:
        """Build (RD) or load-or-train (BLSTM) the segmenter.

        With ``store_dir`` set, the BLSTM backend consults the artifact
        store first: a warm entry loads in milliseconds, a cold one
        trains exactly once across every concurrently-starting worker
        (cross-process file lock) and is published for the next service
        start.  The RD backend constructs in O(1) with zero training
        runs and never touches the store.
        """
        if not self.use_segmenter:
            return None
        if self.segmenter_backend == BACKEND_RD:
            return RateDistortionSegmenter(sample_rate=float(audio_rate))
        return default_segmenter(
            seed=self.segmenter_seed,
            n_speakers=self.n_speakers,
            n_per_phoneme=self.n_per_phoneme,
            epochs=self.epochs,
            store=self.store_dir,
        )

    def build_pipeline(
        self, audio_rate: float, wearer_moving: bool
    ) -> DefensePipeline:
        """Pipeline for one batch-compatibility class."""
        sensor = None
        if self.scenario is not None:
            from repro.scenarios import get_scenario

            sensor = get_scenario(self.scenario).build_sensor()
        return DefensePipeline(
            segmenter=self.build_segmenter(audio_rate=audio_rate),
            sensor=sensor,
            config=DefenseConfig(
                audio_rate=float(audio_rate),
                detector=DetectorConfig(threshold=self.threshold),
                hardening=self.hardening,
                min_audio_s=self.min_audio_s,
                wearer_moving=bool(wearer_moving),
            ),
        )


@dataclass
class WorkerResult:
    """Picklable per-request outcome returned by a worker.

    ``batched`` records whether the request was served by the
    vectorized fast path (one masked BLSTM forward shared by the whole
    micro-batch) rather than a per-request pipeline run; the service
    aggregates it into the ``batched_forward`` metrics.  ``events``
    carries the request's :class:`StageEvent` stream (stage timings,
    fallback annotations, error classes), which the service feeds into
    its metrics sink.
    """

    request_id: str
    verdict: object = None
    degraded: bool = False
    stage_timings_s: Dict[str, float] = field(default_factory=dict)
    exec_s: float = 0.0
    error: Optional[str] = None
    batched: bool = False
    events: List[StageEvent] = field(default_factory=list)


# ----------------------------------------------------------------------
# Worker-process / worker-thread pipeline cache.  The pool initializer
# trains the segmenter eagerly (warm start); batches then reuse
# per-(spec, rate, motion) pipelines.  Keys include the spec
# fingerprint so several services with different specs can coexist in
# one process (thread mode) without crosstalk.
# ----------------------------------------------------------------------

_WORKER_PIPELINES: Dict[
    Tuple[int, float, bool], DefensePipeline
] = {}
_WORKER_LOCK = threading.Lock()


def _init_worker(spec: PipelineSpec) -> None:
    """Pool initializer: make the worker warm before the first batch."""
    # Train eagerly so the first request does not pay the cost; the
    # result is memoized by default_segmenter for this process.
    spec.build_segmenter()


def _worker_pipeline(
    spec: PipelineSpec, key: Tuple[float, bool]
) -> DefensePipeline:
    cache_key = (spec.fingerprint,) + key
    with _WORKER_LOCK:
        pipeline = _WORKER_PIPELINES.get(cache_key)
        if pipeline is None:
            pipeline = _WORKER_PIPELINES[cache_key] = (
                spec.build_pipeline(*key)
            )
        return pipeline


def execute_batch(
    payload: Tuple[
        PipelineSpec,
        Tuple[float, bool],
        List[Tuple[VerificationRequest, float]],
    ],
) -> List[WorkerResult]:
    """Run one micro-batch on this worker's warm pipeline.

    ``payload`` is the pipeline spec, the batch key, and
    ``(request, age_at_dispatch_s)`` pairs.  Multi-request batches take
    the vectorized fast path: one
    :meth:`~repro.core.pipeline.DefensePipeline.analyze_batch` call
    shares a single masked BLSTM segmentation forward across the whole
    batch, with verdicts bitwise identical to per-request runs.  A
    request the batched path cannot serve is retried sequentially on
    its own — and if the batched entry point itself fails, the whole
    batch falls back to the sequential loop — so one bad request never
    poisons batch-mates.

    Deadlines: a request whose deadline already expired is not dropped
    — it degrades to the full-recording fallback (segmentation
    skipped).  On the vectorized path all deadline checks happen at
    batch start (members no longer queue behind each other); on the
    sequential path ages keep accruing while earlier members execute.
    """
    spec, key, items = payload
    pipeline = _worker_pipeline(spec, key)
    batch_start = time.perf_counter()
    if len(items) > 1:
        results = _execute_vectorized(pipeline, items, batch_start)
        if results is not None:
            return results
    return _execute_sequential(pipeline, items, batch_start)


def _deadline_expired(
    request: VerificationRequest, age_s: float
) -> bool:
    return (
        request.deadline_s is not None and age_s >= request.deadline_s
    )


def _run_one(
    pipeline: DefensePipeline,
    request: VerificationRequest,
    degraded: bool,
) -> WorkerResult:
    """Serve one request sequentially (also the per-request fallback)."""
    start = time.perf_counter()
    try:
        with capture_stage_events() as captured:
            verdict, timings = pipeline.analyze_timed(
                request.va_audio,
                request.wearable_audio,
                rng=int(request.seed),
                oracle_utterance=request.oracle_utterance,
                skip_segmentation=degraded,
            )
        return WorkerResult(
            request_id=request.request_id,
            verdict=verdict,
            degraded=degraded,
            stage_timings_s=timings,
            exec_s=time.perf_counter() - start,
            events=captured.events,
        )
    except Exception as error:  # noqa: BLE001 — reported per request
        return WorkerResult(
            request_id=request.request_id,
            degraded=degraded,
            exec_s=time.perf_counter() - start,
            error=f"{type(error).__name__}: {error}",
            events=captured.events,
        )


def _execute_sequential(
    pipeline: DefensePipeline,
    items: List[Tuple[VerificationRequest, float]],
    batch_start: float,
) -> List[WorkerResult]:
    results: List[WorkerResult] = []
    for request, age_at_dispatch_s in items:
        age_s = age_at_dispatch_s + (
            time.perf_counter() - batch_start
        )
        results.append(
            _run_one(
                pipeline, request, _deadline_expired(request, age_s)
            )
        )
    return results


def _execute_vectorized(
    pipeline: DefensePipeline,
    items: List[Tuple[VerificationRequest, float]],
    batch_start: float,
) -> Optional[List[WorkerResult]]:
    """Serve the whole micro-batch through one ``analyze_batch`` call.

    Returns ``None`` when the batched entry point itself fails, which
    tells :func:`execute_batch` to fall back to the sequential loop.
    Requests that fail *inside* the batch (their outcome carries an
    error) are retried one-by-one so a poisoned input degrades only
    itself.
    """
    now = time.perf_counter()
    degraded_flags = [
        _deadline_expired(request, age_s + (now - batch_start))
        for request, age_s in items
    ]
    batch_items = [
        BatchAnalysisItem(
            va_audio=request.va_audio,
            wearable_audio=request.wearable_audio,
            rng=int(request.seed),
            oracle_utterance=request.oracle_utterance,
            skip_segmentation=degraded,
        )
        for (request, _), degraded in zip(items, degraded_flags)
    ]
    try:
        with capture_stage_events() as captured:
            outcomes = pipeline.analyze_batch(batch_items)
    except Exception as error:  # noqa: BLE001 — sequential fallback
        logger.warning(
            "batched inference failed (%s: %s); "
            "falling back to the sequential path",
            type(error).__name__,
            error,
        )
        return None
    exec_share_s = (time.perf_counter() - batch_start) / len(items)
    results: List[WorkerResult] = []
    for (request, _), degraded, outcome in zip(
        items, degraded_flags, outcomes
    ):
        if outcome.error is not None:
            results.append(_run_one(pipeline, request, degraded))
            continue
        results.append(
            WorkerResult(
                request_id=request.request_id,
                verdict=outcome.verdict,
                degraded=degraded,
                stage_timings_s=outcome.timings,
                exec_s=exec_share_s,
                batched=True,
                events=list(outcome.events),
            )
        )
    # Batch-scoped events (the shared segmentation forward) belong to
    # the batch, not any one request; attach them once so the service's
    # sink counts each forward exactly once.
    batch_events = [e for e in captured.events if e.scope == "batch"]
    if batch_events and results:
        results[0].events.extend(batch_events)
    return results


class WarmWorkerPool:
    """Persistent executor whose workers hold trained pipelines.

    A thin façade over :class:`repro.runtime.Runtime`: the pool picks
    the ladder (process demotes to thread; thread runs rung-solo), the
    warm-up probe, and the worker initializer, and the runtime owns all
    pool construction and fallback mechanics.

    Parameters
    ----------
    spec:
        Pipeline recipe every worker warms up with.
    n_workers:
        Pool size (>= 1).
    mode:
        ``"thread"`` (default) or ``"process"``; process pools fall
        back to threads if spawning fails.
    use_shm:
        Move batch audio arrays to process workers via the
        shared-memory transport (:class:`repro.runtime.ShmTransport`)
        instead of pickling them through the pool pipe.  Ignored (the
        arrays are already shared) in thread mode; falls back to pickle
        transparently where ``/dev/shm`` is unavailable.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        n_workers: int = 2,
        mode: str = "thread",
        use_shm: bool = True,
    ) -> None:
        if int(n_workers) < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if mode not in (THREAD, PROCESS):
            raise ConfigurationError(
                f"mode must be 'thread' or 'process', got {mode!r}"
            )
        self.spec = spec
        self.n_workers = int(n_workers)
        self.mode = mode
        self.use_shm = bool(use_shm)
        self.realized_mode: Optional[str] = None
        self._runtime: Optional[Runtime] = None

    def start(self) -> None:
        """Spawn the executor and warm every worker.

        In process mode the runtime probes every worker with one empty
        batch, forcing spawn and initializer failures to surface here —
        where the ladder can still demote to threads — instead of
        mid-traffic.
        """
        if self._runtime is not None:
            return
        runtime = Runtime(
            kind=self.mode,
            n_workers=self.n_workers,
            fallback=FallbackPolicy(ladder=(PROCESS, THREAD)),
            initializer=_init_worker,
            initargs=(self.spec,),
            probe=(
                execute_batch,
                ((self.spec, (16_000.0, False), []),),
            ),
            thread_name_prefix="verify-worker",
            transport=ShmTransport() if self.use_shm else None,
        )
        runtime.start()
        self._runtime = runtime
        self.realized_mode = runtime.realized_kind

    def submit(self, batch: Batch, ages_s: List[float]):
        """Dispatch one micro-batch; returns the executor future."""
        if self._runtime is None:
            raise ConfigurationError("pool not started; call start()")
        items = list(zip(batch.entries, ages_s))
        return self._runtime.submit(
            execute_batch, (self.spec, batch.key, items)
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (idempotent)."""
        if self._runtime is not None:
            self._runtime.shutdown(wait=wait)
            self._runtime = None
