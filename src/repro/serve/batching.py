"""Micro-batching scheduler for the verification service.

Incoming requests are grouped into batches so a warm worker amortizes
per-dispatch overhead, under two constraints: only *compatible*
requests (same :attr:`~repro.serve.request.VerificationRequest.batch_key`
— audio rate and pipeline-affecting flags) may share a batch, and no
admitted request waits longer than ``max_wait_s`` for its batch to
fill.  The scheduler is deliberately free of threads and wall-clock
reads: callers inject ``now`` timestamps, which makes the dispatch
logic directly property-testable (FIFO within a compatibility class,
no request dispatched twice, bounded wait).

Latency-adaptive mode
---------------------
A fixed ``max_batch_size`` trades throughput against tail latency
once and for all; the right operating point depends on the recording
length, worker count, and offered load actually seen in production.
Setting :attr:`BatchingConfig.p95_target_s` turns on a
:class:`BatchSizeController`: the service feeds every served request's
end-to-end latency into :meth:`MicroBatchScheduler.observe_latency`,
and the controller adjusts the *effective* batch size — AIMD-style,
growing by one while the rolling p95 sits comfortably under the
target and halving when it breaches — within
``[min_batch_size, max_batch_size]``.  The controller is clock-free
too (cooldown is counted in samples, not seconds), so the adaptive
path is as property-testable as the fixed one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


@dataclass(frozen=True)
class BatchingConfig:
    """Micro-batch formation parameters.

    Attributes
    ----------
    max_batch_size:
        Largest number of requests dispatched together.  In adaptive
        mode this is the controller's upper bound.
    max_wait_s:
        Longest an admitted request may sit waiting for co-batchees
        before its (possibly singleton) batch is dispatched anyway.
    p95_target_s:
        Rolling end-to-end p95 the batch-size controller steers
        toward.  ``None`` (the default) keeps the classic fixed
        ``max_batch_size`` behaviour.
    min_batch_size:
        Controller lower bound (adaptive mode only).
    adapt_window:
        Latency samples in the controller's rolling window.
    adapt_cooldown:
        Served-request samples between controller decisions, so a
        resize's effect on the window is observed before the next one.
    adapt_headroom:
        Grow only while the rolling p95 is below
        ``p95_target_s * adapt_headroom`` — the gap keeps the
        controller from oscillating right at the target.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.02
    p95_target_s: Optional[float] = None
    min_batch_size: int = 1
    adapt_window: int = 64
    adapt_cooldown: int = 8
    adapt_headroom: float = 0.7

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ConfigurationError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        if self.p95_target_s is not None and not self.p95_target_s > 0:
            raise ConfigurationError(
                f"p95_target_s must be > 0 (or None), "
                f"got {self.p95_target_s}"
            )
        if not 1 <= self.min_batch_size <= self.max_batch_size:
            raise ConfigurationError(
                f"need 1 <= min_batch_size <= max_batch_size, got "
                f"{self.min_batch_size} / {self.max_batch_size}"
            )
        if self.adapt_window < 1:
            raise ConfigurationError(
                f"adapt_window must be >= 1, got {self.adapt_window}"
            )
        if self.adapt_cooldown < 1:
            raise ConfigurationError(
                f"adapt_cooldown must be >= 1, got {self.adapt_cooldown}"
            )
        if not 0 < self.adapt_headroom <= 1:
            raise ConfigurationError(
                f"adapt_headroom must lie in (0, 1], "
                f"got {self.adapt_headroom}"
            )

    @property
    def adaptive(self) -> bool:
        """Whether a latency target (and thus a controller) is set."""
        return self.p95_target_s is not None


@dataclass(frozen=True)
class BatchControllerStats:
    """Snapshot of one :class:`BatchSizeController`'s state.

    ``rolling_p95_s`` is NaN while the window is empty (matching the
    stats helpers).
    """

    batch_size: int
    n_grow: int
    n_shrink: int
    n_decisions: int
    rolling_p95_s: float


class BatchSizeController:
    """AIMD effective-batch-size controller driven by a rolling p95.

    Feeds on per-request end-to-end latencies (``observe``).  Every
    ``adapt_cooldown`` samples — once the window holds at least that
    many — it compares the rolling p95 against the target: a breach
    halves the effective size (multiplicative decrease, so a latency
    cliff is escaped in O(log) decisions), while a p95 under
    ``target * headroom`` grows it by one (additive increase).  The
    size starts at ``max_batch_size`` and stays within
    ``[min_batch_size, max_batch_size]``.

    The controller never reads a clock: cooldown is counted in
    samples, and the latency window is whatever the caller feeds it —
    tests drive it with synthetic latencies and assert the exact
    decision sequence.  Thread-safe (the service observes latencies
    from pool callback threads while the scheduler thread reads
    ``batch_size``).
    """

    def __init__(self, config: BatchingConfig) -> None:
        if not config.adaptive:
            raise ConfigurationError(
                "BatchSizeController requires p95_target_s to be set"
            )
        # Imported lazily: repro.fleet pulls in repro.serve at import
        # time, so a module-level import here would be circular.
        from repro.fleet.slo import RollingLatencyWindow

        self.config = config
        self._window = RollingLatencyWindow(config.adapt_window)
        self._size = config.max_batch_size
        self._since_decision = 0
        self._n_grow = 0
        self._n_shrink = 0
        self._n_decisions = 0
        self._lock = threading.Lock()

    @property
    def batch_size(self) -> int:
        """Current effective batch size."""
        with self._lock:
            return self._size

    def observe(self, latency_s: float) -> None:
        """Record one served request's end-to-end latency."""
        self._window.record(latency_s)
        with self._lock:
            self._since_decision += 1
            if self._since_decision < self.config.adapt_cooldown:
                return
            if len(self._window) < self.config.adapt_cooldown:
                return
            self._since_decision = 0
            self._decide_locked()

    def _decide_locked(self) -> None:
        config = self.config
        p95 = self._window.p95()
        self._n_decisions += 1
        if p95 > config.p95_target_s:
            shrunk = max(config.min_batch_size, self._size // 2)
            if shrunk != self._size:
                self._size = shrunk
                self._n_shrink += 1
        elif (
            p95 <= config.p95_target_s * config.adapt_headroom
            and self._size < config.max_batch_size
        ):
            self._size += 1
            self._n_grow += 1

    def stats(self) -> BatchControllerStats:
        """Freeze the controller state for metrics reporting."""
        with self._lock:
            return BatchControllerStats(
                batch_size=self._size,
                n_grow=self._n_grow,
                n_shrink=self._n_shrink,
                n_decisions=self._n_decisions,
                rolling_p95_s=self._window.p95(),
            )


@dataclass
class Batch(Generic[T]):
    """One dispatchable group of compatible requests."""

    key: Hashable
    entries: List[T]
    formed_reason: str = "full"

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class _PendingClass(Generic[T]):
    """Requests of one compatibility class awaiting dispatch."""

    entries: List[T] = field(default_factory=list)
    arrivals: List[float] = field(default_factory=list)

    @property
    def oldest_arrival(self) -> float:
        return self.arrivals[0]


class MicroBatchScheduler(Generic[T]):
    """Groups offered entries into compatible, deadline-bounded batches.

    Usage: ``offer`` entries as they leave the request queue, then call
    ``ready_batches(now)`` to collect every batch that is either full
    or has exceeded its oldest entry's ``max_wait_s``.  ``flush()``
    empties every pending class regardless of age (shutdown / idle
    drain).

    When the config carries a ``p95_target_s``, a
    :class:`BatchSizeController` replaces the fixed
    ``max_batch_size`` with :attr:`effective_batch_size`; feed served
    latencies through :meth:`observe_latency` to drive it.
    """

    def __init__(self, config: Optional[BatchingConfig] = None) -> None:
        self.config = config or BatchingConfig()
        self.controller: Optional[BatchSizeController] = (
            BatchSizeController(self.config)
            if self.config.adaptive
            else None
        )
        self._pending: "OrderedDict[Hashable, _PendingClass[T]]" = (
            OrderedDict()
        )

    @property
    def effective_batch_size(self) -> int:
        """Batch size currently in force (controller-driven when
        adaptive, else the configured ``max_batch_size``)."""
        if self.controller is not None:
            return self.controller.batch_size
        return self.config.max_batch_size

    def observe_latency(self, latency_s: float) -> None:
        """Feed one served request's end-to-end latency to the
        controller; a no-op in fixed (non-adaptive) mode."""
        if self.controller is not None:
            self.controller.observe(latency_s)

    def controller_stats(self) -> Optional[BatchControllerStats]:
        """Controller snapshot, or ``None`` in fixed mode."""
        if self.controller is None:
            return None
        return self.controller.stats()

    def offer(self, entry: T, key: Hashable, now: float) -> None:
        """Add one entry to its compatibility class."""
        pending = self._pending.get(key)
        if pending is None:
            pending = self._pending[key] = _PendingClass()
        pending.entries.append(entry)
        pending.arrivals.append(now)

    def ready_batches(self, now: float) -> List[Batch[T]]:
        """Pop every batch whose dispatch condition holds at ``now``.

        A class dispatches when it holds ``max_batch_size`` entries
        (repeatedly, if it holds several batches' worth) or when its
        oldest entry has waited ``max_wait_s``.  Entries leave in
        arrival order, so FIFO order is preserved within a class.
        """
        batches: List[Batch[T]] = []
        size = self.effective_batch_size
        for key in list(self._pending):
            pending = self._pending[key]
            while len(pending.entries) >= size:
                batches.append(
                    Batch(
                        key=key,
                        entries=pending.entries[:size],
                        formed_reason="full",
                    )
                )
                del pending.entries[:size]
                del pending.arrivals[:size]
            if pending.entries and (
                now - pending.oldest_arrival >= self.config.max_wait_s
            ):
                batches.append(
                    Batch(
                        key=key,
                        entries=pending.entries[:],
                        formed_reason="deadline",
                    )
                )
                pending.entries.clear()
                pending.arrivals.clear()
            if not pending.entries:
                del self._pending[key]
        return batches

    def flush(self) -> List[Batch[T]]:
        """Dispatch everything pending, regardless of age or size."""
        batches: List[Batch[T]] = []
        size = self.effective_batch_size
        for key, pending in self._pending.items():
            for start in range(0, len(pending.entries), size):
                batches.append(
                    Batch(
                        key=key,
                        entries=pending.entries[start : start + size],
                        formed_reason="flush",
                    )
                )
        self._pending.clear()
        return batches

    def next_deadline(self, now: float) -> Optional[float]:
        """Seconds until the earliest pending class must dispatch.

        ``None`` when nothing is pending; never negative.
        """
        if not self._pending:
            return None
        earliest = min(
            pending.oldest_arrival for pending in self._pending.values()
        )
        return max(0.0, earliest + self.config.max_wait_s - now)

    @property
    def n_pending(self) -> int:
        """Entries currently awaiting batch formation."""
        return sum(
            len(pending.entries) for pending in self._pending.values()
        )

    @property
    def pending_keys(self) -> Tuple[Hashable, ...]:
        """Compatibility classes with waiting entries."""
        return tuple(self._pending.keys())
