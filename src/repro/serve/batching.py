"""Micro-batching scheduler for the verification service.

Incoming requests are grouped into batches so a warm worker amortizes
per-dispatch overhead, under two constraints: only *compatible*
requests (same :attr:`~repro.serve.request.VerificationRequest.batch_key`
— audio rate and pipeline-affecting flags) may share a batch, and no
admitted request waits longer than ``max_wait_s`` for its batch to
fill.  The scheduler is deliberately free of threads and wall-clock
reads: callers inject ``now`` timestamps, which makes the dispatch
logic directly property-testable (FIFO within a compatibility class,
no request dispatched twice, bounded wait).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


@dataclass(frozen=True)
class BatchingConfig:
    """Micro-batch formation parameters.

    Attributes
    ----------
    max_batch_size:
        Largest number of requests dispatched together.
    max_wait_s:
        Longest an admitted request may sit waiting for co-batchees
        before its (possibly singleton) batch is dispatched anyway.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ConfigurationError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )


@dataclass
class Batch(Generic[T]):
    """One dispatchable group of compatible requests."""

    key: Hashable
    entries: List[T]
    formed_reason: str = "full"

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class _PendingClass(Generic[T]):
    """Requests of one compatibility class awaiting dispatch."""

    entries: List[T] = field(default_factory=list)
    arrivals: List[float] = field(default_factory=list)

    @property
    def oldest_arrival(self) -> float:
        return self.arrivals[0]


class MicroBatchScheduler(Generic[T]):
    """Groups offered entries into compatible, deadline-bounded batches.

    Usage: ``offer`` entries as they leave the request queue, then call
    ``ready_batches(now)`` to collect every batch that is either full
    or has exceeded its oldest entry's ``max_wait_s``.  ``flush()``
    empties every pending class regardless of age (shutdown / idle
    drain).
    """

    def __init__(self, config: Optional[BatchingConfig] = None) -> None:
        self.config = config or BatchingConfig()
        self._pending: "OrderedDict[Hashable, _PendingClass[T]]" = (
            OrderedDict()
        )

    def offer(self, entry: T, key: Hashable, now: float) -> None:
        """Add one entry to its compatibility class."""
        pending = self._pending.get(key)
        if pending is None:
            pending = self._pending[key] = _PendingClass()
        pending.entries.append(entry)
        pending.arrivals.append(now)

    def ready_batches(self, now: float) -> List[Batch[T]]:
        """Pop every batch whose dispatch condition holds at ``now``.

        A class dispatches when it holds ``max_batch_size`` entries
        (repeatedly, if it holds several batches' worth) or when its
        oldest entry has waited ``max_wait_s``.  Entries leave in
        arrival order, so FIFO order is preserved within a class.
        """
        batches: List[Batch[T]] = []
        size = self.config.max_batch_size
        for key in list(self._pending):
            pending = self._pending[key]
            while len(pending.entries) >= size:
                batches.append(
                    Batch(
                        key=key,
                        entries=pending.entries[:size],
                        formed_reason="full",
                    )
                )
                del pending.entries[:size]
                del pending.arrivals[:size]
            if pending.entries and (
                now - pending.oldest_arrival >= self.config.max_wait_s
            ):
                batches.append(
                    Batch(
                        key=key,
                        entries=pending.entries[:],
                        formed_reason="deadline",
                    )
                )
                pending.entries.clear()
                pending.arrivals.clear()
            if not pending.entries:
                del self._pending[key]
        return batches

    def flush(self) -> List[Batch[T]]:
        """Dispatch everything pending, regardless of age or size."""
        batches: List[Batch[T]] = []
        size = self.config.max_batch_size
        for key, pending in self._pending.items():
            for start in range(0, len(pending.entries), size):
                batches.append(
                    Batch(
                        key=key,
                        entries=pending.entries[start : start + size],
                        formed_reason="flush",
                    )
                )
        self._pending.clear()
        return batches

    def next_deadline(self, now: float) -> Optional[float]:
        """Seconds until the earliest pending class must dispatch.

        ``None`` when nothing is pending; never negative.
        """
        if not self._pending:
            return None
        earliest = min(
            pending.oldest_arrival for pending in self._pending.values()
        )
        return max(0.0, earliest + self.config.max_wait_s - now)

    @property
    def n_pending(self) -> int:
        """Entries currently awaiting batch formation."""
        return sum(
            len(pending.entries) for pending in self._pending.values()
        )

    @property
    def pending_keys(self) -> Tuple[Hashable, ...]:
        """Compatibility classes with waiting entries."""
        return tuple(self._pending.keys())
