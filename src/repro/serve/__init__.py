"""Online verification serving layer.

Turns the batch-oriented defense pipeline into an online service that
answers individual :class:`VerificationRequest`s with bounded latency:
a bounded admission queue with configurable backpressure, a
micro-batching scheduler that groups compatible requests, and a warm
worker pool that trains the phoneme segmenter once per worker at
startup.  See DESIGN.md § "Online serving architecture".
"""

from repro.serve.batching import (
    Batch,
    BatchControllerStats,
    BatchSizeController,
    BatchingConfig,
    MicroBatchScheduler,
)
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    RecordingPool,
    UserActivityModel,
    build_recording_pool,
    run_loadgen,
)
from repro.serve.metrics import (
    LatencySummary,
    MetricsCollector,
    ServiceMetrics,
)
from repro.serve.queue import BackpressurePolicy, BoundedRequestQueue
from repro.serve.request import (
    RequestStatus,
    VerificationRequest,
    VerificationResponse,
)
from repro.serve.service import ServiceConfig, VerificationService
from repro.serve.workers import PipelineSpec, WarmWorkerPool

__all__ = [
    "BackpressurePolicy",
    "Batch",
    "BatchControllerStats",
    "BatchSizeController",
    "BatchingConfig",
    "BoundedRequestQueue",
    "LatencySummary",
    "LoadgenConfig",
    "LoadgenReport",
    "MetricsCollector",
    "MicroBatchScheduler",
    "PipelineSpec",
    "RecordingPool",
    "RequestStatus",
    "ServiceConfig",
    "ServiceMetrics",
    "UserActivityModel",
    "VerificationRequest",
    "VerificationResponse",
    "VerificationService",
    "WarmWorkerPool",
    "build_recording_pool",
    "run_loadgen",
]
